"""Dataset-factory generation throughput: simulator events/sec vs workers.

The dataset factory farms whole work units out to worker processes, so
simulation-backed generation — the cost centre of any OMNeT++-style
pipeline — should scale with the worker count.  This module runs one small
simulation-backed job per worker count and lands a tracked
``generation_events_per_sec`` row in ``BENCH_throughput.json``: simulator
events processed, wall-clock events/sec and samples/sec per worker count.

The worker-scaling bar (≥ 1.2x samples/sec at 4 workers over 1) is only
asserted on hosts with at least 4 CPUs; on smaller hosts (the committed
baseline comes from a 1-CPU container) the figures are recorded and a note
is printed instead — there is nothing to scale onto.

The winning run's ``manifest.json`` — the provenance catalog — is copied to
the repo root as ``BENCH_generation_catalog.json`` so CI archives exactly
which job, seed paths and configs produced the benchmarked samples.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import time

import pytest

from repro.datasets.factory import DatasetJobSpec, run_job

BENCH_JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
CATALOG_COPY_PATH = (pathlib.Path(__file__).resolve().parents[1]
                     / "BENCH_generation_catalog.json")

SCALING_BAR = 1.2

RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json(host_metadata):
    """Merge this module's rows into the repo-root JSON (read-update-write,
    like the other throughput benchmarks, so partial runs keep other rows)."""
    yield
    for key, row in RESULTS.items():
        if isinstance(row, dict) and key != "unit":
            row.setdefault("host", host_metadata)
    merged: dict = {}
    if BENCH_JSON_PATH.exists():
        try:
            merged = json.loads(BENCH_JSON_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    merged.update(RESULTS)
    BENCH_JSON_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


def _bench_spec() -> DatasetJobSpec:
    """A short simulation-backed sweep: 4 units of 2 samples on a 6-ring."""
    return DatasetJobSpec(
        topologies=("ring:6",),
        samples_per_scenario=8,
        unit_size=2,
        seed=11,
        base_config={"backend": "simulation", "simulation_duration": 0.3},
    )


def test_generation_events_per_sec(tmp_path_factory):
    root = tmp_path_factory.mktemp("generation-bench")
    cpu_count = os.cpu_count() or 1
    worker_counts = [1, 2] + ([4] if cpu_count >= 4 else [])
    rows = {}
    for workers in worker_counts:
        path = str(root / f"workers{workers}")
        start = time.perf_counter()
        status = run_job(_bench_spec(), path, workers=workers)
        wall = time.perf_counter() - start
        assert status["complete"]
        rows[str(workers)] = {
            "wall_seconds": wall,
            "events_processed": status["events_processed"],
            "events_per_sec": status["events_processed"] / wall,
            "samples_per_sec": status["samples_written"] / wall,
        }

    # The simulator is seeded per unit: the event count is a property of
    # the job, not of how many processes ran it.
    assert len({row["events_processed"] for row in rows.values()}) == 1

    RESULTS["generation_events_per_sec"] = {
        "topology": "ring:6", "samples": 8, "unit_size": 2,
        "backend": "simulation", "simulation_duration": 0.3,
        "workers": rows,
    }
    # Archive the catalog that produced these figures (CI artifact).
    shutil.copyfile(
        os.path.join(str(root / f"workers{worker_counts[-1]}"), "manifest.json"),
        CATALOG_COPY_PATH)

    print(f"\nfactory generation, 8 simulation-backed samples on ring:6")
    for workers in worker_counts:
        row = rows[str(workers)]
        print(f"  workers={workers}: {row['wall_seconds']:6.2f} s   "
              f"{row['events_per_sec']:9.0f} events/s   "
              f"{row['samples_per_sec']:6.2f} samples/s")

    if cpu_count >= 4:
        scaling = rows["4"]["samples_per_sec"] / rows["1"]["samples_per_sec"]
        RESULTS["generation_events_per_sec"]["scaling_4_vs_1"] = scaling
        print(f"  scaling : {scaling:.2f}x at 4 workers (bar ≥ {SCALING_BAR})")
        assert scaling >= SCALING_BAR
    else:
        # Nothing to scale onto: the committed baseline host has 1 CPU.
        print(f"  NOTE: worker-scaling bar (≥ {SCALING_BAR}x at 4 workers) "
              f"not asserted — host has {cpu_count} CPU(s)")
