"""Training throughput and peak memory vs mini-batch size and dtype.

Mini-batching merges several scenarios into one disjoint-union graph per
optimisation step (``repro.datasets.batching``), so the per-step Python and
autograd overhead — building the computation graph, the optimiser book-keeping,
the message-passing index — amortises over the whole batch.  This benchmark
trains the same model on the same scenarios at batch sizes 1 / 4 / 16 and
records the throughput in trained samples per second; batching must make
training strictly faster per sample.

The scenarios are deliberately small graphs (a 5-node ring, 20 paths each):
that is the regime where the fixed per-step cost dominates and batching pays
the most.  On much larger merged graphs the backward pass becomes
memory-bound; the float32 stack (``dtype="float32"``), the fused masked
update / gather-segment-sum autograd nodes and the per-backward gradient
buffer pool attack exactly that regime, so this module also records
tracemalloc peaks per batch size in both precisions and holds the fused ops
against their unfused (seed) formulations.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
import pytest

from repro.datasets import DatasetConfig, generate_dataset
from repro.models import ExtendedRouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.topology import ring_topology

BATCH_SIZES = (1, 4, 16)
MEMORY_BATCH_SIZES = (1, 4, 16, 32)
DTYPES = ("float64", "float32")
NUM_SAMPLES = 32
EPOCHS = 2


@pytest.fixture(scope="module")
def training_samples():
    return generate_dataset(ring_topology(5),
                            DatasetConfig(num_samples=NUM_SAMPLES, seed=41,
                                          small_queue_fraction=0.5))


def _make_trainer(bench_scale, batch_size: int, dtype=None, epochs: int = EPOCHS):
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=bench_scale["state_dim"],
        path_state_dim=bench_scale["state_dim"],
        node_state_dim=bench_scale["state_dim"],
        message_passing_iterations=bench_scale["iterations"],
        seed=41,
        dtype=dtype,
    ))
    return RouteNetTrainer(model, TrainerConfig(
        epochs=epochs, learning_rate=0.003, batch_size=batch_size,
        dtype=dtype, seed=41))


def _throughput(samples, batch_size: int, bench_scale, repetitions: int = 2,
                dtype=None) -> float:
    """Train fresh models and return the best trained-samples-per-second.

    Taking the best of a couple of repetitions damps scheduler noise on
    shared CI runners, where a single run can stall for unrelated reasons.
    """
    best = 0.0
    for _ in range(repetitions):
        trainer = _make_trainer(bench_scale, batch_size, dtype=dtype)
        start = time.perf_counter()
        trainer.fit(samples)
        elapsed = time.perf_counter() - start
        best = max(best, EPOCHS * len(samples) / elapsed)
    return best


def _peak_memory(samples, batch_size: int, bench_scale, dtype=None) -> int:
    """tracemalloc peak (bytes) of a one-epoch training run."""
    trainer = _make_trainer(bench_scale, batch_size, dtype=dtype, epochs=1)
    tracemalloc.start()
    trainer.fit(samples)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_batched_training_throughput(training_samples, bench_scale):
    """Record samples/sec at batch sizes 1/4/16; batching must pay off."""
    throughput = {batch_size: _throughput(training_samples, batch_size, bench_scale)
                  for batch_size in BATCH_SIZES}

    print("\ntraining throughput (trained samples per second)")
    for batch_size in BATCH_SIZES:
        speedup = throughput[batch_size] / throughput[1]
        print(f"  batch_size={batch_size:2d} : {throughput[batch_size]:8.2f} samples/s "
              f"({speedup:4.2f}x vs batch_size=1)")

    # The acceptance bar: a full batch must train strictly faster per sample
    # than one-scenario-per-step training.
    assert throughput[16] > throughput[1]


def test_peak_memory_by_batch_size_and_dtype(training_samples, bench_scale):
    """Record tracemalloc peaks at batch sizes 1/4/16/32 in both precisions.

    The float32 stack must deliver at least a 30% lower peak than the
    float64 (PR 1) path at batch_size 16 — the memory-bound large-merged-
    graph regime the ROADMAP flagged after the batching PR.
    """
    peaks = {dtype: {batch_size: _peak_memory(training_samples, batch_size,
                                              bench_scale, dtype=dtype)
                     for batch_size in MEMORY_BATCH_SIZES}
             for dtype in DTYPES}

    print("\npeak training memory (tracemalloc, one epoch)")
    for batch_size in MEMORY_BATCH_SIZES:
        peak64 = peaks["float64"][batch_size]
        peak32 = peaks["float32"][batch_size]
        print(f"  batch_size={batch_size:2d} : float64 {peak64 / 1e6:8.2f} MB   "
              f"float32 {peak32 / 1e6:8.2f} MB   ({peak32 / peak64:4.2f}x)")

    assert peaks["float32"][16] <= 0.7 * peaks["float64"][16]


def test_float32_meets_speed_or_memory_bar(training_samples, bench_scale):
    """Acceptance criterion: at batch_size 16, float32 must beat the float64
    path by ≥1.3x samples/sec or ≥30% lower peak memory (it reliably halves
    the arrays, so the memory arm is the stable one on shared runners)."""
    speed64 = _throughput(training_samples, 16, bench_scale, repetitions=1,
                          dtype="float64")
    speed32 = _throughput(training_samples, 16, bench_scale, repetitions=1,
                          dtype="float32")
    peak64 = _peak_memory(training_samples, 16, bench_scale, dtype="float64")
    peak32 = _peak_memory(training_samples, 16, bench_scale, dtype="float32")
    speedup = speed32 / speed64
    memory_ratio = peak32 / peak64
    print(f"\nfloat32 vs float64 at batch_size=16: "
          f"{speedup:.2f}x samples/sec, {memory_ratio:.2f}x peak memory")
    assert speedup >= 1.3 or memory_ratio <= 0.7


def test_fused_backward_allocates_less_than_seed_ops():
    """The fused masked-update / gather-segment-sum nodes must beat their
    unfused (seed) formulations on allocation: lower forward+backward peak
    and pooled (reused) scratch buffers instead of per-step temporaries."""
    from repro.nn.tensor import (
        Tensor,
        gather_segment_sum,
        grad_buffer_pool_stats,
        masked_where,
        reset_grad_buffer_pool_stats,
        segment_sum,
        stack,
        where,
    )

    rng = np.random.default_rng(0)
    batch, steps, dim, iterations = 320, 10, 16, 3
    entry_rows, entry_cols = np.nonzero(rng.random((batch, steps)) > 0.25)
    segment_ids = rng.integers(0, batch, size=entry_rows.size)
    sequence_mask = rng.random((batch, steps)) > 0.3

    def run(fused: bool) -> int:
        """Peak bytes of forward+backward through a model-shaped graph:
        a masked scan followed by a gather+segment-sum, iterated."""
        weight = Tensor(rng.normal(size=(dim, dim)) * 0.1, requires_grad=True)
        state = Tensor(rng.normal(size=(batch, dim)), requires_grad=True)
        tracemalloc.start()
        current = state
        for _ in range(iterations):
            outputs = []
            for step in range(steps):
                new_state = (current @ weight).tanh()
                if fused:
                    current = masked_where(sequence_mask[:, step], new_state, current)
                else:
                    current = where(sequence_mask[:, step].reshape(batch, 1),
                                    new_state, current)
                outputs.append(current)
            stacked = stack(outputs, axis=1)
            if fused:
                aggregated = gather_segment_sum(
                    stacked, (entry_rows, entry_cols), segment_ids, batch)
            else:
                aggregated = segment_sum(
                    stacked[(entry_rows, entry_cols)], segment_ids, batch)
            current = aggregated.tanh()
        (current ** 2).sum().backward()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    seed_peak = run(fused=False)
    reset_grad_buffer_pool_stats()
    fused_peak = run(fused=True)
    pool = grad_buffer_pool_stats()
    print(f"\nforward+backward peak: seed ops {seed_peak / 1e6:.2f} MB, "
          f"fused ops {fused_peak / 1e6:.2f} MB "
          f"(pool: {pool['hits']} reuses, {pool['misses']} allocations)")
    assert fused_peak < seed_peak
    # The pool must actually recycle buffers across steps: many reuses per
    # fresh allocation.
    assert pool["hits"] >= 5 * max(pool["misses"], 1)


def test_batched_step_equivalent_loss_scale(training_samples, bench_scale):
    """Batched training optimises the same objective (losses stay comparable)."""
    histories = {}
    for batch_size in (1, 16):
        model = ExtendedRouteNet(RouteNetConfig(
            link_state_dim=bench_scale["state_dim"],
            path_state_dim=bench_scale["state_dim"],
            node_state_dim=bench_scale["state_dim"],
            message_passing_iterations=bench_scale["iterations"],
            seed=41,
        ))
        trainer = RouteNetTrainer(model, TrainerConfig(
            epochs=EPOCHS, learning_rate=0.003, batch_size=batch_size, seed=41))
        histories[batch_size] = trainer.fit(training_samples)
    # Both runs start from identical weights on the same data: the first
    # epoch's average per-path loss must be in the same ballpark.
    first_small = histories[1].train_loss[0]
    first_large = histories[16].train_loss[0]
    assert first_large < 5 * first_small + 1.0
