"""Training throughput and peak memory vs batch size, dtype and scan mode.

Mini-batching merges several scenarios into one disjoint-union graph per
optimisation step (``repro.datasets.batching``), so the per-step Python and
autograd overhead — building the computation graph, the optimiser book-keeping,
the message-passing index — amortises over the whole batch.  This benchmark
trains the same model on the same scenarios at batch sizes 1 / 4 / 16 and
records the throughput in trained samples per second; batching must make
training strictly faster per sample.

The scenarios are deliberately small graphs (a 5-node ring, 20 paths each):
that is the regime where the fixed per-step cost dominates and batching pays
the most.  On much larger merged graphs the backward pass becomes
memory-bound; the float32 stack (``dtype="float32"``), the fused masked
update / gather-segment-sum autograd nodes and the per-backward gradient
buffer pool attack exactly that regime, so this module also records
tracemalloc peaks per batch size in both precisions and holds the fused ops
against their unfused (seed) formulations.  Beyond ~10³ merged paths the
*stacked* per-step RNN outputs themselves dominate peak memory; the
streaming checkpointed scan (``scan_mode="stream"``) removes them, and
``test_streaming_scan_large_graph`` holds it to ≤ 0.6x the stacked peak at
≥ 0.9x the stacked throughput on a ≥1000-path merged batch.

Every figure measured here is also written to ``BENCH_throughput.json`` at
the repo root (samples/sec and tracemalloc peaks keyed by batch size, dtype
and scan mode), so the perf trajectory is machine-readable across PRs.
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import time
import tracemalloc

import numpy as np
import pytest

from repro.datasets import (
    DatasetConfig,
    FeatureNormalizer,
    generate_dataset,
    tensorize_sample,
)
from repro.datasets.batching import merge_tensorized_samples
from repro.models import ExtendedRouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.nn.tensor import get_default_dtype
from repro.topology import geant2_topology, ring_topology

BATCH_SIZES = (1, 4, 16)
MEMORY_BATCH_SIZES = (1, 4, 16, 32)
DTYPES = ("float64", "float32")
NUM_SAMPLES = 32
EPOCHS = 2

BENCH_JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_throughput.json"

#: Accumulated measurements, dumped to ``BENCH_throughput.json`` after the
#: module runs.  Keys are stringified so the JSON round-trips cleanly.
RESULTS: dict = {"scan_mode_default": "compiled"}


def _resolved_dtype_name(dtype) -> str:
    return np.dtype(dtype).name if dtype is not None else get_default_dtype().name


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json(host_metadata):
    """Merge every measurement this module produced into the repo-root JSON.

    Read-update-write rather than overwrite, so a partial run (``-k`` subset,
    or an aborted ``-x`` session) refreshes only the sections it actually
    measured and the rest of the perf record survives.
    """
    yield
    RESULTS["unit"] = {"throughput": "trained samples per second",
                       "peak_memory": "tracemalloc peak bytes"}
    for key, row in RESULTS.items():
        if isinstance(row, dict) and key != "unit":
            row.setdefault("host", host_metadata)
    merged: dict = {}
    if BENCH_JSON_PATH.exists():
        try:
            merged = json.loads(BENCH_JSON_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    merged.update(RESULTS)
    BENCH_JSON_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def training_samples():
    return generate_dataset(ring_topology(5),
                            DatasetConfig(num_samples=NUM_SAMPLES, seed=41,
                                          small_queue_fraction=0.5))


def _make_trainer(bench_scale, batch_size: int, dtype=None, epochs: int = EPOCHS,
                  scan_mode: str = "stream", num_workers: int = 1):
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=bench_scale["state_dim"],
        path_state_dim=bench_scale["state_dim"],
        node_state_dim=bench_scale["state_dim"],
        message_passing_iterations=bench_scale["iterations"],
        seed=41,
        dtype=dtype,
        scan_mode=scan_mode,
    ))
    return RouteNetTrainer(model, TrainerConfig(
        epochs=epochs, learning_rate=0.003, batch_size=batch_size,
        dtype=dtype, num_workers=num_workers, seed=41))


def _throughput(samples, batch_size: int, bench_scale, repetitions: int = 2,
                dtype=None) -> float:
    """Train fresh models and return the best trained-samples-per-second.

    Taking the best of a couple of repetitions damps scheduler noise on
    shared CI runners, where a single run can stall for unrelated reasons.
    """
    best = 0.0
    for _ in range(repetitions):
        trainer = _make_trainer(bench_scale, batch_size, dtype=dtype)
        start = time.perf_counter()
        trainer.fit(samples)
        elapsed = time.perf_counter() - start
        best = max(best, EPOCHS * len(samples) / elapsed)
    return best


def _peak_memory(samples, batch_size: int, bench_scale, dtype=None) -> int:
    """tracemalloc peak (bytes) of a one-epoch training run."""
    trainer = _make_trainer(bench_scale, batch_size, dtype=dtype, epochs=1)
    tracemalloc.start()
    trainer.fit(samples)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_batched_training_throughput(training_samples, bench_scale):
    """Record samples/sec at batch sizes 1/4/16; batching must pay off."""
    throughput = {batch_size: _throughput(training_samples, batch_size, bench_scale)
                  for batch_size in BATCH_SIZES}
    RESULTS["throughput_by_batch_size"] = {
        "dtype": _resolved_dtype_name(None), "scan_mode": "stream",
        "samples_per_sec": {str(b): throughput[b] for b in BATCH_SIZES}}

    print("\ntraining throughput (trained samples per second)")
    for batch_size in BATCH_SIZES:
        speedup = throughput[batch_size] / throughput[1]
        print(f"  batch_size={batch_size:2d} : {throughput[batch_size]:8.2f} samples/s "
              f"({speedup:4.2f}x vs batch_size=1)")

    # The acceptance bar: a full batch must train strictly faster per sample
    # than one-scenario-per-step training.
    assert throughput[16] > throughput[1]


def test_peak_memory_by_batch_size_and_dtype(training_samples, bench_scale):
    """Record tracemalloc peaks at batch sizes 1/4/16/32 in both precisions.

    The float32 stack must deliver at least a 30% lower peak than the
    float64 (PR 1) path at batch_size 16 — the memory-bound large-merged-
    graph regime the ROADMAP flagged after the batching PR.
    """
    peaks = {dtype: {batch_size: _peak_memory(training_samples, batch_size,
                                              bench_scale, dtype=dtype)
                     for batch_size in MEMORY_BATCH_SIZES}
             for dtype in DTYPES}
    RESULTS["peak_memory_by_batch_size_and_dtype"] = {
        "scan_mode": "stream",
        "peak_bytes": {dtype: {str(b): peaks[dtype][b] for b in MEMORY_BATCH_SIZES}
                       for dtype in DTYPES}}

    print("\npeak training memory (tracemalloc, one epoch)")
    for batch_size in MEMORY_BATCH_SIZES:
        peak64 = peaks["float64"][batch_size]
        peak32 = peaks["float32"][batch_size]
        print(f"  batch_size={batch_size:2d} : float64 {peak64 / 1e6:8.2f} MB   "
              f"float32 {peak32 / 1e6:8.2f} MB   ({peak32 / peak64:4.2f}x)")

    assert peaks["float32"][16] <= 0.7 * peaks["float64"][16]


def test_float32_meets_speed_or_memory_bar(training_samples, bench_scale):
    """Acceptance criterion: at batch_size 16, float32 must beat the float64
    path by ≥1.3x samples/sec or ≥30% lower peak memory (it reliably halves
    the arrays, so the memory arm is the stable one on shared runners)."""
    speed64 = _throughput(training_samples, 16, bench_scale, repetitions=1,
                          dtype="float64")
    speed32 = _throughput(training_samples, 16, bench_scale, repetitions=1,
                          dtype="float32")
    peak64 = _peak_memory(training_samples, 16, bench_scale, dtype="float64")
    peak32 = _peak_memory(training_samples, 16, bench_scale, dtype="float32")
    speedup = speed32 / speed64
    memory_ratio = peak32 / peak64
    RESULTS["float32_vs_float64_bs16"] = {
        "scan_mode": "stream", "samples_per_sec": {"float64": speed64, "float32": speed32},
        "peak_bytes": {"float64": peak64, "float32": peak32},
        "speedup": speedup, "memory_ratio": memory_ratio}
    print(f"\nfloat32 vs float64 at batch_size=16: "
          f"{speedup:.2f}x samples/sec, {memory_ratio:.2f}x peak memory")
    assert speedup >= 1.3 or memory_ratio <= 0.7


def test_fused_backward_allocates_less_than_seed_ops():
    """The fused masked-update / gather-segment-sum nodes must beat their
    unfused (seed) formulations on allocation: lower forward+backward peak
    and pooled (reused) scratch buffers instead of per-step temporaries."""
    from repro.nn.tensor import (
        Tensor,
        gather_segment_sum,
        grad_buffer_pool_stats,
        masked_where,
        reset_grad_buffer_pool_stats,
        segment_sum,
        stack,
        where,
    )

    rng = np.random.default_rng(0)
    batch, steps, dim, iterations = 320, 10, 16, 3
    entry_rows, entry_cols = np.nonzero(rng.random((batch, steps)) > 0.25)
    segment_ids = rng.integers(0, batch, size=entry_rows.size)
    sequence_mask = rng.random((batch, steps)) > 0.3

    def run(fused: bool) -> int:
        """Peak bytes of forward+backward through a model-shaped graph:
        a masked scan followed by a gather+segment-sum, iterated."""
        weight = Tensor(rng.normal(size=(dim, dim)) * 0.1, requires_grad=True)
        state = Tensor(rng.normal(size=(batch, dim)), requires_grad=True)
        tracemalloc.start()
        current = state
        for _ in range(iterations):
            outputs = []
            for step in range(steps):
                new_state = (current @ weight).tanh()
                if fused:
                    current = masked_where(sequence_mask[:, step], new_state, current)
                else:
                    current = where(sequence_mask[:, step].reshape(batch, 1),
                                    new_state, current)
                outputs.append(current)
            stacked = stack(outputs, axis=1)
            if fused:
                aggregated = gather_segment_sum(
                    stacked, (entry_rows, entry_cols), segment_ids, batch)
            else:
                aggregated = segment_sum(
                    stacked[(entry_rows, entry_cols)], segment_ids, batch)
            current = aggregated.tanh()
        (current ** 2).sum().backward()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    seed_peak = run(fused=False)
    reset_grad_buffer_pool_stats()
    fused_peak = run(fused=True)
    pool = grad_buffer_pool_stats()
    print(f"\nforward+backward peak: seed ops {seed_peak / 1e6:.2f} MB, "
          f"fused ops {fused_peak / 1e6:.2f} MB "
          f"(pool: {pool['hits']} reuses, {pool['misses']} allocations)")
    assert fused_peak < seed_peak
    # The pool must actually recycle buffers across steps: many reuses per
    # fresh allocation.
    assert pool["hits"] >= 5 * max(pool["misses"], 1)


def _large_graph_step_stats(merged, bench_scale, scan_mode: str, dtype: str,
                            repetitions: int = 3):
    """(best step seconds, forward+backward tracemalloc peak) for one mode."""
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=bench_scale["state_dim"],
        path_state_dim=bench_scale["state_dim"],
        node_state_dim=bench_scale["state_dim"],
        message_passing_iterations=bench_scale["iterations"],
        seed=41, dtype=dtype, scan_mode=scan_mode))
    trainer = RouteNetTrainer(model, TrainerConfig(epochs=1, dtype=dtype, seed=41))
    trainer.train_step(merged)  # warm up the index / scan-plan caches
    best = np.inf
    for _ in range(repetitions):
        start = time.perf_counter()
        trainer.train_step(merged)
        best = min(best, time.perf_counter() - start)
    gc.collect()
    tracemalloc.start()
    trainer.train_step(merged)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return best, peak


def test_streaming_scan_large_graph(bench_scale):
    """Tentpole acceptance: on a ≥1000-path merged batch the streaming
    checkpointed scan must cut forward+backward peak tracemalloc to ≤ 0.6x
    the stacked scan at equal dtype while keeping ≥ 0.9x its samples/sec
    (the recompute overhead stays bounded)."""
    dtype = "float64"
    samples = generate_dataset(geant2_topology(),
                               DatasetConfig(num_samples=2, seed=7,
                                             small_queue_fraction=0.5))
    normalizer = FeatureNormalizer().fit(samples)
    merged = merge_tensorized_samples(
        [tensorize_sample(s, normalizer, dtype=dtype) for s in samples])
    assert merged.num_paths >= 1000

    stats = {mode: _large_graph_step_stats(merged, bench_scale, mode, dtype)
             for mode in ("stacked", "stream")}
    peak_ratio = stats["stream"][1] / stats["stacked"][1]
    # samples/sec ratio == inverse step-time ratio (same batch both modes).
    speed_ratio = stats["stacked"][0] / stats["stream"][0]
    RESULTS["large_graph_stream_vs_stacked"] = {
        "num_paths": int(merged.num_paths), "dtype": dtype,
        "samples_per_sec": {
            mode: merged.num_merged_samples / stats[mode][0] for mode in stats},
        "peak_bytes": {mode: stats[mode][1] for mode in stats},
        "peak_ratio": peak_ratio, "speed_ratio": speed_ratio}

    print(f"\nstreaming vs stacked scan at {merged.num_paths} merged paths ({dtype})")
    for mode in ("stacked", "stream"):
        step, peak = stats[mode]
        print(f"  {mode:8s}: {step * 1e3:7.1f} ms/step   peak {peak / 1e6:8.2f} MB")
    print(f"  ratios : peak {peak_ratio:.3f}x (bar ≤ 0.6), "
          f"speed {speed_ratio:.3f}x (bar ≥ 0.9)")

    assert peak_ratio <= 0.6
    assert speed_ratio >= 0.9


WORKER_COUNTS = (1, 2, 4)


def test_parallel_worker_scaling(bench_scale):
    """Data-parallel scaling: samples/sec at ``num_workers`` 1 / 2 / 4 on the
    large-merged-graph config (the regime the ROADMAP flagged after PR 3:
    the per-step Python loop, not memory, is the bottleneck).

    Every row lands in ``BENCH_throughput.json``.  The scaling bar —
    ≥ 1.2x samples/sec at 4 workers vs serial (the target is ≥ 1.5x; CI
    asserts 1.2x to absorb shared-runner noise) — is only asserted when the
    host actually has ≥ 4 CPUs; on fewer cores the workers time-share and
    the rows are recorded for the run anyway.
    """
    dtype = "float64"
    samples = generate_dataset(geant2_topology(),
                               DatasetConfig(num_samples=8, seed=7,
                                             small_queue_fraction=0.5))

    def throughput(num_workers: int, repetitions: int = 2) -> float:
        best = 0.0
        for _ in range(repetitions):
            trainer = _make_trainer(bench_scale, batch_size=2, dtype=dtype,
                                    epochs=1, num_workers=num_workers)
            start = time.perf_counter()
            trainer.fit(samples)
            best = max(best, len(samples) / (time.perf_counter() - start))
        return best

    cpus = os.cpu_count() or 1
    results = {workers: throughput(workers) for workers in WORKER_COUNTS}
    RESULTS["parallel_worker_scaling"] = {
        "dtype": dtype, "scan_mode": "stream", "batch_size": 2,
        "host_cpus": cpus,
        "samples_per_sec": {str(w): results[w] for w in WORKER_COUNTS},
        "speedup_vs_serial": {str(w): results[w] / results[1]
                              for w in WORKER_COUNTS}}

    print(f"\ndata-parallel scaling on ~1104-path merged batches ({cpus} CPUs)")
    for workers in WORKER_COUNTS:
        print(f"  num_workers={workers} : {results[workers]:8.2f} samples/s "
              f"({results[workers] / results[1]:4.2f}x vs serial)")

    assert all(value > 0 for value in results.values())
    if cpus >= 4:
        # Acceptance bar (CI floor; the local target is >= 1.5x).
        assert results[4] >= 1.2 * results[1]


def test_batched_step_equivalent_loss_scale(training_samples, bench_scale):
    """Batched training optimises the same objective (losses stay comparable)."""
    histories = {}
    for batch_size in (1, 16):
        model = ExtendedRouteNet(RouteNetConfig(
            link_state_dim=bench_scale["state_dim"],
            path_state_dim=bench_scale["state_dim"],
            node_state_dim=bench_scale["state_dim"],
            message_passing_iterations=bench_scale["iterations"],
            seed=41,
        ))
        trainer = RouteNetTrainer(model, TrainerConfig(
            epochs=EPOCHS, learning_rate=0.003, batch_size=batch_size, seed=41))
        histories[batch_size] = trainer.fit(training_samples)
    # Both runs start from identical weights on the same data: the first
    # epoch's average per-path loss must be in the same ballpark.
    first_small = histories[1].train_loss[0]
    first_large = histories[16].train_loss[0]
    assert first_large < 5 * first_small + 1.0
