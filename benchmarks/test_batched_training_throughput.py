"""Training throughput vs mini-batch size.

Mini-batching merges several scenarios into one disjoint-union graph per
optimisation step (``repro.datasets.batching``), so the per-step Python and
autograd overhead — building the computation graph, the optimiser book-keeping,
the message-passing index — amortises over the whole batch.  This benchmark
trains the same model on the same scenarios at batch sizes 1 / 4 / 16 and
records the throughput in trained samples per second; batching must make
training strictly faster per sample.

The scenarios are deliberately small graphs (a 5-node ring, 20 paths each):
that is the regime where the fixed per-step cost dominates and batching pays
the most.  On much larger graphs the merged batch outgrows the CPU caches
and the backward pass becomes memory-bound, which caps the achievable
speedup — scaling that regime is future work (see ROADMAP).
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import DatasetConfig, generate_dataset
from repro.models import ExtendedRouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.topology import ring_topology

BATCH_SIZES = (1, 4, 16)
NUM_SAMPLES = 32
EPOCHS = 2


@pytest.fixture(scope="module")
def training_samples():
    return generate_dataset(ring_topology(5),
                            DatasetConfig(num_samples=NUM_SAMPLES, seed=41,
                                          small_queue_fraction=0.5))


def _throughput(samples, batch_size: int, bench_scale, repetitions: int = 2) -> float:
    """Train fresh models and return the best trained-samples-per-second.

    Taking the best of a couple of repetitions damps scheduler noise on
    shared CI runners, where a single run can stall for unrelated reasons.
    """
    best = 0.0
    for _ in range(repetitions):
        model = ExtendedRouteNet(RouteNetConfig(
            link_state_dim=bench_scale["state_dim"],
            path_state_dim=bench_scale["state_dim"],
            node_state_dim=bench_scale["state_dim"],
            message_passing_iterations=bench_scale["iterations"],
            seed=41,
        ))
        trainer = RouteNetTrainer(model, TrainerConfig(
            epochs=EPOCHS, learning_rate=0.003, batch_size=batch_size, seed=41))
        start = time.perf_counter()
        trainer.fit(samples)
        elapsed = time.perf_counter() - start
        best = max(best, EPOCHS * len(samples) / elapsed)
    return best


def test_batched_training_throughput(training_samples, bench_scale):
    """Record samples/sec at batch sizes 1/4/16; batching must pay off."""
    throughput = {batch_size: _throughput(training_samples, batch_size, bench_scale)
                  for batch_size in BATCH_SIZES}

    print("\ntraining throughput (trained samples per second)")
    for batch_size in BATCH_SIZES:
        speedup = throughput[batch_size] / throughput[1]
        print(f"  batch_size={batch_size:2d} : {throughput[batch_size]:8.2f} samples/s "
              f"({speedup:4.2f}x vs batch_size=1)")

    # The acceptance bar: a full batch must train strictly faster per sample
    # than one-scenario-per-step training.
    assert throughput[16] > throughput[1]


def test_batched_step_equivalent_loss_scale(training_samples, bench_scale):
    """Batched training optimises the same objective (losses stay comparable)."""
    histories = {}
    for batch_size in (1, 16):
        model = ExtendedRouteNet(RouteNetConfig(
            link_state_dim=bench_scale["state_dim"],
            path_state_dim=bench_scale["state_dim"],
            node_state_dim=bench_scale["state_dim"],
            message_passing_iterations=bench_scale["iterations"],
            seed=41,
        ))
        trainer = RouteNetTrainer(model, TrainerConfig(
            epochs=EPOCHS, learning_rate=0.003, batch_size=batch_size, seed=41))
        histories[batch_size] = trainer.fit(training_samples)
    # Both runs start from identical weights on the same data: the first
    # epoch's average per-path loss must be in the same ballpark.
    first_small = histories[1].train_loss[0]
    first_large = histories[16].train_loss[0]
    assert first_large < 5 * first_small + 1.0
