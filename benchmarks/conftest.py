"""Shared configuration of the benchmark harness.

Every benchmark regenerates one experiment of DESIGN.md's experiment index.
Sizes are scaled down from the paper (400k training samples) so the whole
suite runs on a laptop CPU; set ``REPRO_BENCH_SCALE=full`` to use larger
sizes (several times slower) for tighter curves.
"""

from __future__ import annotations

import os
import platform

import numpy as np
import pytest

#: Scaled-down defaults (samples, epochs) used by the training benchmarks.
SMALL_SCALE = {
    "train_samples": 30,
    "eval_samples": 12,
    "epochs": 8,
    "state_dim": 12,
    "iterations": 3,
}

FULL_SCALE = {
    "train_samples": 80,
    "eval_samples": 30,
    "epochs": 15,
    "state_dim": 16,
    "iterations": 4,
}


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    """Benchmark sizing knobs, switchable via the REPRO_BENCH_SCALE env var."""
    if os.environ.get("REPRO_BENCH_SCALE", "small").lower() == "full":
        return dict(FULL_SCALE)
    return dict(SMALL_SCALE)


@pytest.fixture(scope="session")
def host_metadata() -> dict:
    """Host facts stamped onto every row written to ``BENCH_throughput.json``,
    so absolute samples/sec figures are interpretable across machines (and a
    regression vs the committed baseline can be discounted when the host
    changed)."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
    }
