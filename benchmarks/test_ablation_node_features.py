"""Experiment A (ablation): the gain comes from the queue-size node feature.

Trains the Extended RouteNet twice on the same mixed-queue NSFNET dataset:
once with the queue-size node feature visible and once with node features
zeroed out (same parameter count, no device information).  The benchmark
asserts that the visible-feature variant is the more accurate one, i.e. the
improvement reported in Fig. 2 is attributable to the information carried by
the node entity and not merely to the extra parameters of RNN_N.
"""

from __future__ import annotations

import pytest

from repro.datasets import DatasetConfig, generate_dataset, train_val_test_split
from repro.models import (
    ExtendedRouteNet,
    RouteNetConfig,
    RouteNetTrainer,
    TrainerConfig,
    evaluate_model,
)
from repro.topology import nsfnet_topology


@pytest.fixture(scope="module")
def ablation_results(bench_scale):
    # Congested NSFNET with fast links and short cables so queueing (and thus
    # the queue-size feature) dominates the end-to-end delay.
    base_topology = nsfnet_topology(capacity=2e6, propagation_delay=0.0005)
    config = DatasetConfig(
        num_samples=bench_scale["train_samples"] // 2 + bench_scale["eval_samples"],
        small_queue_fraction=0.5,
        utilization_range=(0.6, 0.9),
        seed=21,
    )
    samples = generate_dataset(base_topology, config)
    split_point = bench_scale["train_samples"] // 2
    train, test = samples[:split_point], samples[split_point:]

    model_config = RouteNetConfig(
        link_state_dim=bench_scale["state_dim"],
        path_state_dim=bench_scale["state_dim"],
        node_state_dim=bench_scale["state_dim"],
        message_passing_iterations=bench_scale["iterations"],
        seed=21,
    )
    trainer_config = TrainerConfig(epochs=bench_scale["epochs"], learning_rate=0.003, seed=21)

    results = {}
    for label, use_features in (("with-queue-sizes", True), ("features-zeroed", False)):
        model = ExtendedRouteNet(model_config, use_node_features=use_features)
        trainer = RouteNetTrainer(model, trainer_config)
        trainer.fit(train)
        results[label] = evaluate_model(model, test, trainer.normalizer)
    return results


def test_ablation_node_features(benchmark, ablation_results, bench_scale):
    """Time a single reduced-size training run; report the ablation table."""
    config = DatasetConfig(num_samples=6, small_queue_fraction=0.5, seed=22)
    samples = generate_dataset(nsfnet_topology(), config)
    model_config = RouteNetConfig(link_state_dim=8, path_state_dim=8, node_state_dim=8,
                                  message_passing_iterations=2, seed=22)

    def train_once():
        model = ExtendedRouteNet(model_config)
        RouteNetTrainer(model, TrainerConfig(epochs=2, learning_rate=0.003)).fit(samples)
        return model

    benchmark.pedantic(train_once, rounds=1, iterations=1)

    print("\nAblation — Extended RouteNet with vs without the queue-size feature")
    for label, metrics in ablation_results.items():
        print(f"  {label:18s}: mean rel. error {metrics['mean_relative_error']:.3f}, "
              f"median {metrics['median_relative_error']:.3f}")


def test_queue_size_feature_improves_accuracy(ablation_results):
    assert (ablation_results["with-queue-sizes"]["mean_relative_error"]
            < ablation_results["features-zeroed"]["mean_relative_error"])
