"""Experiment C (substrate fidelity): packet simulator vs analytic generator.

The training datasets are produced by the fast analytic M/M/1/K generator;
the evaluation-grade ground truth comes from the packet-level simulator.
This benchmark sweeps the offered load on a small topology and checks that
the two substrates agree on delay (within a modest tolerance) across the
whole operating range, so conclusions drawn on analytic data transfer to the
simulated (OMNeT++-like) setting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import AnalyticGroundTruth
from repro.routing import shortest_path_routing
from repro.simulator import SimulationConfig, simulate_network
from repro.topology import ring_topology
from repro.traffic import scaled_to_utilization, uniform_traffic

UTILIZATIONS = (0.2, 0.4, 0.6, 0.8)


def _scenario(utilization: float, seed: int = 0):
    topology = ring_topology(5, capacity=2e6)
    routing = shortest_path_routing(topology)
    traffic = uniform_traffic(5, 0.5, 1.5, rng=np.random.default_rng(seed))
    traffic = scaled_to_utilization(traffic, routing, utilization)
    return topology, routing, traffic


@pytest.fixture(scope="module")
def sweep_results():
    analytic = AnalyticGroundTruth(noise_std=0.0)
    rows = []
    for utilization in UTILIZATIONS:
        topology, routing, traffic = _scenario(utilization)
        simulated = simulate_network(topology, routing, traffic,
                                     SimulationConfig(duration=15.0, warmup=2.0, seed=3))
        measured = simulated.delays_vector(routing.pairs())
        predicted = analytic.generate(topology, routing, traffic).delays
        valid = np.isfinite(measured)
        ratio = float(np.mean(predicted[valid] / measured[valid]))
        rows.append({"utilization": utilization,
                     "simulated_mean_ms": float(np.nanmean(measured) * 1e3),
                     "analytic_mean_ms": float(predicted.mean() * 1e3),
                     "mean_ratio": ratio})
    return rows


def test_simulator_vs_analytic(benchmark, sweep_results):
    """Time one packet-level simulation of the sweep's mid-load point."""
    topology, routing, traffic = _scenario(0.6)

    def simulate_once():
        return simulate_network(topology, routing, traffic,
                                SimulationConfig(duration=3.0, warmup=0.5, seed=4))

    benchmark.pedantic(simulate_once, rounds=1, iterations=1)

    print("\nSimulator vs analytic generator across offered load")
    print(f"{'util':>5s} {'simulated (ms)':>15s} {'analytic (ms)':>14s} {'ratio':>7s}")
    for row in sweep_results:
        print(f"{row['utilization']:5.2f} {row['simulated_mean_ms']:15.3f} "
              f"{row['analytic_mean_ms']:14.3f} {row['mean_ratio']:7.3f}")


def test_agreement_within_tolerance(sweep_results):
    """The analytic generator tracks the simulator within ~35% across the sweep."""
    for row in sweep_results:
        assert 0.65 < row["mean_ratio"] < 1.35, row


def test_delay_grows_with_load(sweep_results):
    simulated = [row["simulated_mean_ms"] for row in sweep_results]
    analytic = [row["analytic_mean_ms"] for row in sweep_results]
    assert simulated == sorted(simulated)
    assert analytic == sorted(analytic)
