"""Experiment Fig. 2: CDF of the relative error of delay predictions.

Reproduces the paper's only results figure: the original RouteNet and the
Extended RouteNet are trained on GEANT2 scenarios with mixed queue sizes and
evaluated on (i) held-out GEANT2 scenarios and (ii) NSFNET scenarios never
seen during training.  The benchmark prints the tabulated CDF (the textual
equivalent of the figure) and asserts the paper's qualitative claims:

* the extended architecture is more accurate than the original on GEANT2;
* it stays more accurate on the unseen NSFNET topology.

Sample counts are scaled down from the paper's 400k/100k (see conftest).
"""

from __future__ import annotations

import pytest

from repro.pipeline import run_fig2_experiment


# The qualitative assertions below were calibrated on one specific training
# trajectory at this scaled-down size, where multi-epoch training is chaotic:
# the scan executors agree per step to ~1e-13 (see the scan-equivalence
# tests), but over 8 epochs that rounding amplifies to percent-level metric
# shifts that can flip a marginal extended-vs-original comparison.  The scan
# mode is therefore pinned here so the trajectory — and the claims measured
# on it — stay stable; compiled-mode correctness and speed are held by the
# gradcheck, equivalence and kernel-throughput suites.
FIG2_SCAN_MODE = "stream"


@pytest.fixture(scope="module")
def fig2_result(bench_scale):
    return run_fig2_experiment(
        num_train_samples=bench_scale["train_samples"],
        num_eval_samples=bench_scale["eval_samples"],
        epochs=bench_scale["epochs"],
        state_dim=bench_scale["state_dim"],
        message_passing_iterations=bench_scale["iterations"],
        seed=0,
        scan_mode=FIG2_SCAN_MODE,
    )


def test_fig2_relative_error_cdf(benchmark, bench_scale, fig2_result):
    """Time the full Fig. 2 pipeline once and report the error CDFs."""

    def run_pipeline():
        return run_fig2_experiment(
            num_train_samples=max(6, bench_scale["train_samples"] // 5),
            num_eval_samples=max(3, bench_scale["eval_samples"] // 4),
            epochs=max(2, bench_scale["epochs"] // 4),
            state_dim=8,
            message_passing_iterations=2,
            seed=1,
            scan_mode=FIG2_SCAN_MODE,
        )

    # The timed body is a reduced-size pipeline (the full-size result is
    # computed once in the module fixture and reported below).
    benchmark.pedantic(run_pipeline, rounds=1, iterations=1)

    print("\n" + "=" * 72)
    print("Fig. 2 — CDF of relative error in delay prediction")
    print("=" * 72)
    print(fig2_result.report())
    print("\ntraining seconds:", {k: round(v, 1) for k, v in fig2_result.training_seconds.items()})
    print("dataset sizes   :", fig2_result.dataset_sizes)


def test_fig2_extended_beats_original_on_geant2(fig2_result):
    assert (fig2_result.mean_error("extended-geant2")
            < fig2_result.mean_error("original-geant2"))


def test_fig2_extended_beats_original_on_unseen_nsfnet(fig2_result):
    assert (fig2_result.mean_error("extended-nsfnet")
            < fig2_result.mean_error("original-nsfnet"))


def test_fig2_extended_geant2_accuracy_band(fig2_result):
    """The extended model should sit well under 15% mean relative error on GEANT2
    (the paper's CDF concentrates most mass below ~10%)."""
    assert fig2_result.mean_error("extended-geant2") < 0.15
