"""Experiment B (baseline): queueing theory vs the mixed-queue-size ground truth.

The paper's introduction motivates learned models by the inaccuracy of
traditional queueing theory on complex scenarios.  This benchmark measures
that gap on packet-level-simulated NSFNET scenarios with mixed queue sizes:

* the M/M/1 model ignores buffer sizes (the same information the *original*
  RouteNet lacks) and should show a large error;
* the M/M/1/K model sees buffer sizes (like the *extended* RouteNet) and
  should be markedly more accurate;
* both are orders of magnitude cheaper than simulation — but only the
  queue-aware model is also accurate, which is the paper's core motivation
  for putting device features into the GNN.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MM1KModel, MM1Model
from repro.nn.metrics import mean_relative_error
from repro.routing import shortest_path_routing
from repro.simulator import SimulationConfig, simulate_network
from repro.topology import nsfnet_topology
from repro.topology.generators import assign_queue_sizes
from repro.traffic import scaled_to_utilization, uniform_traffic


def _scenario(seed: int, utilization: float = 0.75):
    rng = np.random.default_rng(seed)
    topology = assign_queue_sizes(nsfnet_topology(capacity=2e6), 0.5, rng=rng)
    routing = shortest_path_routing(topology)
    traffic = uniform_traffic(14, 0.5, 1.5, rng=rng)
    traffic = scaled_to_utilization(traffic, routing, utilization)
    return topology, routing, traffic


@pytest.fixture(scope="module")
def baseline_errors():
    errors = {"mm1": [], "mm1k": []}
    for seed in range(3):
        topology, routing, traffic = _scenario(seed)
        result = simulate_network(topology, routing, traffic,
                                  SimulationConfig(duration=8.0, warmup=1.0, seed=seed))
        measured = result.delays_vector(routing.pairs())
        valid = np.isfinite(measured)

        mm1 = MM1Model().predict_delays(topology, routing, traffic)
        mm1k = MM1KModel().predict_delays(topology, routing, traffic)
        usable = valid & np.isfinite(mm1)
        errors["mm1"].append(mean_relative_error(mm1[usable], measured[usable]))
        errors["mm1k"].append(mean_relative_error(mm1k[valid], measured[valid]))
    return {name: float(np.mean(values)) for name, values in errors.items()}


def test_baseline_queueing_theory(benchmark, baseline_errors):
    """Time the analytic M/M/1/K evaluation of one NSFNET scenario."""
    topology, routing, traffic = _scenario(99)
    model = MM1KModel()

    def evaluate():
        return model.predict_delays(topology, routing, traffic)

    benchmark(evaluate)

    print("\nQueueing-theory baselines vs packet-level ground truth (mixed queues)")
    print(f"  M/M/1   (queue-size blind): mean rel. error {baseline_errors['mm1']:.3f}")
    print(f"  M/M/1/K (queue-size aware): mean rel. error {baseline_errors['mm1k']:.3f}")


def test_queue_aware_baseline_beats_blind_baseline(baseline_errors):
    assert baseline_errors["mm1k"] < baseline_errors["mm1"]


def test_blind_baseline_error_is_substantial(baseline_errors):
    """Ignoring buffer sizes on a congested mixed-queue scenario costs accuracy."""
    assert baseline_errors["mm1"] > 0.15
