"""Experiment D (computational cost): GNN inference vs packet-level simulation.

RouteNet's selling point is "accuracy comparable to packet-level simulators
with a very low computational cost".  This benchmark times, on the same
GEANT2 scenario, (a) one forward pass of the trained Extended RouteNet and
(b) one packet-level simulation, and asserts the GNN is at least an order of
magnitude faster.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.datasets import DatasetConfig, FeatureNormalizer, generate_dataset, tensorize_sample
from repro.models import ExtendedRouteNet, RouteNetConfig
from repro.routing import shortest_path_routing
from repro.simulator import SimulationConfig, simulate_network
from repro.topology import geant2_topology
from repro.topology.generators import assign_queue_sizes
from repro.traffic import scaled_to_utilization, uniform_traffic


@pytest.fixture(scope="module")
def inference_setup(bench_scale):
    samples = generate_dataset(geant2_topology(),
                               DatasetConfig(num_samples=4, seed=31, small_queue_fraction=0.5))
    normalizer = FeatureNormalizer().fit(samples)
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=bench_scale["state_dim"],
        path_state_dim=bench_scale["state_dim"],
        node_state_dim=bench_scale["state_dim"],
        message_passing_iterations=bench_scale["iterations"],
        seed=31,
    ))
    tensorized = tensorize_sample(samples[0], normalizer)
    return model, tensorized


@pytest.fixture(scope="module")
def simulation_scenario():
    rng = np.random.default_rng(31)
    topology = assign_queue_sizes(geant2_topology(capacity=2e6), 0.5, rng=rng)
    routing = shortest_path_routing(topology)
    traffic = uniform_traffic(24, 0.5, 1.5, rng=rng)
    traffic = scaled_to_utilization(traffic, routing, 0.7)
    return topology, routing, traffic


def test_gnn_inference_cost(benchmark, inference_setup):
    """Time one Extended RouteNet forward pass on a full GEANT2 sample."""
    model, tensorized = inference_setup
    result = benchmark(lambda: model.predict(tensorized))
    assert result.shape == (tensorized.num_paths,)


def test_simulation_cost_and_speedup(benchmark, inference_setup, simulation_scenario):
    """Time one packet-level simulation of the same scenario and report the speedup."""
    topology, routing, traffic = simulation_scenario
    config = SimulationConfig(duration=5.0, warmup=0.5, seed=31)

    result = benchmark.pedantic(
        lambda: simulate_network(topology, routing, traffic, config), rounds=1, iterations=1)
    assert result.total_packets_delivered > 0

    model, tensorized = inference_setup
    start = time.perf_counter()
    repetitions = 5
    for _ in range(repetitions):
        model.predict(tensorized)
    gnn_seconds = (time.perf_counter() - start) / repetitions

    start = time.perf_counter()
    simulate_network(topology, routing, traffic, config)
    simulation_seconds = time.perf_counter() - start

    speedup = simulation_seconds / gnn_seconds
    print(f"\nGNN inference        : {gnn_seconds * 1e3:8.1f} ms per scenario")
    print(f"packet-level sim     : {simulation_seconds:8.2f} s per scenario")
    print(f"speedup              : {speedup:8.1f}x")
    assert speedup > 10.0
