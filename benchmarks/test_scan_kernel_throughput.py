"""Compiled scan kernels vs the interpreted streaming scan, plus binary shards.

The compiled path (``scan_mode="compiled"``) replaces the interpreted
per-step autograd tape of the RNN scan with precompiled step plans and
raw-NumPy GRU/LSTM kernels: input projections hoisted to one BLAS call per
source per scan, gate buffers reused across steps, scatters run as
presorted ``np.add.reduceat``, and a closed-form backward that never builds
a Tensor graph.  This module measures what that buys on the reference
workload every scan benchmark uses — the 1104-path merged batch of two
GEANT2 scenarios — and holds the acceptance bar: **≥ 1.3x** train-step
samples/sec over the interpreted streaming scan at equal dtype.

It also measures the format-3 binary (npz) shard payload against the
format-2 gzipped-JSONL payload on a full sharded-store read pass — the
decode work a :class:`~repro.datasets.prefetch.BatchPrefetcher` producer
performs every streamed epoch.

Every row lands in ``BENCH_throughput.json``.  The kernel row also carries
a **soft regression check**: when the committed baseline already holds a
``scan_kernel_compiled_vs_stream`` row and this run's compiled samples/sec
drops more than 10% below it, the drop is printed loudly (host metadata
tells apples from oranges) but the run does not fail — absolute throughput
is host-dependent; only the compiled-vs-stream ratio is asserted.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

import numpy as np
import pytest

from repro.datasets import (
    DatasetConfig,
    FeatureNormalizer,
    generate_dataset,
    save_dataset,
    tensorize_sample,
)
from repro.datasets.batching import merge_tensorized_samples
from repro.datasets.sharded import ShardedDatasetReader
from repro.models import ExtendedRouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.topology import geant2_topology

BENCH_JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_throughput.json"

DTYPE = "float64"
SPEEDUP_BAR = 1.3
SOFT_REGRESSION_TOLERANCE = 0.10

RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json(host_metadata):
    """Merge this module's rows into the repo-root JSON (read-update-write,
    like the other throughput benchmarks, so partial runs keep other rows)."""
    yield
    for key, row in RESULTS.items():
        if isinstance(row, dict) and key != "unit":
            row.setdefault("host", host_metadata)
    merged: dict = {}
    if BENCH_JSON_PATH.exists():
        try:
            merged = json.loads(BENCH_JSON_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    merged.update(RESULTS)
    BENCH_JSON_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def reference_batch():
    """The 1104-path merged batch (two GEANT2 scenarios) of the scan benches."""
    samples = generate_dataset(geant2_topology(),
                               DatasetConfig(num_samples=2, seed=7,
                                             small_queue_fraction=0.5))
    normalizer = FeatureNormalizer().fit(samples)
    merged = merge_tensorized_samples(
        [tensorize_sample(s, normalizer, dtype=DTYPE) for s in samples])
    assert merged.num_paths >= 1000
    return merged


def _best_step_seconds(merged, bench_scale,
                       repetitions: int = 5) -> dict:
    """Best full train-step (forward+backward+update) wall time per mode.

    The two modes are timed *interleaved* (stream, compiled, stream, ...)
    rather than in separate blocks: the asserted quantity is their ratio,
    and on busy/1-CPU hosts the background load drifts over seconds —
    interleaving makes both modes sample the same conditions so the drift
    cancels instead of landing entirely on one mode.
    """
    trainers = {}
    for mode in ("stream", "compiled"):
        model = ExtendedRouteNet(RouteNetConfig(
            link_state_dim=bench_scale["state_dim"],
            path_state_dim=bench_scale["state_dim"],
            node_state_dim=bench_scale["state_dim"],
            message_passing_iterations=bench_scale["iterations"],
            seed=41, dtype=DTYPE, scan_mode=mode))
        trainers[mode] = RouteNetTrainer(
            model, TrainerConfig(epochs=1, dtype=DTYPE, seed=41))
        trainers[mode].train_step(merged)  # warm index/plan/kernel caches
    best = {mode: np.inf for mode in trainers}
    for _ in range(repetitions):
        for mode, trainer in trainers.items():
            gc.collect()
            start = time.perf_counter()
            trainer.train_step(merged)
            best[mode] = min(best[mode], time.perf_counter() - start)
    return best


def test_compiled_kernel_speedup(reference_batch, bench_scale):
    """Tentpole acceptance: compiled step kernels must deliver ≥ 1.3x the
    interpreted streaming scan's train-step samples/sec on the 1104-path
    GEANT2 reference batch at equal dtype."""
    merged = reference_batch
    step_seconds = _best_step_seconds(merged, bench_scale)
    samples_per_sec = {mode: merged.num_merged_samples / step_seconds[mode]
                       for mode in step_seconds}
    speedup = samples_per_sec["compiled"] / samples_per_sec["stream"]

    baseline = None
    if BENCH_JSON_PATH.exists():
        try:
            committed = json.loads(BENCH_JSON_PATH.read_text())
            baseline = (committed.get("scan_kernel_compiled_vs_stream", {})
                        .get("samples_per_sec", {}).get("compiled"))
        except (json.JSONDecodeError, OSError):
            baseline = None

    RESULTS["scan_kernel_compiled_vs_stream"] = {
        "num_paths": int(merged.num_paths), "dtype": DTYPE,
        "state_dim": bench_scale["state_dim"],
        "message_passing_iterations": bench_scale["iterations"],
        "samples_per_sec": samples_per_sec,
        "step_seconds": step_seconds,
        "speedup": speedup}

    print(f"\ncompiled vs interpreted streaming scan at {merged.num_paths} "
          f"merged paths ({DTYPE})")
    for mode in ("stream", "compiled"):
        print(f"  {mode:8s}: {step_seconds[mode] * 1e3:7.1f} ms/step   "
              f"{samples_per_sec[mode]:7.2f} samples/s")
    print(f"  speedup : {speedup:.3f}x (bar ≥ {SPEEDUP_BAR})")
    if baseline is not None:
        drop = 1.0 - samples_per_sec["compiled"] / baseline
        if drop > SOFT_REGRESSION_TOLERANCE:
            # Soft check only: absolute throughput is host-dependent (see the
            # per-row host metadata); the drop is surfaced, not asserted.
            print(f"  NOTE: compiled throughput {samples_per_sec['compiled']:.2f} "
                  f"samples/s is {drop:.1%} below the committed baseline "
                  f"{baseline:.2f} samples/s (>10% soft-regression threshold)")
        else:
            print(f"  baseline: {baseline:.2f} samples/s committed "
                  f"({-drop:+.1%} this run)")

    assert speedup >= SPEEDUP_BAR


def test_binary_shard_read_throughput(tmp_path_factory, bench_scale):
    """Format-3 npz shards must decode a full reader pass faster than the
    format-2 gzipped-JSONL shards they replace (the per-epoch producer-side
    work of every streamed fit)."""
    samples = generate_dataset(geant2_topology(),
                               DatasetConfig(num_samples=16, seed=7,
                                             small_queue_fraction=0.5))
    root = tmp_path_factory.mktemp("payload-bench")
    stores = {payload: save_dataset(samples, str(root / payload), shards=4,
                                    shard_payload=payload)
              for payload in ("jsonl", "binary")}

    def read_speed(path: str, repetitions: int = 3) -> float:
        best = np.inf
        for _ in range(repetitions):
            reader = ShardedDatasetReader(path)
            start = time.perf_counter()
            count = sum(1 for _ in reader)
            best = min(best, time.perf_counter() - start)
            assert count == len(samples)
        return len(samples) / best

    speeds = {payload: read_speed(stores[payload]) for payload in stores}
    ratio = speeds["binary"] / speeds["jsonl"]
    RESULTS["shard_payload_read_throughput"] = {
        "num_samples": len(samples), "shards": 4, "topology": "GEANT2",
        "samples_per_sec": speeds, "binary_vs_jsonl": ratio}

    print(f"\nsharded-store read pass, {len(samples)} GEANT2 scenarios")
    for payload in ("jsonl", "binary"):
        print(f"  {payload:7s}: {speeds[payload]:8.2f} samples/s")
    print(f"  binary vs jsonl: {ratio:.2f}x")

    # Locally the gap is ~1.3-1.7x; the asserted floor absorbs CI noise.
    assert ratio >= 1.1
