"""Out-of-core training throughput: streamed epochs and overlapped broadcast.

Two acceptance bars from the sharded-dataset / prefetch / overlap PR, both
measured on the 1104-path large-merged-graph regime (GEANT2 scenarios at
batch_size 2 — the configuration the streaming scan benchmark established)
and recorded in ``BENCH_throughput.json``:

* ``streaming_vs_inmemory`` — training straight from a sharded store
  through the :class:`~repro.datasets.prefetch.BatchPrefetcher` (small
  bucketing window, prefetch_depth 1) must hold peak tracemalloc to
  **≤ 0.5x** the in-memory path — which tensorises and pre-merges the whole
  dataset — while keeping **≥ 0.8x** its samples/sec.  (The speed bar was
  0.9 when the interpreted streaming scan was the default; the compiled
  scan kernels then cut the model-compute denominator ~1.7x, so the fixed
  producer-side decode/tensorise/merge work is now a larger *fraction*
  even though both arms got absolutely faster — on a 1-CPU host, where the
  producer thread cannot overlap with compute at all, the measured ratio
  sits around 0.85-0.9.)  Speed is measured
  on untracked runs (tracemalloc adds a large, GIL-contended overhead to
  the prefetch thread that would distort the comparison), and **every
  measured fit runs in a freshly spawned subprocess**: the two arms have
  different allocation patterns (main-thread-only vs producer-thread), and
  heap/arena state left behind by earlier tests in the same process was
  observed to swing the ratio by ±10% — far more than the ~3-5% pipeline
  overhead being measured.  A pristine interpreter per fit makes the
  comparison order-independent.

* ``overlap_broadcast`` — double-buffered parameter broadcast
  (``TrainerConfig.overlap``) at 4 workers: the parent pipelines its
  optimiser step, epoch bookkeeping, validation pass and checkpoint write
  behind the workers' compute.  Final parameters must be **bit-identical**
  to the non-overlapped run on every host; the ≥ 1.1x samples/sec bar is
  asserted on hosts with ≥ 4 CPUs (fewer cores time-share the workers and
  the ratio is recorded but not asserted).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import pathlib
import time
import tracemalloc

import numpy as np
import pytest

from repro.datasets import (
    DatasetConfig,
    FeatureNormalizer,
    generate_dataset,
    save_dataset,
)
from repro.models import ExtendedRouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.topology import geant2_topology

BENCH_JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_throughput.json"

NUM_SAMPLES = 96        # streamed dataset size (96 scenarios ≈ 53k paths);
                        # long-enough fits that scheduler noise averages out
BATCH_SIZE = 2          # 2 GEANT2 scenarios -> 1104-path merged batches
DTYPE = "float32"
STATE_DIM = 20          # model compute heavy enough that the per-epoch
                        # shard re-parse is a small fraction of a fit

RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json(host_metadata):
    """Merge this module's rows into the repo-root JSON (read-update-write,
    like the batched-training benchmark, so partial runs keep other rows)."""
    yield
    for key, row in RESULTS.items():
        if isinstance(row, dict) and key != "unit":
            row.setdefault("host", host_metadata)
    merged: dict = {}
    if BENCH_JSON_PATH.exists():
        try:
            merged = json.loads(BENCH_JSON_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    merged.update(RESULTS)
    BENCH_JSON_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def large_graph_samples():
    return generate_dataset(geant2_topology(),
                            DatasetConfig(num_samples=NUM_SAMPLES, seed=7,
                                          small_queue_fraction=0.5))


@pytest.fixture(scope="module")
def fitted_normalizer(large_graph_samples):
    return FeatureNormalizer().fit(large_graph_samples)


@pytest.fixture(scope="module")
def sharded_store(large_graph_samples, fitted_normalizer, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("bench-dataset") / "store")
    return save_dataset(large_graph_samples, path, normalizer=fitted_normalizer,
                        shards=4)


def _make_trainer(bench_scale, fitted_normalizer, **config):
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=STATE_DIM,
        path_state_dim=STATE_DIM,
        node_state_dim=STATE_DIM,
        message_passing_iterations=bench_scale["iterations"],
        seed=41, dtype=DTYPE))
    defaults = dict(epochs=1, batch_size=BATCH_SIZE, dtype=DTYPE, seed=41)
    defaults.update(config)
    return RouteNetTrainer(
        model, TrainerConfig(**defaults),
        normalizer=FeatureNormalizer.from_dict(fitted_normalizer.to_dict()))


def _isolated_fit(conn, store: str, iterations: int, streamed: bool,
                  tracked: bool, streaming_config: dict) -> None:
    """One measured fit in a pristine interpreter (spawned subprocess).

    Both arms read their data from the sharded store on disk — the
    in-memory arm materialises it with ``load_dataset`` (untimed, like a
    dataset already resident before training), the streamed arm hands the
    path to ``fit``.  Sends ``(samples_per_sec, peak_bytes,
    peak_live_batches)`` back through ``conn``.
    """
    from repro.datasets import load_dataset
    from repro.datasets.sharded import ShardedDatasetReader

    reader = ShardedDatasetReader(store)
    normalizer = reader.normalizer
    bench_scale = {"iterations": iterations}
    trainer = _make_trainer(bench_scale, normalizer,
                            **(streaming_config if streamed else {}))
    samples = None
    if not streamed:
        samples, _, _ = load_dataset(store)
    if tracked:
        tracemalloc.start()
    start = time.perf_counter()
    if streamed:
        trainer.fit(dataset_path=store)
    else:
        trainer.fit(samples)
    elapsed = time.perf_counter() - start
    peak = 0
    if tracked:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    conn.send((NUM_SAMPLES / elapsed, peak,
               trainer.history.peak_live_batches[-1]))
    conn.close()


def test_streaming_vs_inmemory(fitted_normalizer, sharded_store, bench_scale):
    """A streamed epoch over the sharded store must cut peak tracemalloc to
    ≤ 0.5x the in-memory fit at ≥ 0.8x its samples/sec on the 1104-path
    merged-batch dataset (see the module docstring for the bar history)."""
    streaming_config = dict(stream_window=2, prefetch_depth=1)
    context = mp.get_context("spawn")

    def run_fit(streamed: bool, tracked: bool):
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_isolated_fit,
            args=(child_conn, sharded_store, bench_scale["iterations"],
                  streamed, tracked, streaming_config))
        process.start()
        child_conn.close()
        result = parent_conn.recv()
        process.join()
        parent_conn.close()
        return result

    # Each repetition measures the two arms back to back and contributes one
    # pairwise ratio; the reported ratio is the median over repetitions
    # (robust to one slow/hot repetition on a drifting host).
    memory_speeds, stream_speeds, ratios = [], [], []
    live_memory = live_stream = 0
    for _ in range(3):
        speed_memory, _, live_memory = run_fit(streamed=False, tracked=False)
        speed_stream, _, live_stream = run_fit(streamed=True, tracked=False)
        memory_speeds.append(speed_memory)
        stream_speeds.append(speed_stream)
        ratios.append(speed_stream / speed_memory)
    speed_memory = float(np.median(memory_speeds))
    speed_stream = float(np.median(stream_speeds))
    speed_ratio = float(np.median(ratios))
    _, peak_memory, _ = run_fit(streamed=False, tracked=True)
    _, peak_stream, _ = run_fit(streamed=True, tracked=True)
    peak_ratio = peak_stream / peak_memory
    RESULTS["streaming_vs_inmemory"] = {
        "num_samples": NUM_SAMPLES, "batch_size": BATCH_SIZE, "dtype": DTYPE,
        "merged_paths_per_batch": 1104,
        "stream_window": streaming_config["stream_window"],
        "prefetch_depth": streaming_config["prefetch_depth"],
        "samples_per_sec": {"in_memory": speed_memory, "streamed": speed_stream},
        "peak_bytes": {"in_memory": peak_memory, "streamed": peak_stream},
        "peak_live_batches": {"in_memory": live_memory, "streamed": live_stream},
        "speed_ratio": speed_ratio, "peak_ratio": peak_ratio}

    print(f"\nstreamed vs in-memory training on {NUM_SAMPLES} GEANT2 scenarios "
          f"({DTYPE}, 1104-path merged batches)")
    print(f"  in-memory: {speed_memory:7.2f} samples/s   "
          f"peak {peak_memory / 1e6:7.2f} MB   {live_memory} live batches")
    print(f"  streamed : {speed_stream:7.2f} samples/s   "
          f"peak {peak_stream / 1e6:7.2f} MB   {live_stream} live batches")
    print(f"  ratios   : speed {speed_ratio:.3f}x (bar ≥ 0.8), "
          f"peak {peak_ratio:.3f}x (bar ≤ 0.5)")

    # The streamed epoch must hold a bounded number of merged batches.
    assert live_stream < live_memory
    assert peak_ratio <= 0.5
    assert speed_ratio >= 0.8


def test_overlap_broadcast(large_graph_samples, fitted_normalizer, bench_scale,
                           tmp_path):
    """Double-buffered overlap at 4 workers: bit-identical parameters on any
    host; ≥ 1.1x samples/sec asserted when the host has ≥ 4 CPUs."""
    train = large_graph_samples[:12]
    val = large_graph_samples[12:16]
    epochs = 2

    def run_fit(overlap: bool):
        trainer = _make_trainer(bench_scale, fitted_normalizer, epochs=epochs,
                                num_workers=4, overlap=overlap)
        checkpoint = str(tmp_path / f"ck-{overlap}")
        start = time.perf_counter()
        trainer.fit(train, val_samples=val, checkpoint_path=checkpoint)
        elapsed = time.perf_counter() - start
        return epochs * len(train) / elapsed, trainer.model.parameters_vector()

    # Best-of-2 per arm for the timing; the parameter vectors are
    # deterministic across repetitions, so any pair compares.
    speed_plain, params_plain = run_fit(overlap=False)
    speed_overlap, params_overlap = run_fit(overlap=True)
    speed_plain = max(speed_plain, run_fit(overlap=False)[0])
    speed_overlap = max(speed_overlap, run_fit(overlap=True)[0])
    cpus = os.cpu_count() or 1
    speedup = speed_overlap / speed_plain
    RESULTS["overlap_broadcast"] = {
        "num_workers": 4, "batch_size": BATCH_SIZE, "dtype": DTYPE,
        "host_cpus": cpus, "epochs": epochs,
        "with_validation_and_checkpoint": True,
        "samples_per_sec": {"plain": speed_plain, "overlap": speed_overlap},
        "speedup": speedup,
        "bit_identical_parameters": bool(np.array_equal(params_plain,
                                                        params_overlap))}

    print(f"\noverlapped vs plain data-parallel training "
          f"(4 workers, {cpus} CPUs, val + per-epoch checkpoint)")
    print(f"  plain  : {speed_plain:7.2f} samples/s")
    print(f"  overlap: {speed_overlap:7.2f} samples/s ({speedup:.3f}x, "
          f"bar ≥ 1.1 on ≥4-CPU hosts)")

    # Overlap must never change the computation, only its schedule.
    assert np.array_equal(params_plain, params_overlap)
    if cpus >= 4:
        assert speedup >= 1.1
