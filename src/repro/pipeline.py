"""End-to-end experiment pipelines (the code behind Fig. 2 and the examples).

:func:`run_fig2_experiment` reproduces the structure of the paper's
evaluation at a configurable (scaled-down) size:

1. generate a dataset of GEANT2 samples with mixed queue sizes,
2. train the original RouteNet and the Extended RouteNet on the same
   training split,
3. evaluate both on a held-out GEANT2 split *and* on freshly generated
   NSFNET samples (a topology never seen during training),
4. return the four relative-error CDFs — (extended, original) x (GEANT2,
   NSFNET) — plus summary statistics, matching the four curves of Fig. 2.

:func:`quick_experiment` is a minutes-scale configuration used by the
quickstart example and the smoke tests.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.factory import DatasetJobSpec, run_job
from repro.datasets.generator import DatasetConfig, generate_dataset
from repro.datasets.sample import Sample
from repro.datasets.sharded import ShardedDatasetReader
from repro.datasets.splits import train_val_test_split
from repro.evaluation.cdf import ErrorCDF, compare_cdfs
from repro.evaluation.report import format_cdf_table
from repro.models.config import RouteNetConfig
from repro.models.extended import ExtendedRouteNet
from repro.models.routenet import RouteNet
from repro.models.trainer import RouteNetTrainer, TrainerConfig, evaluate_model
from repro.topology.geant2 import geant2_topology
from repro.topology.graph import Topology
from repro.topology.nsfnet import nsfnet_topology

__all__ = ["ExperimentResult", "run_fig2_experiment", "quick_experiment"]


@dataclasses.dataclass
class ExperimentResult:
    """Output of a Fig. 2-style experiment."""

    cdfs: Dict[str, ErrorCDF]
    metrics: Dict[str, Dict[str, object]]
    training_seconds: Dict[str, float]
    dataset_sizes: Dict[str, int]

    def summary_rows(self) -> List[Dict[str, float]]:
        """Fig. 2 summary: one row per (model, topology) curve."""
        return compare_cdfs(list(self.cdfs.values()))

    def report(self) -> str:
        """Human-readable text report (the tabular equivalent of Fig. 2)."""
        return format_cdf_table(list(self.cdfs.values()))

    def mean_error(self, label: str) -> float:
        """Mean absolute relative error of one curve."""
        return self.cdfs[label].mean_absolute_error()




def run_fig2_experiment(
    train_topology: Optional[Topology] = None,
    generalization_topology: Optional[Topology] = None,
    num_train_samples: int = 60,
    num_eval_samples: int = 20,
    epochs: int = 12,
    small_queue_fraction: float = 0.5,
    message_passing_iterations: int = 4,
    state_dim: int = 16,
    learning_rate: float = 0.003,
    batch_size: int = 1,
    dtype: Optional[str] = None,
    scan_mode: str = "compiled",
    bucket_by_length: bool = True,
    num_workers: int = 1,
    overlap: bool = False,
    seed: int = 0,
    backend: str = "analytic",
    utilization_range=(0.35, 0.8),
    dataset_store: Optional[str] = None,
    dataset_workers: int = 1,
    dataset_unit_size: int = 16,
) -> ExperimentResult:
    """Train both models and evaluate them on seen and unseen topologies.

    The defaults are scaled down from the paper's 400k/100k sample counts to
    run on a CPU in minutes; the comparison structure is identical.
    ``dtype`` selects the training precision ("float32" roughly halves the
    training memory footprint; ``None`` keeps the process default).
    ``scan_mode`` picks the path-RNN formulation ("compiled" — the
    checkpointed streaming scan through precompiled step kernels, fastest
    and flat peak memory on large merged graphs — "stream" for the
    interpreted streaming scan, or "stacked" for the original materialised
    scan) and
    ``bucket_by_length`` groups similar-length scenarios per merged batch
    when ``batch_size > 1``.  ``num_workers > 1`` trains data-parallel: each
    optimisation step path-weight-averages the gradients of up to that many
    batches computed concurrently on worker-process model replicas;
    ``overlap`` additionally pipelines the parent's optimiser step and
    bookkeeping with the next group's worker compute (double-buffered
    parameter broadcast, bit-identical results).
    """
    train_topology = train_topology if train_topology is not None else geant2_topology()
    generalization_topology = (generalization_topology if generalization_topology is not None
                               else nsfnet_topology())

    dataset_config = DatasetConfig(
        num_samples=num_train_samples + num_eval_samples,
        small_queue_fraction=small_queue_fraction,
        utilization_range=utilization_range,
        backend=backend,
        seed=seed,
    )
    if dataset_store is not None:
        # Factory-backed dataset: the primary sweep runs as a resumable
        # job into `dataset_store` — interrupted experiments pick their
        # generation up where it stopped, and `dataset_workers` farms the
        # simulation out across processes.  Requires a factory-resolvable
        # topology name (the default GEANT2 qualifies); sample content
        # follows the factory's per-unit seed derivation, not the legacy
        # serial stream, so it differs from the in-memory default path.
        spec = DatasetJobSpec(
            topologies=(train_topology.name,),
            samples_per_scenario=num_train_samples + num_eval_samples,
            unit_size=dataset_unit_size,
            seed=seed,
            base_config={
                "small_queue_fraction": small_queue_fraction,
                "utilization_range": tuple(utilization_range),
                "backend": backend,
            },
        )
        run_job(spec, dataset_store, workers=dataset_workers,
                resume=os.path.exists(os.path.join(dataset_store, "manifest.json")))
        primary_samples = ShardedDatasetReader(dataset_store).read_all()
    else:
        primary_samples = generate_dataset(train_topology, dataset_config)
    train_samples, val_samples, test_samples = train_val_test_split(
        primary_samples,
        train_fraction=num_train_samples / len(primary_samples),
        val_fraction=0.0,
        seed=seed,
    )
    test_samples = val_samples + test_samples

    generalization_config = dataclasses.replace(
        dataset_config, num_samples=num_eval_samples, seed=seed + 1)
    generalization_samples = generate_dataset(generalization_topology, generalization_config)

    model_config = RouteNetConfig(
        link_state_dim=state_dim,
        path_state_dim=state_dim,
        node_state_dim=state_dim,
        message_passing_iterations=message_passing_iterations,
        dtype=dtype,
        scan_mode=scan_mode,
        seed=seed,
    )
    trainer_config = TrainerConfig(epochs=epochs, learning_rate=learning_rate,
                                   batch_size=batch_size, dtype=dtype,
                                   bucket_by_length=bucket_by_length,
                                   num_workers=num_workers, overlap=overlap,
                                   seed=seed)

    cdfs: Dict[str, ErrorCDF] = {}
    metrics: Dict[str, Dict[str, object]] = {}
    training_seconds: Dict[str, float] = {}

    for model_name, model in (
        ("extended", ExtendedRouteNet(model_config)),
        ("original", RouteNet(model_config)),
    ):
        trainer = RouteNetTrainer(model, trainer_config)
        start = time.perf_counter()
        trainer.fit(train_samples)
        training_seconds[model_name] = time.perf_counter() - start

        for topology_name, eval_samples in (
            (train_topology.name, test_samples),
            (generalization_topology.name, generalization_samples),
        ):
            # One evaluate_model call feeds both the metrics table and the
            # CDF; the normaliser's memo cache means the samples are
            # tensorised exactly once per (model, topology) pair.
            label = f"{model_name}-{topology_name}"
            metrics[label] = evaluate_model(model, eval_samples, trainer.normalizer,
                                            dtype=dtype)
            cdfs[label] = ErrorCDF(label=label, errors=metrics[label]["relative_errors"])

    return ExperimentResult(
        cdfs=cdfs,
        metrics=metrics,
        training_seconds=training_seconds,
        dataset_sizes={
            "train": len(train_samples),
            "test": len(test_samples),
            "generalization": len(generalization_samples),
        },
    )


def quick_experiment(seed: int = 0) -> ExperimentResult:
    """A minutes-scale Fig. 2 experiment on small synthetic-size datasets."""
    return run_fig2_experiment(
        num_train_samples=16,
        num_eval_samples=6,
        epochs=6,
        state_dim=8,
        message_passing_iterations=3,
        seed=seed,
    )
