"""Static (model-free) load analysis of a scenario: link loads and bottlenecks."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.routing.scheme import RoutingScheme
from repro.routing.tables import routing_matrix
from repro.traffic.matrix import TrafficMatrix

__all__ = ["link_loads", "link_utilizations", "bottleneck_links", "path_utilization_summary"]


def link_loads(routing: RoutingScheme, traffic: TrafficMatrix) -> np.ndarray:
    """Offered load per link in bits/s (routing-matrix product, no queueing)."""
    if traffic.num_nodes != routing.topology.num_nodes:
        raise ValueError("traffic matrix size does not match the topology")
    matrix = routing_matrix(routing)
    demands = traffic.as_vector(routing.pairs())
    return matrix.T @ demands


def link_utilizations(routing: RoutingScheme, traffic: TrafficMatrix) -> np.ndarray:
    """Offered utilisation per link (load / capacity), in link-index order."""
    loads = link_loads(routing, traffic)
    capacities = np.array(routing.topology.capacities())
    return loads / capacities


def bottleneck_links(routing: RoutingScheme, traffic: TrafficMatrix,
                     top_k: int = 5) -> List[Dict[str, float]]:
    """The ``top_k`` most utilised links, with their endpoints and utilisation."""
    if top_k < 1:
        raise ValueError("top_k must be at least 1")
    utilizations = link_utilizations(routing, traffic)
    order = np.argsort(utilizations)[::-1][:top_k]
    result = []
    for index in order:
        spec = routing.topology.link_by_index(int(index))
        result.append({
            "link_index": int(index),
            "source": spec.source,
            "target": spec.target,
            "utilization": float(utilizations[index]),
        })
    return result


def path_utilization_summary(routing: RoutingScheme, traffic: TrafficMatrix
                             ) -> Dict[Tuple[int, int], float]:
    """Per-pair maximum link utilisation along the pair's path.

    A quick congestion indicator: pairs whose value approaches 1 traverse a
    saturated link and will see large queueing delays or losses.
    """
    utilizations = link_utilizations(routing, traffic)
    summary = {}
    for pair in routing.pairs():
        links = routing.link_path(*pair)
        summary[pair] = float(utilizations[links].max())
    return summary
