"""What-if analysis: querying a trained RouteNet model for new scenarios.

A trained model plus its normaliser form a *network model* in the paper's
sense: a function from (topology, routing, traffic) to per-path performance.
:class:`WhatIfAnalyzer` wraps that function with the conveniences an
operator (or an optimisation loop) needs: evaluating candidate routings or
traffic matrices, ranking alternatives and summarising the predicted
performance.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.sample import Sample
from repro.datasets.tensorize import tensorize_sample
from repro.nn.module import Module
from repro.routing.scheme import RoutingScheme
from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix

__all__ = ["make_scenario_sample", "WhatIfAnalyzer", "ScenarioPrediction"]


def make_scenario_sample(topology: Topology, routing: RoutingScheme,
                         traffic: TrafficMatrix) -> Sample:
    """Wrap a scenario (no measurements yet) in a :class:`Sample`.

    The delay vector is a placeholder of zeros; it is only used to satisfy
    the sample schema and is never read during prediction.
    """
    return Sample(
        topology=topology,
        routing=routing,
        traffic=traffic,
        delays=np.zeros(routing.num_paths),
        metadata={"generator": "scenario-placeholder"},
    )


@dataclasses.dataclass
class ScenarioPrediction:
    """Per-path predictions of one what-if scenario."""

    pair_order: List[Tuple[int, int]]
    values: np.ndarray
    metric: str

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def worst_value(self) -> float:
        return float(self.values.max())

    def value(self, source: int, destination: int) -> float:
        """Prediction for one pair."""
        return float(self.values[self.pair_order.index((source, destination))])

    def worst_pairs(self, top_k: int = 5) -> List[Tuple[Tuple[int, int], float]]:
        """The ``top_k`` pairs with the highest predicted metric."""
        order = np.argsort(self.values)[::-1][:top_k]
        return [(self.pair_order[int(i)], float(self.values[int(i)])) for i in order]


class WhatIfAnalyzer:
    """Answer what-if questions with a trained RouteNet-family model."""

    def __init__(self, model: Module, normalizer: FeatureNormalizer,
                 metric: str = "delay") -> None:
        if metric not in ("delay", "jitter", "loss"):
            raise ValueError("metric must be 'delay', 'jitter' or 'loss'")
        if not normalizer.fitted:
            raise ValueError("the normalizer must be fitted (use the training normaliser)")
        self.model = model
        self.normalizer = normalizer
        self.metric = metric

    # ------------------------------------------------------------------ #
    def predict(self, topology: Topology, routing: RoutingScheme,
                traffic: TrafficMatrix) -> ScenarioPrediction:
        """Predict the metric for every path of a scenario."""
        sample = make_scenario_sample(topology, routing, traffic)
        tensorized = tensorize_sample(sample, self.normalizer, target="delay")
        normalised = self.model.predict(tensorized)
        values = self.normalizer.denormalize(self.metric, normalised)
        return ScenarioPrediction(pair_order=sample.pair_order, values=values,
                                  metric=self.metric)

    def compare_routings(self, topology: Topology, traffic: TrafficMatrix,
                         candidates: Dict[str, RoutingScheme]
                         ) -> List[Dict[str, object]]:
        """Evaluate candidate routing schemes and rank them by mean predicted metric."""
        if not candidates:
            raise ValueError("no candidate routings given")
        rows = []
        for name, routing in candidates.items():
            prediction = self.predict(topology, routing, traffic)
            rows.append({
                "name": name,
                "mean": prediction.mean,
                "worst": prediction.worst_value,
                "prediction": prediction,
            })
        rows.sort(key=lambda row: row["mean"])
        return rows

    def traffic_sweep(self, topology: Topology, routing: RoutingScheme,
                      base_traffic: TrafficMatrix,
                      scale_factors: Sequence[float]) -> List[Dict[str, float]]:
        """Predict the metric while uniformly scaling the traffic matrix.

        Useful to locate the load level at which performance degrades — the
        classic capacity-planning question.
        """
        if not scale_factors:
            raise ValueError("scale_factors must not be empty")
        rows = []
        for factor in scale_factors:
            prediction = self.predict(topology, routing, base_traffic.scale(factor))
            rows.append({"scale": float(factor), "mean": prediction.mean,
                         "worst": prediction.worst_value})
        return rows

    def best_routing(self, topology: Topology, traffic: TrafficMatrix,
                     candidates: Dict[str, RoutingScheme]) -> str:
        """Name of the candidate routing with the lowest mean predicted metric."""
        return self.compare_routings(topology, traffic, candidates)[0]["name"]
