"""Network-analysis utilities built on top of the trained models.

This subpackage packages the "knowledge-defined networking" use case that
motivates RouteNet: once a GNN delay model is trained, it can answer
*what-if* questions (what happens to delays if we change the routing, the
traffic, or the devices?) orders of magnitude faster than simulation.
"""

from repro.analysis.utilization import (
    bottleneck_links,
    link_loads,
    link_utilizations,
    path_utilization_summary,
)
from repro.analysis.whatif import WhatIfAnalyzer, make_scenario_sample

__all__ = [
    "link_loads",
    "link_utilizations",
    "bottleneck_links",
    "path_utilization_summary",
    "WhatIfAnalyzer",
    "make_scenario_sample",
]
