"""(De)serialising topologies to plain dictionaries and JSON files."""

from __future__ import annotations

import json
import os
from typing import Dict

from repro.topology.graph import Topology

__all__ = ["topology_to_dict", "topology_from_dict", "save_topology", "load_topology"]


def topology_to_dict(topology: Topology) -> Dict:
    """Convert a topology to a JSON-serialisable dictionary."""
    return {
        "name": topology.name,
        "nodes": [
            {
                "id": node,
                "queue_size": topology.node_spec(node).queue_size,
                "label": topology.node_spec(node).label,
                "scheduling": topology.node_spec(node).scheduling,
            }
            for node in topology.nodes()
        ],
        "links": [
            {
                "source": spec.source,
                "target": spec.target,
                "capacity": spec.capacity,
                "propagation_delay": spec.propagation_delay,
            }
            for spec in topology.links()
        ],
    }


def topology_from_dict(payload: Dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    topology = Topology(name=payload.get("name", "topology"))
    for node in payload["nodes"]:
        topology.add_node(node["id"], queue_size=node["queue_size"],
                          label=node.get("label"),
                          scheduling=node.get("scheduling", "fifo"))
    for link in payload["links"]:
        topology.add_link(link["source"], link["target"], capacity=link["capacity"],
                          propagation_delay=link["propagation_delay"])
    return topology


def save_topology(topology: Topology, path: str) -> str:
    """Write a topology to a JSON file and return the path."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(topology_to_dict(topology), handle, indent=2)
    return path


def load_topology(path: str) -> Topology:
    """Load a topology written by :func:`save_topology`."""
    with open(path, "r", encoding="utf-8") as handle:
        return topology_from_dict(json.load(handle))
