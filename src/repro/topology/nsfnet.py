"""The 14-node NSFNET topology used for generalisation tests in the paper.

Node indices follow the usual ordering of the 1991 NSFNET T1 backbone (see
Hei et al., 2004, which the paper cites as [3]).  Every physical cable is
modelled as a pair of directed links.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.topology.graph import DEFAULT_QUEUE_SIZE, Topology

__all__ = ["NSFNET_NODES", "NSFNET_EDGES", "nsfnet_topology"]

#: City labels of the 14 NSFNET points of presence.
NSFNET_NODES = [
    "Seattle",        # 0
    "Palo Alto",      # 1
    "San Diego",      # 2
    "Salt Lake City", # 3
    "Boulder",        # 4
    "Houston",        # 5
    "Lincoln",        # 6
    "Champaign",      # 7
    "Atlanta",        # 8
    "Ann Arbor",      # 9
    "Pittsburgh",     # 10
    "Ithaca",         # 11
    "College Park",   # 12
    "Princeton",      # 13
]

#: Undirected cables of the NSFNET T1 backbone (21 cables -> 42 directed links).
NSFNET_EDGES = [
    (0, 1), (0, 2), (0, 3),
    (1, 2), (1, 7),
    (2, 5),
    (3, 4), (3, 10),
    (4, 5), (4, 6),
    (5, 8),
    (6, 7), (6, 9),
    (7, 12),
    (8, 9), (8, 12),
    (9, 11), (9, 13),
    (10, 11), (10, 12),
    (11, 13),
]


def nsfnet_topology(
    capacity: float = 10e6,
    propagation_delay: float = 0.002,
    queue_sizes: Optional[Sequence[int]] = None,
    default_queue_size: int = DEFAULT_QUEUE_SIZE,
    rng: Optional[np.random.Generator] = None,
    small_queue_fraction: float = 0.0,
    small_queue_size: int = 1,
) -> Topology:
    """Build the NSFNET topology.

    Parameters
    ----------
    capacity:
        Capacity of every link in bits per second.
    propagation_delay:
        Propagation delay of every link in seconds.
    queue_sizes:
        Optional explicit queue size per node (length 14).  Overrides the
        random assignment below.
    default_queue_size:
        Queue size of "standard" devices.
    rng, small_queue_fraction, small_queue_size:
        When ``queue_sizes`` is not given, a fraction of nodes (chosen with
        ``rng``) is assigned ``small_queue_size`` packets — the mixed
        scenario of the paper's evaluation.
    """
    topology = Topology(name="nsfnet")
    sizes = _resolve_queue_sizes(len(NSFNET_NODES), queue_sizes, default_queue_size,
                                 rng, small_queue_fraction, small_queue_size)
    for node_id, label in enumerate(NSFNET_NODES):
        topology.add_node(node_id, queue_size=sizes[node_id], label=label)
    for source, target in NSFNET_EDGES:
        topology.add_link(source, target, capacity=capacity,
                          propagation_delay=propagation_delay, bidirectional=True)
    return topology


def _resolve_queue_sizes(num_nodes, queue_sizes, default_queue_size, rng,
                         small_queue_fraction, small_queue_size):
    if queue_sizes is not None:
        sizes = [int(q) for q in queue_sizes]
        if len(sizes) != num_nodes:
            raise ValueError(f"expected {num_nodes} queue sizes, got {len(sizes)}")
        return sizes
    sizes = [default_queue_size] * num_nodes
    if small_queue_fraction > 0:
        generator = rng if rng is not None else np.random.default_rng()
        num_small = int(round(small_queue_fraction * num_nodes))
        for node in generator.choice(num_nodes, size=num_small, replace=False):
            sizes[int(node)] = small_queue_size
    return sizes
