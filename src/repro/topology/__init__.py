"""Network-topology substrate.

A :class:`~repro.topology.graph.Topology` describes forwarding devices
(nodes, each with a queue size in packets) connected by directed links (each
with a capacity and a propagation delay).  The two topologies the paper
evaluates on — NSFNET (14 nodes) and GEANT2 (24 nodes) — are provided as
ready-made constructors, alongside synthetic generators used by the test
suite and the ablation benchmarks.
"""

from repro.topology.graph import LinkSpec, NodeSpec, Topology
from repro.topology.nsfnet import nsfnet_topology
from repro.topology.geant2 import geant2_topology
from repro.topology.generators import (
    assign_queue_sizes,
    grid_topology,
    linear_topology,
    random_topology,
    ring_topology,
    scale_free_topology,
    star_topology,
)
from repro.topology.io import topology_from_dict, topology_to_dict, load_topology, save_topology

__all__ = [
    "Topology",
    "NodeSpec",
    "LinkSpec",
    "nsfnet_topology",
    "geant2_topology",
    "linear_topology",
    "ring_topology",
    "star_topology",
    "grid_topology",
    "random_topology",
    "scale_free_topology",
    "assign_queue_sizes",
    "topology_to_dict",
    "topology_from_dict",
    "save_topology",
    "load_topology",
]
