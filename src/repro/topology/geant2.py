"""The 24-node GEANT2 topology used as the training topology in the paper.

The node set and cable list follow the GEANT2 reference topology commonly
used by the RouteNet datasets (24 PoPs, 37 cables).  Every physical cable is
modelled as a pair of directed links.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.topology.graph import DEFAULT_QUEUE_SIZE, Topology
from repro.topology.nsfnet import _resolve_queue_sizes

__all__ = ["GEANT2_NODES", "GEANT2_EDGES", "geant2_topology"]

#: Country labels of the 24 GEANT2 points of presence.
GEANT2_NODES = [
    "Austria",        # 0
    "Belgium",        # 1
    "Croatia",        # 2
    "Czechia",        # 3
    "Denmark",        # 4
    "France",         # 5
    "Germany",        # 6
    "Greece",         # 7
    "Hungary",        # 8
    "Ireland",        # 9
    "Israel",         # 10
    "Italy",          # 11
    "Luxembourg",     # 12
    "Netherlands",    # 13
    "Norway",         # 14
    "Poland",         # 15
    "Portugal",       # 16
    "Slovakia",       # 17
    "Slovenia",       # 18
    "Spain",          # 19
    "Sweden",         # 20
    "Switzerland",    # 21
    "United Kingdom", # 22
    "Estonia",        # 23
]

#: Undirected cables of the GEANT2 reference topology (37 cables -> 74 directed links).
GEANT2_EDGES = [
    (0, 3), (0, 6), (0, 8), (0, 11), (0, 18), (0, 21),
    (1, 5), (1, 6), (1, 13), (1, 12),
    (2, 8), (2, 18),
    (3, 6), (3, 15), (3, 17),
    (4, 6), (4, 14), (4, 20),
    (5, 6), (5, 19), (5, 21), (5, 22),
    (6, 10), (6, 13), (6, 15),
    (7, 11), (7, 10),
    (8, 17),
    (9, 22),
    (11, 21), (11, 19),
    (13, 22), (13, 14),
    (14, 20),
    (16, 19), (16, 22),
    (20, 23),
]


def geant2_topology(
    capacity: float = 10e6,
    propagation_delay: float = 0.003,
    queue_sizes: Optional[Sequence[int]] = None,
    default_queue_size: int = DEFAULT_QUEUE_SIZE,
    rng: Optional[np.random.Generator] = None,
    small_queue_fraction: float = 0.0,
    small_queue_size: int = 1,
) -> Topology:
    """Build the GEANT2 topology (see :func:`repro.topology.nsfnet.nsfnet_topology`
    for the meaning of the parameters)."""
    topology = Topology(name="geant2")
    sizes = _resolve_queue_sizes(len(GEANT2_NODES), queue_sizes, default_queue_size,
                                 rng, small_queue_fraction, small_queue_size)
    for node_id, label in enumerate(GEANT2_NODES):
        topology.add_node(node_id, queue_size=sizes[node_id], label=label)
    for source, target in GEANT2_EDGES:
        topology.add_link(source, target, capacity=capacity,
                          propagation_delay=propagation_delay, bidirectional=True)
    return topology
