"""Synthetic topology generators used by tests, examples and ablations."""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from repro.topology.graph import DEFAULT_QUEUE_SIZE, SMALL_QUEUE_SIZE, Topology

__all__ = [
    "linear_topology",
    "ring_topology",
    "star_topology",
    "grid_topology",
    "random_topology",
    "scale_free_topology",
    "assign_queue_sizes",
]


def _from_undirected_graph(graph: nx.Graph, name: str, capacity: float,
                           propagation_delay: float, queue_size: int) -> Topology:
    topology = Topology(name=name)
    mapping = {node: index for index, node in enumerate(sorted(graph.nodes))}
    for node in sorted(graph.nodes):
        topology.add_node(mapping[node], queue_size=queue_size)
    for u, v in sorted(graph.edges):
        topology.add_link(mapping[u], mapping[v], capacity=capacity,
                          propagation_delay=propagation_delay, bidirectional=True)
    return topology


def linear_topology(num_nodes: int, capacity: float = 10e6,
                    propagation_delay: float = 0.001,
                    queue_size: int = DEFAULT_QUEUE_SIZE) -> Topology:
    """A chain ``0 - 1 - 2 - ... - (n-1)``; the smallest useful test topology."""
    if num_nodes < 2:
        raise ValueError("a linear topology needs at least 2 nodes")
    return _from_undirected_graph(nx.path_graph(num_nodes), "linear", capacity,
                                  propagation_delay, queue_size)


def ring_topology(num_nodes: int, capacity: float = 10e6,
                  propagation_delay: float = 0.001,
                  queue_size: int = DEFAULT_QUEUE_SIZE) -> Topology:
    """A cycle topology, giving every pair two disjoint paths."""
    if num_nodes < 3:
        raise ValueError("a ring topology needs at least 3 nodes")
    return _from_undirected_graph(nx.cycle_graph(num_nodes), "ring", capacity,
                                  propagation_delay, queue_size)


def star_topology(num_leaves: int, capacity: float = 10e6,
                  propagation_delay: float = 0.001,
                  queue_size: int = DEFAULT_QUEUE_SIZE) -> Topology:
    """A hub-and-spoke topology; node 0 is the hub."""
    if num_leaves < 2:
        raise ValueError("a star topology needs at least 2 leaves")
    return _from_undirected_graph(nx.star_graph(num_leaves), "star", capacity,
                                  propagation_delay, queue_size)


def grid_topology(rows: int, cols: int, capacity: float = 10e6,
                  propagation_delay: float = 0.001,
                  queue_size: int = DEFAULT_QUEUE_SIZE) -> Topology:
    """A rows x cols mesh."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid must contain at least 2 nodes")
    graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(rows, cols))
    return _from_undirected_graph(graph, "grid", capacity, propagation_delay, queue_size)


def random_topology(num_nodes: int, average_degree: float = 3.0,
                    capacity: float = 10e6, propagation_delay: float = 0.001,
                    queue_size: int = DEFAULT_QUEUE_SIZE,
                    rng: Optional[np.random.Generator] = None,
                    max_attempts: int = 100) -> Topology:
    """A connected Erdős–Rényi-style random topology.

    The edge probability is chosen so the expected degree is
    ``average_degree``; generation retries until the graph is connected.
    """
    if num_nodes < 3:
        raise ValueError("random topologies need at least 3 nodes")
    generator = rng if rng is not None else np.random.default_rng()
    probability = min(1.0, average_degree / max(num_nodes - 1, 1))
    for _ in range(max_attempts):
        seed = int(generator.integers(0, 2 ** 31 - 1))
        graph = nx.gnp_random_graph(num_nodes, probability, seed=seed)
        if nx.is_connected(graph):
            return _from_undirected_graph(graph, "random", capacity,
                                          propagation_delay, queue_size)
    raise RuntimeError("failed to generate a connected random topology; "
                       "increase average_degree")


def scale_free_topology(num_nodes: int, attachment: int = 2,
                        capacity: float = 10e6, propagation_delay: float = 0.001,
                        queue_size: int = DEFAULT_QUEUE_SIZE,
                        rng: Optional[np.random.Generator] = None) -> Topology:
    """A Barabási–Albert scale-free topology (ISP-like degree distribution)."""
    if num_nodes <= attachment:
        raise ValueError("num_nodes must exceed the attachment parameter")
    generator = rng if rng is not None else np.random.default_rng()
    seed = int(generator.integers(0, 2 ** 31 - 1))
    graph = nx.barabasi_albert_graph(num_nodes, attachment, seed=seed)
    return _from_undirected_graph(graph, "scale_free", capacity,
                                  propagation_delay, queue_size)


def assign_queue_sizes(topology: Topology, small_queue_fraction: float,
                       rng: Optional[np.random.Generator] = None,
                       default_queue_size: int = DEFAULT_QUEUE_SIZE,
                       small_queue_size: int = SMALL_QUEUE_SIZE) -> Topology:
    """Return a copy of ``topology`` with a random mix of queue sizes.

    A fraction ``small_queue_fraction`` of the nodes gets
    ``small_queue_size``-packet buffers; the rest get ``default_queue_size``.
    This reproduces the mixed scenario of the paper's evaluation
    ("queue sizes ... either of standard size or only with support for 1
    packet").
    """
    if not 0.0 <= small_queue_fraction <= 1.0:
        raise ValueError("small_queue_fraction must be in [0, 1]")
    generator = rng if rng is not None else np.random.default_rng()
    result = topology.copy()
    nodes = result.nodes()
    num_small = int(round(small_queue_fraction * len(nodes)))
    small_nodes = set()
    if num_small:
        chosen = generator.choice(len(nodes), size=num_small, replace=False)
        small_nodes = {nodes[int(i)] for i in chosen}
    for node in nodes:
        size = small_queue_size if node in small_nodes else default_queue_size
        result.set_queue_size(node, size)
    return result
