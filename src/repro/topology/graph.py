"""The :class:`Topology` class: nodes with queue sizes, directed links with capacities.

The paper's central extension is letting the GNN see *node* features —
specifically the queue size of each forwarding device — in addition to the
link capacities the original RouteNet already modelled.  The topology
substrate therefore attaches:

* to every **node**: a queue size (in packets) for its output ports, and
* to every **directed link**: a capacity (in bits per second) and a
  propagation delay (in seconds).

Links are directed; an undirected physical cable is represented by two
directed links, matching how RouteNet's routing-derived paths traverse them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = ["NodeSpec", "LinkSpec", "Topology", "DEFAULT_QUEUE_SIZE", "SMALL_QUEUE_SIZE"]

#: Queue size (packets) of a "standard" forwarding device in the paper's scenario.
DEFAULT_QUEUE_SIZE = 32
#: Queue size (packets) of the constrained device ("support for 1 packet only").
SMALL_QUEUE_SIZE = 1


#: Scheduling disciplines a forwarding device may apply at its output ports.
SCHEDULING_POLICIES = ("fifo", "priority")


@dataclasses.dataclass
class NodeSpec:
    """Configuration of one forwarding device.

    Attributes
    ----------
    queue_size:
        Output-port buffer size in packets.  The paper's evaluation mixes
        devices with a standard size and devices that can hold one packet.
    label:
        Optional human-readable name (city / PoP name).
    scheduling:
        Output-port scheduling discipline: ``"fifo"`` (the paper's setting)
        or ``"priority"`` (strict priority across traffic classes) — the
        "different forwarding behaviors" the paper names as the next
        node feature to model.
    """

    queue_size: int = DEFAULT_QUEUE_SIZE
    label: Optional[str] = None
    scheduling: str = "fifo"

    def __post_init__(self) -> None:
        if self.queue_size < 1:
            raise ValueError("queue_size must be at least 1 packet")
        if self.scheduling not in SCHEDULING_POLICIES:
            raise ValueError(f"scheduling must be one of {SCHEDULING_POLICIES}")


@dataclasses.dataclass
class LinkSpec:
    """Configuration of one directed link.

    Attributes
    ----------
    source, target:
        Node identifiers (0-based integers).
    capacity:
        Transmission capacity in bits per second.
    propagation_delay:
        One-way propagation delay in seconds.
    """

    source: int
    target: int
    capacity: float = 10e6
    propagation_delay: float = 0.001

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError("self-loop links are not allowed")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.propagation_delay < 0:
            raise ValueError("propagation delay must be non-negative")


class Topology:
    """A directed network topology with per-node and per-link attributes.

    Nodes are integers ``0 .. num_nodes - 1``.  Directed links are indexed in
    insertion order; the index is the canonical identifier used by routing,
    dataset tensorisation and the models.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._link_order: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node_id: int, queue_size: int = DEFAULT_QUEUE_SIZE,
                 label: Optional[str] = None, scheduling: str = "fifo") -> None:
        """Add a forwarding device with the given output-queue size and scheduler."""
        spec = NodeSpec(queue_size=queue_size, label=label, scheduling=scheduling)
        self._graph.add_node(int(node_id), spec=spec)

    def add_link(self, source: int, target: int, capacity: float = 10e6,
                 propagation_delay: float = 0.001, bidirectional: bool = False) -> None:
        """Add a directed link; with ``bidirectional=True`` also add the reverse."""
        source, target = int(source), int(target)
        for node in (source, target):
            if node not in self._graph:
                raise KeyError(f"node {node} must be added before its links")
        spec = LinkSpec(source=source, target=target, capacity=capacity,
                        propagation_delay=propagation_delay)
        if self._graph.has_edge(source, target):
            raise ValueError(f"duplicate link {source}->{target}")
        self._graph.add_edge(source, target, spec=spec)
        self._link_order.append((source, target))
        if bidirectional:
            self.add_link(target, source, capacity=capacity,
                          propagation_delay=propagation_delay, bidirectional=False)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return len(self._link_order)

    def nodes(self) -> List[int]:
        """Node identifiers in sorted order."""
        return sorted(self._graph.nodes)

    def links(self) -> List[LinkSpec]:
        """Link specifications in link-index order."""
        return [self._graph.edges[edge]["spec"] for edge in self._link_order]

    def node_spec(self, node_id: int) -> NodeSpec:
        """Return the :class:`NodeSpec` of ``node_id``."""
        try:
            return self._graph.nodes[int(node_id)]["spec"]
        except KeyError as error:
            raise KeyError(f"unknown node {node_id}") from error

    def link_spec(self, source: int, target: int) -> LinkSpec:
        """Return the :class:`LinkSpec` of the directed link ``source -> target``."""
        try:
            return self._graph.edges[int(source), int(target)]["spec"]
        except KeyError as error:
            raise KeyError(f"no link {source}->{target}") from error

    def link_index(self, source: int, target: int) -> int:
        """Return the canonical index of the directed link ``source -> target``."""
        try:
            return self._link_order.index((int(source), int(target)))
        except ValueError as error:
            raise KeyError(f"no link {source}->{target}") from error

    def link_by_index(self, index: int) -> LinkSpec:
        """Return the link specification at position ``index``."""
        source, target = self._link_order[index]
        return self.link_spec(source, target)

    def has_link(self, source: int, target: int) -> bool:
        return self._graph.has_edge(int(source), int(target))

    def successors(self, node_id: int) -> List[int]:
        """Nodes reachable over one outgoing link of ``node_id``."""
        return sorted(self._graph.successors(int(node_id)))

    def predecessors(self, node_id: int) -> List[int]:
        """Nodes with a link into ``node_id``."""
        return sorted(self._graph.predecessors(int(node_id)))

    def degree(self, node_id: int) -> int:
        """Out-degree of ``node_id``."""
        return self._graph.out_degree(int(node_id))

    def queue_sizes(self) -> Dict[int, int]:
        """Mapping node id -> queue size in packets."""
        return {node: self.node_spec(node).queue_size for node in self.nodes()}

    def capacities(self) -> List[float]:
        """Link capacities in link-index order."""
        return [spec.capacity for spec in self.links()]

    def set_queue_size(self, node_id: int, queue_size: int) -> None:
        """Change the queue size of an existing node."""
        spec = self.node_spec(node_id)
        self._graph.nodes[int(node_id)]["spec"] = NodeSpec(
            queue_size=queue_size, label=spec.label, scheduling=spec.scheduling)

    def set_scheduling(self, node_id: int, scheduling: str) -> None:
        """Change the scheduling discipline of an existing node."""
        spec = self.node_spec(node_id)
        self._graph.nodes[int(node_id)]["spec"] = NodeSpec(
            queue_size=spec.queue_size, label=spec.label, scheduling=scheduling)

    def scheduling_policies(self) -> Dict[int, str]:
        """Mapping node id -> scheduling discipline."""
        return {node: self.node_spec(node).scheduling for node in self.nodes()}

    # ------------------------------------------------------------------ #
    # Graph algorithms
    # ------------------------------------------------------------------ #
    def is_strongly_connected(self) -> bool:
        """True when every node can reach every other node."""
        if self.num_nodes == 0:
            return False
        return nx.is_strongly_connected(self._graph)

    def shortest_path(self, source: int, target: int,
                      weight: Optional[str] = None) -> List[int]:
        """Shortest path as a list of node ids.

        ``weight`` may be ``None`` (hop count), ``"delay"`` (propagation
        delay) or ``"inverse_capacity"`` (prefer high-capacity links).
        """
        if weight is None:
            return nx.shortest_path(self._graph, int(source), int(target))
        return nx.shortest_path(self._graph, int(source), int(target),
                                weight=self._edge_weight_fn(weight))

    def all_shortest_paths(self, source: int, target: int,
                           weight: Optional[str] = None) -> List[List[int]]:
        """Every shortest path between ``source`` and ``target``."""
        if weight is None:
            return list(nx.all_shortest_paths(self._graph, int(source), int(target)))
        return list(nx.all_shortest_paths(self._graph, int(source), int(target),
                                          weight=self._edge_weight_fn(weight)))

    def _edge_weight_fn(self, weight: str):
        if weight == "delay":
            return lambda u, v, data: data["spec"].propagation_delay
        if weight == "inverse_capacity":
            return lambda u, v, data: 1.0 / data["spec"].capacity
        raise ValueError(f"unknown weight '{weight}'")

    def path_links(self, path: Sequence[int]) -> List[int]:
        """Convert a node path to the list of link indices it traverses."""
        if len(path) < 2:
            raise ValueError("a path needs at least two nodes")
        return [self.link_index(u, v) for u, v in zip(path[:-1], path[1:])]

    def to_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying directed graph."""
        return self._graph.copy()

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def copy(self) -> "Topology":
        """Deep copy of the topology."""
        clone = Topology(name=self.name)
        for node in self.nodes():
            spec = self.node_spec(node)
            clone.add_node(node, queue_size=spec.queue_size, label=spec.label,
                           scheduling=spec.scheduling)
        for spec in self.links():
            clone.add_link(spec.source, spec.target, capacity=spec.capacity,
                           propagation_delay=spec.propagation_delay)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self.nodes() == other.nodes()
            and [dataclasses.astuple(s) for s in self.links()]
            == [dataclasses.astuple(s) for s in other.links()]
            and self.queue_sizes() == other.queue_sizes()
        )

    def __repr__(self) -> str:
        return f"Topology(name='{self.name}', nodes={self.num_nodes}, links={self.num_links})"

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """All ordered (source, destination) pairs with distinct endpoints."""
        nodes = self.nodes()
        for source in nodes:
            for target in nodes:
                if source != target:
                    yield source, target
