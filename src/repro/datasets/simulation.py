"""Packet-level ground-truth generator (accurate, slower than the analytic one)."""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.datasets.sample import Sample
from repro.routing.scheme import RoutingScheme
from repro.simulator.network import SimulationConfig, simulate_network
from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix

__all__ = ["SimulationGroundTruth"]


class SimulationGroundTruth:
    """Generate :class:`Sample` objects by running the discrete-event simulator.

    This is the faithful substitute for the paper's OMNeT++ pipeline: every
    sample is produced by actually pushing packets through finite queues.
    Use it for evaluation-grade data and for validating the analytic
    generator; use :class:`~repro.datasets.analytic.AnalyticGroundTruth` when
    volume matters more than per-sample fidelity.
    """

    def __init__(self, duration: float = 5.0, warmup: float = 0.5,
                 mean_packet_size_bits: float = 8000.0, source_model: str = "poisson") -> None:
        self.duration = duration
        self.warmup = warmup
        self.mean_packet_size_bits = mean_packet_size_bits
        self.source_model = source_model

    def generate(self, topology: Topology, routing: RoutingScheme, traffic: TrafficMatrix,
                 rng: Optional[np.random.Generator] = None) -> Sample:
        """Produce one sample by simulation.

        Pairs that deliver no packet during the measurement window fall back
        to their no-load delay (serialisation + propagation along the path)
        so that the target vector stays finite.
        """
        generator = rng if rng is not None else np.random.default_rng()
        seed = int(generator.integers(0, 2 ** 31 - 1))
        config = SimulationConfig(
            duration=self.duration,
            warmup=self.warmup,
            mean_packet_size_bits=self.mean_packet_size_bits,
            source_model=self.source_model,
            seed=seed,
        )
        started = time.perf_counter()
        result = simulate_network(topology, routing, traffic, config)
        sim_wall_seconds = time.perf_counter() - started

        pair_order = routing.pairs()
        delays = result.delays_vector(pair_order)
        losses = result.loss_vector(pair_order)
        jitters = np.zeros(len(pair_order))
        for row, pair in enumerate(pair_order):
            stats = result.flow_stats.get(pair)
            if stats is not None and np.isfinite(stats.jitter):
                jitters[row] = stats.jitter

        # Fill unmeasured pairs (no traffic, or everything lost) with the
        # no-load path latency so targets remain well defined.
        for row, pair in enumerate(pair_order):
            if not np.isfinite(delays[row]):
                delays[row] = self._no_load_delay(topology, routing, pair)
            if not np.isfinite(losses[row]):
                losses[row] = 0.0

        return Sample(
            topology=topology,
            routing=routing,
            traffic=traffic,
            delays=delays,
            jitters=jitters,
            losses=losses,
            metadata={
                "generator": "packet-simulator",
                "duration": self.duration,
                "warmup": self.warmup,
                "seed": seed,
                "source_model": self.source_model,
                "total_packets": result.total_packets_generated,
                # Generation cost: what this sample took to simulate.  The
                # wall time is the one metadata field that varies between
                # otherwise identical runs of the same seed.
                "events_processed": result.events_processed,
                "sim_wall_seconds": sim_wall_seconds,
            },
        )

    def _no_load_delay(self, topology: Topology, routing: RoutingScheme, pair) -> float:
        total = 0.0
        for link_index in routing.link_path(*pair):
            spec = topology.link_by_index(link_index)
            total += self.mean_packet_size_bits / spec.capacity + spec.propagation_delay
        return total
