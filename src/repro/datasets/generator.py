"""Scenario sweeps: generate whole datasets of samples for a topology.

Mirrors the structure of the paper's datasets: for a chosen topology the
generator draws, per sample, a random assignment of queue sizes (standard
vs 1-packet devices), a routing scheme (shortest path or a randomised
k-shortest-path variation) and a traffic matrix scaled to a target peak
utilisation, then asks a ground-truth backend (analytic or packet-level
simulation) for the per-path delays.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.datasets.analytic import AnalyticGroundTruth
from repro.datasets.sample import Sample
from repro.datasets.simulation import SimulationGroundTruth
from repro.routing.shortest_path import random_variation_routing, shortest_path_routing
from repro.topology.generators import assign_queue_sizes
from repro.topology.graph import DEFAULT_QUEUE_SIZE, SMALL_QUEUE_SIZE, Topology
from repro.traffic.generators import gravity_traffic, scaled_to_utilization, uniform_traffic

__all__ = ["DatasetConfig", "DatasetGenerator", "generate_dataset"]


@dataclasses.dataclass
class DatasetConfig:
    """Knobs of the scenario sweep.

    Attributes
    ----------
    num_samples:
        Number of samples to generate.
    small_queue_fraction:
        Fraction of nodes given 1-packet buffers in each sample (the paper's
        mixed-queue-size scenario).  Set to 0 to reproduce the original
        RouteNet setting where all devices are identical.
    utilization_range:
        Per-sample peak link utilisation is drawn uniformly from this range.
    traffic_model:
        ``"uniform"`` or ``"gravity"``.
    routing_variation:
        When > 1, each sample draws one of the k shortest paths per pair at
        random (k = ``routing_variation``); 1 means plain shortest path.
    backend:
        ``"analytic"`` (fast, default) or ``"simulation"`` (packet-level).
    seed:
        Seed of the sweep; every sample derives its own generator from it.
    default_queue_size / small_queue_size:
        Queue sizes (packets) of standard and constrained devices.
    simulation_duration:
        Measurement window when ``backend="simulation"``.
    """

    num_samples: int = 100
    small_queue_fraction: float = 0.5
    utilization_range: Sequence[float] = (0.3, 0.85)
    traffic_model: str = "uniform"
    routing_variation: int = 1
    backend: str = "analytic"
    seed: int = 0
    default_queue_size: int = DEFAULT_QUEUE_SIZE
    small_queue_size: int = SMALL_QUEUE_SIZE
    simulation_duration: float = 2.0
    noise_std: float = 0.03
    mean_packet_size_bits: float = 8000.0

    def __post_init__(self) -> None:
        if self.num_samples < 1:
            raise ValueError("num_samples must be positive")
        if not 0.0 <= self.small_queue_fraction <= 1.0:
            raise ValueError("small_queue_fraction must be in [0, 1]")
        low, high = self.utilization_range
        if not 0.0 < low <= high:
            raise ValueError("utilization_range must satisfy 0 < low <= high")
        if self.traffic_model not in ("uniform", "gravity"):
            raise ValueError(f"unknown traffic model '{self.traffic_model}'")
        if self.routing_variation < 1:
            raise ValueError("routing_variation must be at least 1")
        if self.backend not in ("analytic", "simulation"):
            raise ValueError(f"unknown backend '{self.backend}'")
        if self.noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {self.noise_std}")
        if self.simulation_duration <= 0:
            raise ValueError(
                f"simulation_duration must be positive, got {self.simulation_duration}")
        if self.mean_packet_size_bits <= 0:
            raise ValueError(
                f"mean_packet_size_bits must be positive, got {self.mean_packet_size_bits}")
        if self.default_queue_size < 1:
            raise ValueError(
                f"default_queue_size must be at least 1 packet, got {self.default_queue_size}")
        if self.small_queue_size < 1:
            raise ValueError(
                f"small_queue_size must be at least 1 packet, got {self.small_queue_size}")


class DatasetGenerator:
    """Generates datasets of :class:`Sample` objects for one base topology."""

    def __init__(self, base_topology: Topology, config: Optional[DatasetConfig] = None) -> None:
        self.base_topology = base_topology
        self.config = config if config is not None else DatasetConfig()
        if self.config.backend == "analytic":
            self._ground_truth = AnalyticGroundTruth(
                mean_packet_size_bits=self.config.mean_packet_size_bits,
                noise_std=self.config.noise_std)
        else:
            self._ground_truth = SimulationGroundTruth(
                duration=self.config.simulation_duration,
                mean_packet_size_bits=self.config.mean_packet_size_bits)

    # ------------------------------------------------------------------ #
    def generate(self, progress: Optional[Callable[[int, int], None]] = None) -> List[Sample]:
        """Generate ``config.num_samples`` samples."""
        return list(self.iter_samples(progress=progress))

    def iter_samples(self, progress: Optional[Callable[[int, int], None]] = None
                     ) -> Iterator[Sample]:
        """Yield ``config.num_samples`` samples one at a time.

        The lazy core of :meth:`generate`: nothing is retained between
        samples, so arbitrarily large sweeps can be streamed straight to a
        :class:`~repro.datasets.sharded.ShardedDatasetWriter` (see
        :meth:`generate_to`) without the list ever existing.
        """
        rng = np.random.default_rng(self.config.seed)
        for index in range(self.config.num_samples):
            yield self.generate_one(rng)
            if progress is not None:
                progress(index + 1, self.config.num_samples)

    def generate_to(self, writer,
                    progress: Optional[Callable[[int, int], None]] = None) -> int:
        """Stream the sweep into a sharded dataset writer; return the count.

        ``writer`` is anything with a ``write(sample)`` method (typically a
        :class:`~repro.datasets.sharded.ShardedDatasetWriter`).  Identical
        sample stream to :meth:`generate` — same seed, same order — but with
        O(1) samples live.
        """
        count = 0
        for sample in self.iter_samples(progress=progress):
            writer.write(sample)
            count += 1
        return count

    def generate_one(self, rng: np.random.Generator) -> Sample:
        """Generate a single sample using the provided random generator."""
        config = self.config
        topology = assign_queue_sizes(
            self.base_topology,
            config.small_queue_fraction,
            rng=rng,
            default_queue_size=config.default_queue_size,
            small_queue_size=config.small_queue_size,
        )
        if config.routing_variation > 1:
            routing = random_variation_routing(topology, k=config.routing_variation, rng=rng)
        else:
            routing = shortest_path_routing(topology)

        if config.traffic_model == "gravity":
            traffic = gravity_traffic(topology.num_nodes, total_traffic=1.0, rng=rng)
        else:
            traffic = uniform_traffic(topology.num_nodes, 0.5, 1.5, rng=rng)
        target_utilization = float(rng.uniform(*config.utilization_range))
        traffic = scaled_to_utilization(traffic, routing, target_utilization)

        sample = self._ground_truth.generate(topology, routing, traffic, rng=rng)
        sample.metadata.update({
            "target_utilization": target_utilization,
            "small_queue_fraction": config.small_queue_fraction,
            "topology_name": topology.name,
        })
        return sample


def generate_dataset(base_topology: Topology, config: Optional[DatasetConfig] = None,
                     progress: Optional[Callable[[int, int], None]] = None,
                     writer=None):
    """Convenience wrapper around :class:`DatasetGenerator`.

    Returns the list of generated samples — unless ``writer`` is given, in
    which case the samples are streamed straight into it (never held as a
    list) and the number written is returned instead.
    """
    generator = DatasetGenerator(base_topology, config)
    if writer is not None:
        return generator.generate_to(writer, progress=progress)
    return generator.generate(progress=progress)
