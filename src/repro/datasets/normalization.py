"""Feature and target normalisation fitted on a training set."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.datasets.sample import Sample

__all__ = ["FeatureNormalizer"]


class FeatureNormalizer:
    """Z-score normalisation constants for the RouteNet input features.

    The normaliser is fitted once on the training samples and then applied
    to every sample (training and evaluation) so the model always sees
    features on comparable scales:

    * link capacities (bits/s),
    * node queue sizes (packets),
    * per-path traffic demands (bits/s),
    * per-path delays, jitters and loss ratios (the regression targets).

    Jitter and loss statistics are only collected from samples that carry
    them; datasets without those measurements fall back to identity scaling
    for the missing fields.
    """

    _FIELDS = ("capacity", "queue_size", "traffic", "delay", "jitter", "loss")

    #: Upper bound on memoised tensorisations; large enough for every
    #: dataset in the repo, small enough that a long-lived normaliser fed a
    #: stream of fresh samples cannot grow without limit (oldest evicted).
    _TENSORIZE_CACHE_LIMIT = 4096

    def __init__(self) -> None:
        self.means: Dict[str, float] = {}
        self.stds: Dict[str, float] = {}
        self.fitted = False
        # Memoised tensorisations keyed by (id(sample), target, dtype); the
        # sample object is kept in the value so its id cannot be recycled.
        self._tensorize_cache: Dict = {}

    # ------------------------------------------------------------------ #
    def fit(self, samples: Iterable[Sample]) -> "FeatureNormalizer":
        """Estimate means and standard deviations from ``samples``."""
        # Re-fitting changes the normalisation constants, so any memoised
        # tensorisations scaled with the old statistics are stale.
        self.clear_tensorize_cache()
        collected: Dict[str, List[float]] = {name: [] for name in self._FIELDS}
        count = 0
        for sample in samples:
            count += 1
            collected["capacity"].extend(spec.capacity for spec in sample.topology.links())
            collected["queue_size"].extend(sample.topology.queue_sizes().values())
            collected["traffic"].extend(sample.traffic.as_vector(sample.pair_order))
            collected["delay"].extend(sample.delays)
            if sample.jitters is not None:
                collected["jitter"].extend(sample.jitters)
            if sample.losses is not None:
                collected["loss"].extend(sample.losses)
        if count == 0:
            raise ValueError("cannot fit a normalizer on an empty dataset")
        for name in self._FIELDS:
            values = collected[name]
            if not values:
                # Field absent from the dataset: identity scaling.
                self.means[name] = 0.0
                self.stds[name] = 1.0
                continue
            array = np.asarray(values, dtype=np.float64)
            self.means[name] = float(array.mean())
            std = float(array.std())
            self.stds[name] = std if std > 1e-12 else 1.0
        self.fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("normalizer must be fitted before use")

    # ------------------------------------------------------------------ #
    def normalize(self, field: str, values: np.ndarray) -> np.ndarray:
        """Z-score values of one field."""
        self._require_fitted()
        if field not in self.means:
            raise KeyError(f"unknown field '{field}'")
        return (np.asarray(values, dtype=np.float64) - self.means[field]) / self.stds[field]

    def denormalize(self, field: str, values: np.ndarray) -> np.ndarray:
        """Invert :meth:`normalize`."""
        self._require_fitted()
        if field not in self.means:
            raise KeyError(f"unknown field '{field}'")
        return np.asarray(values, dtype=np.float64) * self.stds[field] + self.means[field]

    # ------------------------------------------------------------------ #
    def tensorize(self, sample: Sample, target: str = "delay", dtype=None):
        """Tensorise ``sample`` with this normaliser, memoising the result.

        Tensorisation depends only on the sample, the (immutable once
        fitted) normalisation constants, the target metric and the dtype —
        so the trainer's :meth:`~repro.models.trainer.RouteNetTrainer.prepare`
        and :func:`~repro.models.trainer.evaluate_model` share one
        tensorisation per (sample, target, dtype) instead of rebuilding the
        padded arrays on every call (the fig. 2 pipeline previously
        tensorised every evaluation sample twice).
        """
        from repro.datasets.tensorize import tensorize_sample
        from repro.nn.tensor import resolve_dtype

        self._require_fitted()
        resolved = resolve_dtype(dtype)
        key = (id(sample), target, resolved.str)
        hit = self._tensorize_cache.get(key)
        if hit is not None and hit[0] is sample:
            return hit[1]
        tensorized = tensorize_sample(sample, self, target=target, dtype=resolved)
        while len(self._tensorize_cache) >= self._TENSORIZE_CACHE_LIMIT:
            self._tensorize_cache.pop(next(iter(self._tensorize_cache)))
        self._tensorize_cache[key] = (sample, tensorized)
        return tensorized

    def clear_tensorize_cache(self) -> None:
        """Drop all memoised tensorisations (frees their arrays)."""
        self._tensorize_cache.clear()

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """JSON-serialisable representation."""
        self._require_fitted()
        return {"means": dict(self.means), "stds": dict(self.stds)}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FeatureNormalizer":
        """Rebuild from :meth:`to_dict` output."""
        normalizer = cls()
        normalizer.means = {k: float(v) for k, v in payload["means"].items()}
        normalizer.stds = {k: float(v) for k, v in payload["stds"].items()}
        normalizer.fitted = True
        return normalizer
