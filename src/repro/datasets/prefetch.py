"""Streaming epoch pipeline: tensorise, bucket and merge batches ahead of
the trainer with bounded memory.

The in-memory training path tensorises the whole dataset and pre-merges all
batches before the first epoch.  :class:`BatchPrefetcher` replaces that with
a producer thread that consumes an iterable of :class:`Sample` objects (a
:class:`~repro.datasets.sharded.ShardedDatasetReader` pass, one per epoch),
tensorises them, groups them into merged batches and hands the batches to
the trainer through a bounded queue — so at any moment only

* one bucketing *window* of tensorised samples (``window_batches`` batches'
  worth, released member by member as they are merged), and
* at most ``prefetch_depth`` merged batches (the queue bound) plus the one
  being merged and the one being trained on

are live, independent of the dataset size.

Bucketing degrades gracefully to **per-window bucketing**: within each
window the samples are stably sorted by ``max_path_length`` (exactly like
:func:`repro.datasets.batching.make_batches`), merged in that order, and the
window's batch *visit order* is permuted with the trainer's RNG when
shuffling.  When a single window covers the whole dataset
(``window_batches >= ceil(n / batch_size)``) this is *identical* — same
batch membership, same RNG draws, same visit order — to the in-memory
trainer's pre-merged static batches, which is what the bit-exact
streamed-vs-in-memory equivalence tests pin down.  Smaller windows bound
memory at the cost of bucketing (and shuffling) only within each window.

Integrity: the source iterable is typically a
:class:`~repro.datasets.sharded.ShardedDatasetReader`, which (by default)
verifies each shard's SHA-256 against the store manifest the first time the
shard is opened.  A corrupted shard therefore surfaces as a ``ValueError``
raised out of the producer thread and re-raised in the trainer on the next
batch request — streamed training never silently consumes damaged bytes.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Iterator, List, Optional

import numpy as np

from repro.datasets.batching import bucket_order, merge_tensorized_samples
from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.sample import Sample
from repro.datasets.tensorize import TensorizedSample, tensorize_sample

__all__ = ["BatchPrefetcher", "iter_window_batches"]


def iter_window_batches(samples: Iterable[Sample],
                        normalizer: FeatureNormalizer,
                        batch_size: int,
                        target: str = "delay",
                        dtype=None,
                        bucket_by_length: bool = True,
                        window_batches: int = 64,
                        rng: Optional[np.random.Generator] = None,
                        ) -> Iterator[TensorizedSample]:
    """Yield merged batches from a sample stream, one window at a time.

    This is the synchronous core of :class:`BatchPrefetcher` (exposed
    separately so it can be tested and reasoned about without threads).
    Window members are released as soon as their batch is merged, so the
    peak is one window of tensorised samples plus one merged batch.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    if window_batches < 1:
        raise ValueError("window_batches must be at least 1")
    window_size = window_batches * batch_size

    def flush(window: List[TensorizedSample]) -> Iterator[TensorizedSample]:
        # Mirror the in-memory trainer's two regimes exactly (same RNG
        # draws, same membership) so a single-window stream is bit-identical:
        # bucketed -> membership fixed by the stable length sort, the *visit*
        # order permuted (what _epoch_plan does with static batches);
        # unbucketed -> *membership* shuffled by permuting the sample order,
        # batches visited as built (what make_batches(rng=...) does).
        if bucket_by_length:
            order = bucket_order([item.max_path_length for item in window])
        elif rng is not None:
            order = rng.permutation(len(window))
        else:
            order = np.arange(len(window))
        memberships = [order[start:start + batch_size]
                       for start in range(0, len(order), batch_size)]
        if bucket_by_length and rng is not None:
            visit = rng.permutation(len(memberships))
        else:
            visit = np.arange(len(memberships))
        for batch_index in visit:
            members = [window[i] for i in memberships[batch_index]]
            merged = merge_tensorized_samples(members)
            # Release the members: once merged (the merge always copies),
            # the window slots are the only references keeping them alive.
            for i in memberships[batch_index]:
                window[i] = None
            yield merged

    window: List[TensorizedSample] = []
    for sample in samples:
        window.append(tensorize_sample(sample, normalizer, target=target,
                                       dtype=dtype))
        if len(window) >= window_size:
            yield from flush(window)
            window = []
    if window:
        yield from flush(window)


class BatchPrefetcher:
    """Background thread producing merged batches ``prefetch_depth`` ahead.

    Iterate over the prefetcher to consume one epoch's batches; the producer
    thread stays at most ``prefetch_depth`` merged batches ahead of the
    consumer (the queue bound provides backpressure).  Exceptions raised
    while reading/tensorising propagate to the consumer **promptly**: the
    next ``__next__`` after the producer dies re-raises the producer's error
    (after joining the thread), even when intact batches are still queued
    ahead of it — a failed epoch surfaces at the next step, not after the
    queue drains.  :meth:`close` stops the producer early (idempotent; also
    called automatically when the stream is exhausted), and **must** be
    called before the owner reuses the RNG, since the producer draws from
    it.  Use the prefetcher as a context manager so that a consumer raising
    mid-epoch still stops, drains and joins the producer thread on the way
    out (``__exit__`` calls :meth:`close`).

    ``peak_live_batches`` records the highest number of merged batches that
    were simultaneously materialised (queued or in flight, plus the one the
    consumer holds) — the number the trainer logs per epoch so a streaming
    regression back to O(dataset) behaviour is visible without profiling.
    ``peak_live_bytes`` is the same high-water mark in array bytes
    (:attr:`TensorizedSample.nbytes` of the live batches).
    """

    _DONE = object()

    def __init__(self, samples: Iterable[Sample],
                 normalizer: FeatureNormalizer,
                 batch_size: int,
                 target: str = "delay",
                 dtype=None,
                 bucket_by_length: bool = True,
                 window_batches: int = 64,
                 rng: Optional[np.random.Generator] = None,
                 prefetch_depth: int = 2) -> None:
        if prefetch_depth < 1:
            raise ValueError("prefetch_depth must be at least 1")
        self.prefetch_depth = prefetch_depth
        self._queue: "queue.Queue" = queue.Queue(maxsize=prefetch_depth)
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self._live = 0
        self._live_bytes = 0
        self._live_lock = threading.Lock()
        self.peak_live_batches = 0
        self.peak_live_bytes = 0
        self.batches_yielded = 0
        self._source = iter_window_batches(
            self._stop_aware(samples), normalizer, batch_size, target=target,
            dtype=dtype, bucket_by_length=bucket_by_length,
            window_batches=window_batches, rng=rng)
        self._thread = threading.Thread(target=self._produce,
                                        name="batch-prefetcher", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------ #
    def _stop_aware(self, samples: Iterable[Sample]) -> Iterator[Sample]:
        """Wrap the sample source so a close() is noticed between samples,
        not only between queue puts — one sample's work bounds how long the
        producer can keep running (and drawing from the RNG) after close."""
        for sample in samples:
            if self._stop.is_set():
                return
            yield sample

    def _track(self, delta: int, nbytes: int) -> None:
        with self._live_lock:
            self._live += delta
            self._live_bytes += delta * nbytes
            # +1 batch (and its bytes) accounts for the one the consumer is
            # training on (it releases the previous when fetching the next).
            self.peak_live_batches = max(self.peak_live_batches, self._live + 1)
            self.peak_live_bytes = max(self.peak_live_bytes,
                                       self._live_bytes + nbytes)

    def _put(self, item) -> bool:
        """Blocking put that gives up when :meth:`close` was called."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.1)
                return True
            except queue.Full:
                continue
        return False

    def _produce(self) -> None:
        try:
            for batch in self._source:
                if self._stop.is_set():
                    return
                self._track(+1, batch.nbytes)
                if not self._put(batch):
                    self._track(-1, batch.nbytes)
                    return
        except BaseException as error:  # noqa: BLE001 - forwarded to consumer
            self._error = error
            self._put(self._DONE)
            return
        self._put(self._DONE)

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[TensorizedSample]:
        return self

    def __next__(self) -> TensorizedSample:
        if self._stop.is_set():
            raise StopIteration
        if self._error is not None:
            # The producer died while batches it queued earlier were still
            # pending: surface the failure now instead of handing out the
            # rest of a partial epoch first.
            self._finish_with_error()
        item = self._queue.get()
        if item is self._DONE:
            self._stop.set()
            self._thread.join()
            if self._error is not None:
                raise self._error
            raise StopIteration
        self._track(-1, item.nbytes)
        self.batches_yielded += 1
        return item

    def _finish_with_error(self) -> None:
        """Stop, drain and join the producer, then re-raise its error."""
        error = self._error
        self.close()
        raise error

    def close(self) -> None:
        """Stop the producer and release queued batches (idempotent).

        Blocks until the producer thread has actually exited (bounded by at
        most one sample's tensorisation plus one window flush), so after
        ``close()`` returns nothing can touch the shared RNG concurrently
        with the caller.  Note the RNG *position* after an early-terminated
        epoch still depends on how far ahead the producer got — callers
        that need cross-run reproducibility after an abandoned epoch should
        restore the RNG state (e.g. via a trainer checkpoint) rather than
        continue from it.
        """
        self._stop.set()
        while True:
            # Drain so a producer blocked on a full queue can observe the
            # stop; loop because it may complete one more put per drain.
            while True:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    break
            self._thread.join(timeout=0.1)
            if not self._thread.is_alive():
                break

    def __enter__(self) -> "BatchPrefetcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
