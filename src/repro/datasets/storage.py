"""Persisting datasets (samples plus their normaliser) to disk.

Two formats share this entry point:

* **format 1** — one gzipped JSON file (``.json.gz``) holding every sample;
  the historical format, still read and written.
* **formats 2 and 3** — a sharded store directory (see
  :mod:`repro.datasets.sharded`): gzipped-JSONL (2) or binary npz (3)
  shards plus a manifest, written and read incrementally.
  ``save_dataset(..., shards=N)`` writes one (``shard_payload="binary"``
  selects format 3); :func:`load_dataset` transparently reads any format.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import Iterable, List, Optional, Tuple

from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.sample import Sample
from repro.datasets.sharded import (
    ShardedDatasetReader,
    ShardedDatasetWriter,
    is_sharded_store,
    shard_size_for,
)

__all__ = ["save_dataset", "load_dataset"]


def save_dataset(samples: Iterable[Sample], path: str,
                 normalizer: Optional[FeatureNormalizer] = None,
                 metadata: Optional[dict] = None,
                 shards: Optional[int] = None,
                 shard_payload: str = "binary") -> str:
    """Write samples (and optionally their normaliser) to disk.

    With ``shards=None`` (default) this writes the format-1 single
    ``.json.gz`` file (suffix appended when missing).  Sample dicts are
    streamed to the gzip handle one at a time — the full serialised payload
    never exists in memory — and the file is written to a temporary name
    and :func:`os.replace`-d into place, so a crashed save never leaves a
    truncated dataset where a good one used to be (the same atomic-write
    contract as the trainer's ``save_checkpoint``).

    With ``shards=N`` the samples are spread over a sharded store directory
    at ``path`` (no suffix; see :class:`~repro.datasets.sharded.
    ShardedDatasetWriter`), which :func:`load_dataset` and the streaming
    training path both read; ``shard_payload`` picks the shard encoding
    (``"binary"`` — the default — is the zero-parse format-3 npz payload,
    ``"jsonl"`` the human-greppable format 2).

    Returns the path written.
    """
    if shards is not None:
        # Spreading over exactly N shards needs the sample count up front;
        # sized inputs (lists, readers) are used as-is, only unsized
        # iterators are buffered.  For a truly unbounded stream drive a
        # ShardedDatasetWriter with a fixed shard_size directly instead.
        try:
            count = len(samples)
        except TypeError:
            samples = list(samples)
            count = len(samples)
        with ShardedDatasetWriter(path,
                                  shard_size=shard_size_for(count, shards),
                                  normalizer=normalizer,
                                  metadata=metadata,
                                  payload=shard_payload) as writer:
            for sample in samples:
                writer.write(sample)
        return writer.path

    if not path.endswith(".json.gz"):
        path = path + ".json.gz"
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    temporary = path + ".tmp"
    try:
        with gzip.open(temporary, "wt", encoding="utf-8") as handle:
            handle.write('{"format_version": 1, "metadata": ')
            json.dump(metadata or {}, handle)
            handle.write(', "normalizer": ')
            json.dump(normalizer.to_dict() if normalizer is not None else None,
                      handle)
            handle.write(', "samples": [')
            for index, sample in enumerate(samples):
                if index:
                    handle.write(", ")
                json.dump(sample.to_dict(), handle)
            handle.write("]}")
    except BaseException:
        # Never leave a half-written temp file behind a failed save.
        try:
            os.remove(temporary)
        except OSError:
            pass
        raise
    os.replace(temporary, path)
    return path


def _resolve_dataset_path(path: str) -> str:
    """The existing dataset path: the exact path first, then ``.json.gz``.

    Checking the given path *first* means a file deliberately named without
    the suffix loads fine, and a missing dataset produces an error naming
    every candidate that was tried rather than a confusing message about a
    suffixed path the user never typed.  Only a loadable exact path — a
    file, or a directory that really is a sharded store — takes precedence:
    a manifest-less directory (e.g. the residue of an aborted sharded
    write) must not shadow a good ``<path>.json.gz`` next to it.
    """
    if os.path.isfile(path) or is_sharded_store(path):
        return path
    if not path.endswith(".json.gz"):
        suffixed = path + ".json.gz"
        if os.path.isfile(suffixed):
            return suffixed
        if os.path.isdir(path):
            raise FileNotFoundError(
                f"'{path}' is a directory but holds no sharded-store manifest "
                f"(and no '{suffixed}' exists)")
        raise FileNotFoundError(
            f"no dataset at '{path}' (also tried '{suffixed}')")
    raise FileNotFoundError(f"no dataset file at '{path}'")


def load_dataset(path: str) -> Tuple[List[Sample], Optional[FeatureNormalizer], dict]:
    """Load a dataset written by :func:`save_dataset` (either format).

    Returns ``(samples, normalizer_or_None, metadata)``.  Sharded stores
    are materialised in full here — for out-of-core training iterate a
    :class:`~repro.datasets.sharded.ShardedDatasetReader` (or pass
    ``dataset_path=`` to ``RouteNetTrainer.fit``) instead.
    """
    path = _resolve_dataset_path(path)
    if os.path.isdir(path):
        reader = ShardedDatasetReader(path)
        return reader.read_all(), reader.normalizer, dict(reader.metadata)
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("format_version", 1)
    if version != 1:
        raise ValueError(
            f"unsupported dataset format_version {version!r} in '{path}': "
            f"this build reads format 1 (single .json.gz blob), format 2 "
            f"(sharded store, gzipped-JSONL shards) and format 3 (sharded "
            f"store, binary npz shards)")
    samples = [Sample.from_dict(entry) for entry in payload["samples"]]
    normalizer = (FeatureNormalizer.from_dict(payload["normalizer"])
                  if payload.get("normalizer") else None)
    return samples, normalizer, payload.get("metadata", {})
