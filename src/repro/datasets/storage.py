"""Persisting datasets (lists of samples plus their normaliser) to disk."""

from __future__ import annotations

import gzip
import json
import os
from typing import List, Optional, Sequence, Tuple

from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.sample import Sample

__all__ = ["save_dataset", "load_dataset"]


def save_dataset(samples: Sequence[Sample], path: str,
                 normalizer: Optional[FeatureNormalizer] = None,
                 metadata: Optional[dict] = None) -> str:
    """Write samples (and optionally their normaliser) to a gzipped JSON file.

    Returns the path written; ``.json.gz`` is appended when missing.
    """
    if not path.endswith(".json.gz"):
        path = path + ".json.gz"
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload = {
        "format_version": 1,
        "metadata": metadata or {},
        "normalizer": normalizer.to_dict() if normalizer is not None else None,
        "samples": [sample.to_dict() for sample in samples],
    }
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


def load_dataset(path: str) -> Tuple[List[Sample], Optional[FeatureNormalizer], dict]:
    """Load a dataset written by :func:`save_dataset`.

    Returns ``(samples, normalizer_or_None, metadata)``.
    """
    if not path.endswith(".json.gz"):
        path = path + ".json.gz"
    if not os.path.exists(path):
        raise FileNotFoundError(f"no dataset file at '{path}'")
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        payload = json.load(handle)
    samples = [Sample.from_dict(entry) for entry in payload["samples"]]
    normalizer = (FeatureNormalizer.from_dict(payload["normalizer"])
                  if payload.get("normalizer") else None)
    return samples, normalizer, payload.get("metadata", {})
