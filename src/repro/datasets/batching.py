"""Mini-batching: merging several tensorised samples into one disjoint graph.

RouteNet processes one scenario at a time, but several scenarios can be
packed into a single message-passing pass by treating them as one large
disconnected graph: link, node and path indices of each sample are shifted
by the totals of the samples before it.  Gradients then average naturally
over the batch, which both smooths optimisation and amortises the Python
overhead of a forward pass — the same trick the reference TensorFlow
implementation uses with ``tf.data`` batching.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.datasets.tensorize import TensorizedSample

__all__ = ["bucket_order", "merge_tensorized_samples", "make_batches"]


def bucket_order(lengths) -> np.ndarray:
    """Stable ordering that groups similar sequence lengths together.

    The single definition of length-bucketed batch *membership*: both the
    in-memory :func:`make_batches` and the streaming window planner
    (:mod:`repro.datasets.prefetch`) sort with this, so a streamed epoch
    whose window covers the dataset builds exactly the batches the in-memory
    trainer pre-merges.
    """
    return np.argsort(np.asarray(lengths), kind="stable")


def merge_tensorized_samples(samples: Sequence[TensorizedSample]) -> TensorizedSample:
    """Merge tensorised samples into one batched :class:`TensorizedSample`.

    All samples must share the same ``target_name``.  The merged sample's
    links/nodes/paths are the disjoint union of the inputs'; sequences are
    padded to the longest path in the batch.  The result is always a fresh
    :class:`TensorizedSample` sharing no arrays with the inputs — a
    single-sample "merge" returns a defensive copy, so the short last batch
    of an epoch never aliases a cached per-sample tensorisation.  The merged
    ``sample_path_offsets`` record the per-scenario path boundaries (already
    merged inputs contribute their own boundaries), so predictions can be
    mapped back to scenarios with :meth:`TensorizedSample.unmerge`.
    """
    samples = list(samples)
    if not samples:
        raise ValueError("cannot merge an empty list of samples")
    if len({s.target_name for s in samples}) != 1:
        raise ValueError("samples must share the same target metric")

    offsets: List[int] = [0]
    for sample in samples:
        base = offsets[-1]
        offsets.extend(base + sample.path_offsets[1:])

    if len(samples) == 1:
        merged = samples[0].copy()
        merged.sample_path_offsets = np.asarray(offsets, dtype=np.int64)
        merged.validate()
        return merged

    max_len = max(s.max_path_length for s in samples)
    total_paths = sum(s.num_paths for s in samples)

    link_features = np.concatenate([s.link_features for s in samples], axis=0)
    node_features = np.concatenate([s.node_features for s in samples], axis=0)
    path_features = np.concatenate([s.path_features for s in samples], axis=0)
    targets = np.concatenate([s.targets for s in samples])
    raw_delays = np.concatenate([s.raw_delays for s in samples])
    raw_targets = np.concatenate([
        s.raw_targets if s.raw_targets is not None else s.raw_delays for s in samples])
    path_lengths = np.concatenate([s.path_lengths for s in samples])

    link_sequences = np.zeros((total_paths, max_len), dtype=np.int64)
    node_sequences = np.zeros((total_paths, max_len), dtype=np.int64)
    # The mask keeps the tensorised precision (feature arrays preserve
    # theirs through np.concatenate above).
    mask = np.zeros((total_paths, max_len),
                    dtype=np.result_type(*[s.sequence_mask.dtype for s in samples]))
    pair_order = []

    path_offset = 0
    link_offset = 0
    node_offset = 0
    for sample in samples:
        rows = slice(path_offset, path_offset + sample.num_paths)
        width = sample.max_path_length
        # Only shift the valid entries; padding stays at index 0 of the merged
        # arrays, which is harmless because the mask excludes it.
        shifted_links = sample.link_sequences + link_offset
        shifted_nodes = sample.node_sequences + node_offset
        valid = sample.sequence_mask > 0
        link_sequences[rows, :width][valid] = shifted_links[valid]
        node_sequences[rows, :width][valid] = shifted_nodes[valid]
        mask[rows, :width] = sample.sequence_mask
        pair_order.extend(sample.pair_order)
        path_offset += sample.num_paths
        link_offset += sample.num_links
        node_offset += sample.num_nodes

    merged = TensorizedSample(
        link_features=link_features,
        node_features=node_features,
        path_features=path_features,
        link_sequences=link_sequences,
        node_sequences=node_sequences,
        sequence_mask=mask,
        path_lengths=path_lengths,
        targets=targets,
        raw_delays=raw_delays,
        pair_order=pair_order,
        target_name=samples[0].target_name,
        raw_targets=raw_targets,
        sample_path_offsets=np.asarray(offsets, dtype=np.int64),
    )
    merged.validate()
    return merged


def make_batches(samples: Sequence[TensorizedSample], batch_size: int,
                 rng: Optional[np.random.Generator] = None,
                 bucket_by_length: bool = False) -> List[TensorizedSample]:
    """Group tensorised samples into merged batches of ``batch_size``.

    The last batch may be smaller.  When ``rng`` is given and
    ``bucket_by_length`` is off, the samples are shuffled before batching.

    With ``bucket_by_length`` the samples are first sorted (stably) by their
    ``max_path_length``, so each merged batch groups scenarios of similar
    sequence length: merging pads every path to the longest in the batch,
    and bucketing shrinks those padded tails — more steps of the RNN scan
    hit the no-masking ``fully_valid`` fast path and fewer padded entries
    are carried at all.  Batch *membership* is then deterministic (a
    function of the sample lengths only), which lets trainers pre-merge the
    batches once and reshuffle only their order each epoch; ``rng`` is used
    to shuffle that batch order here.  Every sample lands in exactly one
    batch either way.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    samples = list(samples)
    if not samples:
        raise ValueError("cannot batch an empty list of samples")
    if bucket_by_length:
        order = bucket_order([s.max_path_length for s in samples])
        samples = [samples[i] for i in order]
    elif rng is not None:
        order = rng.permutation(len(samples))
        samples = [samples[i] for i in order]
    batches = [merge_tensorized_samples(samples[i:i + batch_size])
               for i in range(0, len(samples), batch_size)]
    if bucket_by_length and rng is not None:
        batch_order = rng.permutation(len(batches))
        batches = [batches[i] for i in batch_order]
    return batches
