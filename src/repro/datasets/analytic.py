"""Fast analytic ground-truth generator (the volume substitute for OMNeT++).

The paper trains on 400,000 simulated GEANT2 samples — far more than a
packet-level simulator can produce inside this reproduction.  This module
provides a fast surrogate: per-path delays are computed with a fixed-point
finite-buffer (M/M/1/K) queueing-network evaluation, then perturbed with
log-normal measurement noise that mimics the finite measurement window of a
real simulation.

The crucial property preserved from the paper's setting is that the delay of
a path depends on the *queue sizes of the nodes it traverses*: small buffers
bound queueing delay (and raise loss), large buffers allow queues to build
up.  The original RouteNet cannot see this node feature, so its predictions
carry irreducible error on mixed-queue scenarios; the extended model can —
which is exactly the effect Fig. 2 measures.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.queueing import MM1KModel
from repro.datasets.sample import Sample
from repro.routing.scheme import RoutingScheme
from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix

__all__ = ["AnalyticGroundTruth"]


class AnalyticGroundTruth:
    """Generate :class:`Sample` objects from the analytic queueing network.

    Parameters
    ----------
    mean_packet_size_bits:
        Average packet size used to convert traffic (bits/s) into packets/s.
    noise_std:
        Standard deviation of the multiplicative log-normal measurement
        noise applied to every per-path delay (0 disables noise).
    fixed_point_iterations:
        Iterations of the loss-thinning fixed point (more = better accuracy
        at high load).
    """

    def __init__(self, mean_packet_size_bits: float = 8000.0, noise_std: float = 0.03,
                 fixed_point_iterations: int = 10) -> None:
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self.mean_packet_size_bits = mean_packet_size_bits
        self.noise_std = noise_std
        self._model = MM1KModel(mean_packet_size_bits=mean_packet_size_bits,
                                fixed_point_iterations=fixed_point_iterations)

    def generate(self, topology: Topology, routing: RoutingScheme, traffic: TrafficMatrix,
                 rng: Optional[np.random.Generator] = None) -> Sample:
        """Produce one sample for the given scenario."""
        generator = rng if rng is not None else np.random.default_rng()
        prediction = self._model.predict(topology, routing, traffic)
        delays = prediction.delays.copy()
        if not np.all(np.isfinite(delays)):
            raise ValueError("analytic model produced non-finite delays; "
                             "reduce the offered load")
        if self.noise_std > 0:
            noise = generator.lognormal(mean=0.0, sigma=self.noise_std, size=delays.shape)
            delays = delays * noise
        # Jitter proxy: queueing variability grows with the queueing part of the
        # delay; use half the queueing delay as a crude but monotone surrogate.
        service_floor = np.array([
            sum(self.mean_packet_size_bits / topology.link_by_index(l).capacity
                + topology.link_by_index(l).propagation_delay
                for l in routing.link_path(*pair))
            for pair in routing.pairs()
        ])
        jitters = np.maximum(delays - service_floor, 0.0) * 0.5
        return Sample(
            topology=topology,
            routing=routing,
            traffic=traffic,
            delays=delays,
            jitters=jitters,
            losses=prediction.loss_ratios.copy(),
            metadata={
                "generator": "analytic-mm1k",
                "noise_std": self.noise_std,
                "mean_packet_size_bits": self.mean_packet_size_bits,
            },
        )
