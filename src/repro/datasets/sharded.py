"""Sharded on-disk dataset store: JSONL or binary npz shards plus a manifest.

Formats 2 and 3 of the dataset storage layer (format 1 is the single
``.json.gz`` blob of :mod:`repro.datasets.storage`).  A sharded store is a
*directory*::

    store/
      manifest.json          <- format_version 2 or 3, shard index, normalizer
      shard-00000.jsonl.gz   <- format 2: one JSON-encoded Sample dict per line
      shard-00001.jsonl.gz
      ...

or, with ``payload="binary"`` (manifest ``format_version`` 3)::

    store/
      manifest.json
      shard-00000.npz        <- format 3: raw index/float arrays per sample
      shard-00001.npz
      ...

The binary payload stores every sample as a handful of typed arrays
(routing as offsets into one flat node-id vector, traffic as the dense
float64 matrix, targets verbatim) plus one small JSON string for the
non-array attributes, so streamed epochs read samples with **zero JSON
parsing of numeric data** — ``np.load`` hands the arrays straight back.
Round trips are bit-exact in both formats (JSON floats survive via repr).

Samples are written **incrementally** (rolling over to a new shard every
``shard_size`` samples), so arbitrarily large datasets can be generated and
persisted without ever materialising the sample list — and read back the
same way: :class:`ShardedDatasetReader` is an iterable that decodes one
sample at a time, which is what the streaming training pipeline
(:mod:`repro.datasets.prefetch`) consumes to run epochs in O(window) memory
instead of O(dataset).

Crash safety mirrors the trainer's checkpointing: every shard is written to
a ``.tmp`` name and :func:`os.replace`-d into place when complete, and the
manifest — written last — is the commit point.  A killed writer leaves at
worst orphaned shard files and no *new* manifest, never a store that reads
back truncated; rewriting an existing store keeps the old generation fully
readable until the new manifest lands (rewrite shards carry a unique
``shard-<token>-NNNNN`` name prefix so the generations cannot collide, and
the superseded files are deleted only after the commit).

Integrity goes beyond crash atomicity: every shard's SHA-256 is computed
over the finished ``.tmp`` bytes and stamped into its manifest record, and
:class:`ShardedDatasetReader` re-hashes each shard the first time it reads
it (per reader instance), refusing silently rotten bytes with an error
naming the file and both digests.  Shard bytes are deterministic functions
of their samples in both payloads (JSONL shards are gzipped with a fixed
mtime and no embedded filename; npz archives carry no timestamps), which
is what lets the fault-tolerance tests assert byte-identical stores across
crash/recover runs.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import math
import os
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.testing.faults import fault_point

from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.sample import Sample
from repro.routing.scheme import RoutingScheme
from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "MANIFEST_NAME",
    "ShardedDatasetWriter",
    "ShardedDatasetReader",
    "attach_normalizer",
    "is_sharded_store",
    "shard_size_for",
    "shard_extension",
    "write_shard",
    "file_sha256",
]

MANIFEST_NAME = "manifest.json"

SUPPORTED_FORMAT_VERSIONS = (2, 3)


def _encode_sample(sample: Sample) -> Tuple[dict, str]:
    """Encode one sample as (typed arrays, JSON string of the rest).

    The arrays carry everything numeric — node/link structure, routing as
    one flat node vector plus per-path offsets, the dense traffic matrix
    and the target vectors — in their natural dtypes; the JSON string keeps
    only the small non-array attributes (topology name, node labels and
    scheduling disciplines, sample metadata).
    """
    topology = sample.topology
    nodes = topology.nodes()
    node_specs = [topology.node_spec(node) for node in nodes]
    links = topology.links()
    node_paths = sample.routing.node_paths()
    arrays = {
        "node_ids": np.asarray(nodes, dtype=np.int64),
        "queue_sizes": np.asarray([spec.queue_size for spec in node_specs],
                                  dtype=np.int64),
        "link_endpoints": np.asarray(
            [[link.source, link.target] for link in links],
            dtype=np.int64).reshape(-1, 2),
        "link_capacities": np.asarray([link.capacity for link in links],
                                      dtype=np.float64),
        "link_delays": np.asarray([link.propagation_delay for link in links],
                                  dtype=np.float64),
        "route_pairs": np.asarray(sample.routing.pairs(),
                                  dtype=np.int64).reshape(-1, 2),
        "route_offsets": np.cumsum(
            [0] + [len(path) for path in node_paths], dtype=np.int64),
        "route_nodes": (np.concatenate([np.asarray(p, dtype=np.int64)
                                        for p in node_paths])
                        if node_paths else np.zeros(0, dtype=np.int64)),
        "traffic": sample.traffic.matrix,
        "delays": sample.delays,
    }
    if sample.jitters is not None:
        arrays["jitters"] = sample.jitters
    if sample.losses is not None:
        arrays["losses"] = sample.losses
    meta = json.dumps({
        "name": topology.name,
        "labels": [spec.label for spec in node_specs],
        "scheduling": [spec.scheduling for spec in node_specs],
        "metadata": dict(sample.metadata),
    })
    return arrays, meta


def _decode_sample(get, available, meta_json: str) -> Sample:
    """Rebuild a :class:`Sample` from :func:`_encode_sample` arrays.

    ``get(field)`` returns the named array, ``available`` is the set of
    fields present (the optional target vectors may be absent).  The routing
    scheme is rebuilt without per-hop re-validation: the arrays were encoded
    from a scheme that was already validated against this very topology, so
    re-walking every hop on each streamed epoch would only re-prove what the
    writer established once.
    """
    meta = json.loads(meta_json)
    topology = Topology(name=meta.get("name", "topology"))
    for node_id, queue_size, label, scheduling in zip(
            get("node_ids"), get("queue_sizes"), meta["labels"], meta["scheduling"]):
        topology.add_node(int(node_id), queue_size=int(queue_size),
                          label=label, scheduling=scheduling)
    for (source, target), capacity, delay in zip(
            get("link_endpoints"), get("link_capacities"), get("link_delays")):
        topology.add_link(int(source), int(target), capacity=float(capacity),
                          propagation_delay=float(delay))
    offsets = get("route_offsets")
    route_nodes = get("route_nodes")
    paths = {}
    for k, (source, destination) in enumerate(get("route_pairs")):
        paths[(int(source), int(destination))] = \
            route_nodes[offsets[k]:offsets[k + 1]].tolist()
    return Sample(
        topology=topology,
        routing=RoutingScheme(topology, paths, validate=False),
        traffic=TrafficMatrix(get("traffic")),
        delays=get("delays"),
        jitters=get("jitters") if "jitters" in available else None,
        losses=get("losses") if "losses" in available else None,
        metadata=meta.get("metadata", {}),
    )


def file_sha256(path: str) -> str:
    """Hex SHA-256 of a file's bytes (streamed, constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _open_deterministic_gzip_text(path: str):
    """Open ``path`` for gzipped text writing with byte-deterministic output.

    Plain ``gzip.open`` embeds the current mtime (and, given a filename, the
    name itself) in the gzip header, so two writes of identical samples
    differ at the byte level.  Pinning ``mtime=0`` over an anonymous
    ``fileobj`` makes shard bytes a pure function of their contents — the
    property the checksum layer and the crash-recovery tests lean on.
    """
    raw = open(path, "wb")
    try:
        compressed = gzip.GzipFile(fileobj=raw, mode="wb", mtime=0)
    except Exception:
        raw.close()
        raise
    text = io.TextIOWrapper(compressed, encoding="utf-8")
    # Closing the TextIOWrapper closes the GzipFile but not the raw file;
    # chain it so one close() releases all three layers.
    original_close = text.close

    def close_all() -> None:
        original_close()
        if not compressed.closed:
            compressed.close()
        if not raw.closed:
            raw.close()

    text.close = close_all  # type: ignore[method-assign]
    return text


def _commit_shard(directory: str, name: str) -> str:
    """Hash the finished ``.tmp`` shard and rename it into place.

    Returns the shard's hex SHA-256 (of exactly the bytes that now live
    under the final name).  The :func:`fault_point` lets the chaos suite
    kill the writer *between* finishing the bytes and the rename — the
    window where crash atomicity is earned.
    """
    temporary = os.path.join(directory, name + ".tmp")
    digest = file_sha256(temporary)
    fault_point("sharded.shard.pre_replace", name=name)
    os.replace(temporary, os.path.join(directory, name))
    return digest


def shard_extension(payload: str) -> str:
    """File extension of one shard in the given payload encoding."""
    if payload == "binary":
        return ".npz"
    if payload == "jsonl":
        return ".jsonl.gz"
    raise ValueError(f"payload must be 'jsonl' or 'binary', got {payload!r}")


def _write_binary_shard(directory: str, name: str,
                        encoded: List[Tuple[dict, str]]) -> str:
    """Atomically write one format-3 npz shard from encoded samples.

    One npz archive per shard: sample ``i``'s arrays live under the key
    prefix ``s{i:05d}.`` and the per-sample JSON strings stack into one
    unicode "meta" array (also the sample count).  Written to a ``.tmp``
    name and :func:`os.replace`-d into place, so a killed writer never
    leaves a partially written shard under the final name.  Returns the
    committed shard's hex SHA-256.
    """
    temporary = os.path.join(directory, name + ".tmp")
    archive = {}
    metas = []
    for i, (arrays, meta) in enumerate(encoded):
        prefix = f"s{i:05d}."
        for key, value in arrays.items():
            archive[prefix + key] = value
        metas.append(meta)
    archive["meta"] = np.array(metas)
    with open(temporary, "wb") as handle:
        np.savez(handle, **archive)
    return _commit_shard(directory, name)


def write_shard(directory: str, name: str, samples, payload: str = "binary") -> dict:
    """Write one complete, self-contained shard file atomically.

    The shard-write kernel shared by :class:`ShardedDatasetWriter` (which
    rolls shards as samples stream in) and the dataset factory (whose
    worker processes each commit one whole work unit as one shard).  The
    file appears under ``directory/name`` only when fully written (temp +
    ``os.replace``), so concurrent writers of *different* names never
    interfere and a killed writer leaves at worst a ``.tmp`` residue.

    Returns the shard's manifest record
    ``{"name": ..., "num_samples": ..., "sha256": ...}``.
    ``name`` must carry the extension matching ``payload`` (see
    :func:`shard_extension`) — the reader dispatches its decoder on it.
    """
    extension = shard_extension(payload)
    if not name.endswith(extension):
        raise ValueError(
            f"shard name '{name}' does not match payload '{payload}' "
            f"(expected the '{extension}' extension)")
    samples = list(samples)
    if payload == "binary":
        digest = _write_binary_shard(
            directory, name, [_encode_sample(s) for s in samples])
    else:
        temporary = os.path.join(directory, name + ".tmp")
        with _open_deterministic_gzip_text(temporary) as handle:
            for sample in samples:
                json.dump(sample.to_dict(), handle)
                handle.write("\n")
        digest = _commit_shard(directory, name)
    return {"name": name, "num_samples": len(samples), "sha256": digest}


def is_sharded_store(path: str) -> bool:
    """True when ``path`` is a directory holding a sharded-store manifest."""
    return os.path.isdir(path) and os.path.isfile(os.path.join(path, MANIFEST_NAME))


def _write_manifest(path: str, manifest: dict) -> None:
    """Atomically (re)write the manifest — the store's commit point.

    The temp name carries the writer's pid: concurrent ``--resume`` runs
    committing the same store (coordinated per *unit* by claim files, but
    free to interleave manifest commits) must not rename each other's
    half-written temp file out from under the replace."""
    target = os.path.join(path, MANIFEST_NAME)
    temporary = f"{target}.{os.getpid()}.tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    os.replace(temporary, target)


class ShardedDatasetWriter:
    """Write samples incrementally into a sharded dataset store.

    Parameters
    ----------
    path:
        Directory of the store (created if missing).  Re-writing an
        existing store is **atomic at the manifest**: the new generation's
        shards are written under fresh (collision-free) names while the old
        manifest — and every shard it references — stays untouched, so
        readers keep seeing the previous dataset until :meth:`close`
        replaces the manifest; only then are the superseded shard files
        deleted.  A rewrite killed at any point leaves the old store fully
        readable.
    shard_size:
        Samples per shard (the last shard may be smaller).
    payload:
        Shard encoding: ``"jsonl"`` (default) writes format-2 gzipped-JSONL
        shards; ``"binary"`` writes format-3 ``.npz`` shards whose samples
        are typed arrays that load back with zero JSON parsing of numeric
        data (the fast path for streamed epochs).  The manifest records the
        choice as ``format_version`` 2 / 3 plus a ``payload`` key.
    normalizer / metadata:
        Stored in the manifest.  The normaliser can also be attached after
        the fact with :meth:`set_normalizer` (before :meth:`close`) or
        :func:`attach_normalizer` (after) — useful when it is fitted by
        streaming over the already-written store.

    Use as a context manager: a clean exit finalises the manifest, an
    exception aborts without one (a fresh store stays invisible to readers,
    an existing one keeps its previous contents).
    """

    def __init__(self, path: str, shard_size: int = 256,
                 normalizer: Optional[FeatureNormalizer] = None,
                 metadata: Optional[dict] = None,
                 payload: str = "jsonl") -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be at least 1")
        if payload not in ("jsonl", "binary"):
            raise ValueError(
                f"payload must be 'jsonl' or 'binary', got {payload!r}")
        self.path = path
        self.shard_size = shard_size
        self.payload = payload
        self._normalizer = normalizer
        self._metadata = dict(metadata) if metadata else {}
        self._shards: List[dict] = []
        self._handle = None
        #: Encoded (arrays, meta) of the open binary shard's samples.
        self._pending: List[Tuple[dict, str]] = []
        self._current_count = 0
        self._closed = False
        os.makedirs(path, exist_ok=True)
        # When a committed store already lives here, the new generation's
        # shards get a unique name prefix so they can never collide with a
        # shard the live manifest references — the prerequisite for the
        # atomic manifest swap in close().
        if os.path.exists(os.path.join(path, MANIFEST_NAME)):
            self._name_prefix = f"shard-{os.urandom(4).hex()}-"
        else:
            self._name_prefix = "shard-"

    # ------------------------------------------------------------------ #
    @property
    def num_samples(self) -> int:
        """Samples written so far (including the open shard)."""
        return (sum(shard["num_samples"] for shard in self._shards)
                + self._current_count)

    def set_normalizer(self, normalizer: Optional[FeatureNormalizer]) -> None:
        """Set the normaliser recorded in the manifest at :meth:`close`."""
        self._normalizer = normalizer

    # ------------------------------------------------------------------ #
    def _shard_name(self) -> str:
        return (f"{self._name_prefix}{len(self._shards):05d}"
                f"{shard_extension(self.payload)}")

    def _open_shard(self) -> None:
        temporary = os.path.join(self.path, self._shard_name() + ".tmp")
        self._handle = _open_deterministic_gzip_text(temporary)
        self._current_count = 0

    def _seal_shard(self) -> None:
        """Write out / close the open shard and rename it into its final place."""
        if self.payload == "binary":
            if not self._pending:
                return
            name = self._shard_name()
            digest = _write_binary_shard(self.path, name, self._pending)
            self._shards.append({"name": name,
                                 "num_samples": len(self._pending),
                                 "sha256": digest})
            self._pending = []
            self._current_count = 0
            return
        if self._handle is None:
            return
        self._handle.close()
        self._handle = None
        name = self._shard_name()
        digest = _commit_shard(self.path, name)
        self._shards.append({"name": name,
                             "num_samples": self._current_count,
                             "sha256": digest})
        self._current_count = 0

    def write(self, sample: Sample) -> None:
        """Append one sample (shards roll automatically every ``shard_size``)."""
        if self._closed:
            raise RuntimeError("writer is closed")
        if self.payload == "binary":
            # Encoded immediately (errors surface at write time and the
            # Sample object is not retained), written out at shard roll.
            self._pending.append(_encode_sample(sample))
            self._current_count += 1
        else:
            if self._handle is None:
                self._open_shard()
            json.dump(sample.to_dict(), self._handle)
            self._handle.write("\n")
            self._current_count += 1
        if self._current_count >= self.shard_size:
            self._seal_shard()

    def close(self) -> str:
        """Seal the open shard and commit the manifest; returns the path.

        The manifest replace is the commit point; superseded shard files
        from a previous generation (and any stray ``.tmp``) are deleted
        only *after* it, so a crash anywhere leaves either the old store or
        the new one fully readable — never a mixture.
        """
        if self._closed:
            return self.path
        if self._current_count > 0:
            self._seal_shard()
        elif self._handle is not None:  # opened but empty (cannot happen today)
            self._handle.close()
            self._handle = None
        manifest = {
            "format_version": 3 if self.payload == "binary" else 2,
            "payload": self.payload,
            "metadata": self._metadata,
            "normalizer": (self._normalizer.to_dict()
                           if self._normalizer is not None else None),
            "total_samples": sum(s["num_samples"] for s in self._shards),
            "shards": self._shards,
        }
        _write_manifest(self.path, manifest)
        self._closed = True
        referenced = {shard["name"] for shard in self._shards}
        for name in os.listdir(self.path):
            if name == MANIFEST_NAME or name in referenced:
                continue
            if name.startswith("shard-"):
                try:
                    os.remove(os.path.join(self.path, name))
                except OSError:
                    pass
        return self.path

    def abort(self) -> None:
        """Drop everything this writer produced; commit nothing.

        The in-progress ``.tmp`` and any shards this writer already sealed
        are removed; a pre-existing store (manifest and its shards) is left
        exactly as it was.
        """
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            try:
                os.remove(os.path.join(self.path, self._shard_name() + ".tmp"))
            except OSError:
                pass
        self._pending = []
        for shard in self._shards:
            try:
                os.remove(os.path.join(self.path, shard["name"]))
            except OSError:
                pass
        self._shards = []
        self._closed = True

    def __enter__(self) -> "ShardedDatasetWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class ShardedDatasetReader:
    """Stream samples back out of a sharded store, one at a time.

    The reader is a sized iterable: ``len(reader)`` is the manifest's total
    and every ``iter(reader)`` starts a fresh pass over the shards (one pass
    per training epoch).  Iteration parses one JSONL line into a
    :class:`Sample` at a time, so only O(1) samples are ever live — the
    property the out-of-core training path is built on.

    With ``verify_checksums=True`` (the default) each shard's bytes are
    re-hashed the **first** time this reader instance touches it and
    compared to the SHA-256 stamped in the manifest; a mismatch raises
    :class:`ValueError` naming the file and both digests instead of
    silently decoding rotten data.  Verification costs one extra pass over
    the shard's (compressed) bytes on the first epoch only — later epochs
    decode straight from disk — and is skipped for shards whose manifest
    record predates checksums.
    """

    def __init__(self, path: str, verify_checksums: bool = True) -> None:
        if not is_sharded_store(path):
            raise FileNotFoundError(
                f"no sharded dataset store at '{path}' (expected a directory "
                f"containing {MANIFEST_NAME})")
        self.path = path
        self.verify_checksums = verify_checksums
        self._verified_shards: set = set()
        with open(os.path.join(path, MANIFEST_NAME), "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        version = manifest.get("format_version")
        if version not in SUPPORTED_FORMAT_VERSIONS:
            supported = " and ".join(str(v) for v in SUPPORTED_FORMAT_VERSIONS)
            raise ValueError(
                f"unsupported sharded-store format_version {version!r} "
                f"in '{path}' (this reader understands versions {supported}: "
                f"2 = gzipped-JSONL shards, 3 = binary npz shards)")
        self._manifest = manifest
        self.metadata: dict = manifest.get("metadata", {})
        self.normalizer: Optional[FeatureNormalizer] = (
            FeatureNormalizer.from_dict(manifest["normalizer"])
            if manifest.get("normalizer") else None)

    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> List[dict]:
        """The manifest's shard index: ``[{"name", "num_samples"}, ...]``."""
        return list(self._manifest["shards"])

    @property
    def num_shards(self) -> int:
        return len(self._manifest["shards"])

    def __len__(self) -> int:
        return int(self._manifest["total_samples"])

    def _checked_source(self, shard: dict, shard_path: str):
        """The shard's decode source: its path, or verified in-memory bytes.

        First touch of a checksummed shard reads the whole file once,
        compares digests, and hands the already-read bytes to the decoder
        (so verification never costs a second disk pass); later touches —
        and shards without a recorded checksum — decode from the path.
        """
        expected = shard.get("sha256")
        if (not self.verify_checksums or expected is None
                or shard["name"] in self._verified_shards):
            return shard_path
        with open(shard_path, "rb") as handle:
            blob = handle.read()
        actual = hashlib.sha256(blob).hexdigest()
        if actual != expected:
            raise ValueError(
                f"shard '{shard_path}' failed checksum verification: "
                f"manifest records sha256 {expected} but the file hashes to "
                f"{actual} — the shard was corrupted after commit; "
                "regenerate it (factory stores: `repro-net generate "
                "--resume` quarantines and re-executes the unit)")
        self._verified_shards.add(shard["name"])
        return io.BytesIO(blob)

    def __iter__(self) -> Iterator[Sample]:
        for shard in self._manifest["shards"]:
            shard_path = os.path.join(self.path, shard["name"])
            source = self._checked_source(shard, shard_path)
            if shard["name"].endswith(".npz"):
                count = yield from self._iter_binary_shard(source)
            else:
                count = yield from self._iter_jsonl_shard(source)
            if count != shard["num_samples"]:
                raise ValueError(
                    f"shard '{shard['name']}' of '{self.path}' holds {count} "
                    f"samples but the manifest records {shard['num_samples']} "
                    "(truncated or corrupted shard)")

    @staticmethod
    def _iter_jsonl_shard(source):
        count = 0
        with gzip.open(source, "rt", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                yield Sample.from_dict(json.loads(line))
                count += 1
        return count

    @staticmethod
    def _iter_binary_shard(source):
        with np.load(source, allow_pickle=False) as archive:
            available = set(archive.files)
            metas = archive["meta"]
            for i in range(len(metas)):
                prefix = f"s{i:05d}."
                yield _decode_sample(
                    lambda field, prefix=prefix: archive[prefix + field],
                    {name[len(prefix):] for name in available
                     if name.startswith(prefix)},
                    str(metas[i]))
        return len(metas)

    def read_all(self) -> List[Sample]:
        """Materialise the whole store as a list (the non-streaming path)."""
        return list(self)


def attach_normalizer(path: str, normalizer: Optional[FeatureNormalizer]) -> None:
    """Rewrite a store's manifest with ``normalizer`` (atomically).

    Lets a normaliser be fitted *after* generation by streaming over the
    written store (``FeatureNormalizer().fit(ShardedDatasetReader(path))``)
    and then recorded without rewriting any shard.
    """
    if not is_sharded_store(path):
        raise FileNotFoundError(f"no sharded dataset store at '{path}'")
    with open(os.path.join(path, MANIFEST_NAME), "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    manifest["normalizer"] = normalizer.to_dict() if normalizer is not None else None
    _write_manifest(path, manifest)


def shard_size_for(num_samples: int, shards: int) -> int:
    """Shard size that spreads ``num_samples`` over exactly ``shards`` files."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return max(1, math.ceil(num_samples / shards))
