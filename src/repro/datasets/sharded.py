"""Sharded on-disk dataset store: gzipped JSONL shards plus a manifest.

Format 2 of the dataset storage layer (format 1 is the single ``.json.gz``
blob of :mod:`repro.datasets.storage`).  A sharded store is a *directory*::

    store/
      manifest.json          <- format_version 2, shard index, normalizer
      shard-00000.jsonl.gz   <- one JSON-encoded Sample dict per line
      shard-00001.jsonl.gz
      ...

Samples are written **incrementally** (one line at a time, rolling over to a
new shard every ``shard_size`` samples), so arbitrarily large datasets can be
generated and persisted without ever materialising the sample list — and
read back the same way: :class:`ShardedDatasetReader` is an iterable that
parses one sample at a time, which is what the streaming training pipeline
(:mod:`repro.datasets.prefetch`) consumes to run epochs in O(window) memory
instead of O(dataset).

Crash safety mirrors the trainer's checkpointing: every shard is written to
a ``.tmp`` name and :func:`os.replace`-d into place when complete, and the
manifest — written last — is the commit point.  A killed writer leaves at
worst orphaned shard files and no *new* manifest, never a store that reads
back truncated; rewriting an existing store keeps the old generation fully
readable until the new manifest lands (rewrite shards carry a unique
``shard-<token>-NNNNN`` name prefix so the generations cannot collide, and
the superseded files are deleted only after the commit).
"""

from __future__ import annotations

import gzip
import json
import math
import os
from typing import Iterator, List, Optional

from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.sample import Sample

__all__ = [
    "MANIFEST_NAME",
    "ShardedDatasetWriter",
    "ShardedDatasetReader",
    "attach_normalizer",
    "is_sharded_store",
    "shard_size_for",
]

MANIFEST_NAME = "manifest.json"


def is_sharded_store(path: str) -> bool:
    """True when ``path`` is a directory holding a sharded-store manifest."""
    return os.path.isdir(path) and os.path.isfile(os.path.join(path, MANIFEST_NAME))


def _write_manifest(path: str, manifest: dict) -> None:
    """Atomically (re)write the manifest — the store's commit point."""
    target = os.path.join(path, MANIFEST_NAME)
    temporary = target + ".tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    os.replace(temporary, target)


class ShardedDatasetWriter:
    """Write samples incrementally into a sharded dataset store.

    Parameters
    ----------
    path:
        Directory of the store (created if missing).  Re-writing an
        existing store is **atomic at the manifest**: the new generation's
        shards are written under fresh (collision-free) names while the old
        manifest — and every shard it references — stays untouched, so
        readers keep seeing the previous dataset until :meth:`close`
        replaces the manifest; only then are the superseded shard files
        deleted.  A rewrite killed at any point leaves the old store fully
        readable.
    shard_size:
        Samples per shard (the last shard may be smaller).
    normalizer / metadata:
        Stored in the manifest.  The normaliser can also be attached after
        the fact with :meth:`set_normalizer` (before :meth:`close`) or
        :func:`attach_normalizer` (after) — useful when it is fitted by
        streaming over the already-written store.

    Use as a context manager: a clean exit finalises the manifest, an
    exception aborts without one (a fresh store stays invisible to readers,
    an existing one keeps its previous contents).
    """

    def __init__(self, path: str, shard_size: int = 256,
                 normalizer: Optional[FeatureNormalizer] = None,
                 metadata: Optional[dict] = None) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be at least 1")
        self.path = path
        self.shard_size = shard_size
        self._normalizer = normalizer
        self._metadata = dict(metadata) if metadata else {}
        self._shards: List[dict] = []
        self._handle = None
        self._current_count = 0
        self._closed = False
        os.makedirs(path, exist_ok=True)
        # When a committed store already lives here, the new generation's
        # shards get a unique name prefix so they can never collide with a
        # shard the live manifest references — the prerequisite for the
        # atomic manifest swap in close().
        if os.path.exists(os.path.join(path, MANIFEST_NAME)):
            self._name_prefix = f"shard-{os.urandom(4).hex()}-"
        else:
            self._name_prefix = "shard-"

    # ------------------------------------------------------------------ #
    @property
    def num_samples(self) -> int:
        """Samples written so far (including the open shard)."""
        return (sum(shard["num_samples"] for shard in self._shards)
                + self._current_count)

    def set_normalizer(self, normalizer: Optional[FeatureNormalizer]) -> None:
        """Set the normaliser recorded in the manifest at :meth:`close`."""
        self._normalizer = normalizer

    # ------------------------------------------------------------------ #
    def _shard_name(self) -> str:
        return f"{self._name_prefix}{len(self._shards):05d}.jsonl.gz"

    def _open_shard(self) -> None:
        temporary = os.path.join(self.path, self._shard_name() + ".tmp")
        self._handle = gzip.open(temporary, "wt", encoding="utf-8")
        self._current_count = 0

    def _seal_shard(self) -> None:
        """Close the open shard and rename it into its final place."""
        if self._handle is None:
            return
        self._handle.close()
        self._handle = None
        name = self._shard_name()
        os.replace(os.path.join(self.path, name + ".tmp"),
                   os.path.join(self.path, name))
        self._shards.append({"name": name, "num_samples": self._current_count})
        self._current_count = 0

    def write(self, sample: Sample) -> None:
        """Append one sample (one JSONL line; shards roll automatically)."""
        if self._closed:
            raise RuntimeError("writer is closed")
        if self._handle is None:
            self._open_shard()
        json.dump(sample.to_dict(), self._handle)
        self._handle.write("\n")
        self._current_count += 1
        if self._current_count >= self.shard_size:
            self._seal_shard()

    def close(self) -> str:
        """Seal the open shard and commit the manifest; returns the path.

        The manifest replace is the commit point; superseded shard files
        from a previous generation (and any stray ``.tmp``) are deleted
        only *after* it, so a crash anywhere leaves either the old store or
        the new one fully readable — never a mixture.
        """
        if self._closed:
            return self.path
        if self._current_count > 0:
            self._seal_shard()
        elif self._handle is not None:  # opened but empty (cannot happen today)
            self._handle.close()
            self._handle = None
        manifest = {
            "format_version": 2,
            "metadata": self._metadata,
            "normalizer": (self._normalizer.to_dict()
                           if self._normalizer is not None else None),
            "total_samples": sum(s["num_samples"] for s in self._shards),
            "shards": self._shards,
        }
        _write_manifest(self.path, manifest)
        self._closed = True
        referenced = {shard["name"] for shard in self._shards}
        for name in os.listdir(self.path):
            if name == MANIFEST_NAME or name in referenced:
                continue
            if name.startswith("shard-"):
                try:
                    os.remove(os.path.join(self.path, name))
                except OSError:
                    pass
        return self.path

    def abort(self) -> None:
        """Drop everything this writer produced; commit nothing.

        The in-progress ``.tmp`` and any shards this writer already sealed
        are removed; a pre-existing store (manifest and its shards) is left
        exactly as it was.
        """
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            try:
                os.remove(os.path.join(self.path, self._shard_name() + ".tmp"))
            except OSError:
                pass
        for shard in self._shards:
            try:
                os.remove(os.path.join(self.path, shard["name"]))
            except OSError:
                pass
        self._shards = []
        self._closed = True

    def __enter__(self) -> "ShardedDatasetWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class ShardedDatasetReader:
    """Stream samples back out of a sharded store, one at a time.

    The reader is a sized iterable: ``len(reader)`` is the manifest's total
    and every ``iter(reader)`` starts a fresh pass over the shards (one pass
    per training epoch).  Iteration parses one JSONL line into a
    :class:`Sample` at a time, so only O(1) samples are ever live — the
    property the out-of-core training path is built on.
    """

    def __init__(self, path: str) -> None:
        if not is_sharded_store(path):
            raise FileNotFoundError(
                f"no sharded dataset store at '{path}' (expected a directory "
                f"containing {MANIFEST_NAME})")
        self.path = path
        with open(os.path.join(path, MANIFEST_NAME), "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        version = manifest.get("format_version")
        if version != 2:
            raise ValueError(
                f"unsupported sharded-store format_version {version!r} "
                f"in '{path}' (this reader understands version 2)")
        self._manifest = manifest
        self.metadata: dict = manifest.get("metadata", {})
        self.normalizer: Optional[FeatureNormalizer] = (
            FeatureNormalizer.from_dict(manifest["normalizer"])
            if manifest.get("normalizer") else None)

    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> List[dict]:
        """The manifest's shard index: ``[{"name", "num_samples"}, ...]``."""
        return list(self._manifest["shards"])

    @property
    def num_shards(self) -> int:
        return len(self._manifest["shards"])

    def __len__(self) -> int:
        return int(self._manifest["total_samples"])

    def __iter__(self) -> Iterator[Sample]:
        for shard in self._manifest["shards"]:
            shard_path = os.path.join(self.path, shard["name"])
            count = 0
            with gzip.open(shard_path, "rt", encoding="utf-8") as handle:
                for line in handle:
                    if not line.strip():
                        continue
                    yield Sample.from_dict(json.loads(line))
                    count += 1
            if count != shard["num_samples"]:
                raise ValueError(
                    f"shard '{shard['name']}' of '{self.path}' holds {count} "
                    f"samples but the manifest records {shard['num_samples']} "
                    "(truncated or corrupted shard)")

    def read_all(self) -> List[Sample]:
        """Materialise the whole store as a list (the non-streaming path)."""
        return list(self)


def attach_normalizer(path: str, normalizer: Optional[FeatureNormalizer]) -> None:
    """Rewrite a store's manifest with ``normalizer`` (atomically).

    Lets a normaliser be fitted *after* generation by streaming over the
    written store (``FeatureNormalizer().fit(ShardedDatasetReader(path))``)
    and then recorded without rewriting any shard.
    """
    if not is_sharded_store(path):
        raise FileNotFoundError(f"no sharded dataset store at '{path}'")
    with open(os.path.join(path, MANIFEST_NAME), "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    manifest["normalizer"] = normalizer.to_dict() if normalizer is not None else None
    _write_manifest(path, manifest)


def shard_size_for(num_samples: int, shards: int) -> int:
    """Shard size that spreads ``num_samples`` over exactly ``shards`` files."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return max(1, math.ceil(num_samples / shards))
