"""Convert a :class:`Sample` into the arrays RouteNet's message passing needs.

Both models process one sample (one topology + routing + traffic matrix) at a
time.  The tensorised form flattens the variable-length paths into padded
index matrices, mirroring how the reference TensorFlow implementation feeds
``tf.gather`` / ``unsorted_segment_sum``:

* ``link_features``   (num_links, 1)   — normalised capacity per link;
* ``node_features``   (num_nodes, 1)   — normalised queue size per node;
* ``path_features``   (num_paths, 1)   — normalised traffic per path;
* ``link_sequences``  (num_paths, max_len) — link index at every hop (0-padded);
* ``node_sequences``  (num_paths, max_len) — *sending* node at every hop
  (the device whose output queue the packet waits in, 0-padded);
* ``sequence_mask``   (num_paths, max_len) — 1 for real hops, 0 for padding;
* ``targets``         (num_paths,)     — normalised delays.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.sample import Sample
from repro.nn.tensor import DTypeLike, resolve_dtype

__all__ = ["TensorizedSample", "tensorize_sample"]


@dataclasses.dataclass
class TensorizedSample:
    """Dense arrays describing one sample for the models.

    A *merged* sample (see :mod:`repro.datasets.batching`) is the disjoint
    union of several scenarios; ``sample_path_offsets`` then records the path
    boundaries so per-path outputs can be mapped back to their scenario with
    :meth:`unmerge`.
    """

    link_features: np.ndarray
    node_features: np.ndarray
    path_features: np.ndarray
    link_sequences: np.ndarray
    node_sequences: np.ndarray
    sequence_mask: np.ndarray
    path_lengths: np.ndarray
    targets: np.ndarray
    raw_delays: np.ndarray
    pair_order: List[Tuple[int, int]]
    #: Which per-path metric ``targets`` holds ("delay", "jitter" or "loss").
    target_name: str = "delay"
    #: The un-normalised values of the selected target metric.
    raw_targets: Optional[np.ndarray] = None
    #: Cumulative path boundaries of the merged scenarios, shape
    #: ``(num_merged_samples + 1,)`` starting at 0 and ending at ``num_paths``.
    #: ``None`` means the sample is a single, unmerged scenario.
    sample_path_offsets: Optional[np.ndarray] = None
    #: Memoised :class:`~repro.models.message_passing.MessagePassingIndex`,
    #: filled lazily by ``build_index`` so repeated forward passes over the
    #: same sample (e.g. one per epoch) do not rebuild the flat entry lists.
    _index_cache: Optional[object] = dataclasses.field(
        default=None, init=False, repr=False, compare=False)

    @property
    def num_paths(self) -> int:
        return self.path_features.shape[0]

    @property
    def num_links(self) -> int:
        return self.link_features.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]

    @property
    def max_path_length(self) -> int:
        return self.link_sequences.shape[1]

    @property
    def nbytes(self) -> int:
        """Total bytes of the sample's arrays (live-memory accounting).

        Used by the streaming pipeline's diagnostics to reason about how
        much tensorised data is resident; iterates the dataclass fields so
        future array fields are counted automatically.
        """
        total = 0
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, np.ndarray):
                total += value.nbytes
        return total

    @property
    def num_merged_samples(self) -> int:
        """How many scenarios this sample represents (1 unless merged)."""
        if self.sample_path_offsets is None:
            return 1
        return len(self.sample_path_offsets) - 1

    @property
    def path_offsets(self) -> np.ndarray:
        """Path boundaries per merged scenario (``[0, num_paths]`` if unmerged)."""
        if self.sample_path_offsets is None:
            return np.array([0, self.num_paths], dtype=np.int64)
        return np.asarray(self.sample_path_offsets, dtype=np.int64)

    def unmerge(self, values: Sequence) -> List:
        """Split a per-path sequence back into per-scenario chunks.

        ``values`` must have one entry per path (a prediction array, the
        targets, or ``pair_order`` itself); the result has one chunk per
        merged scenario, in merge order.
        """
        if len(values) != self.num_paths:
            raise ValueError(
                f"expected {self.num_paths} per-path values, got {len(values)}")
        offsets = self.path_offsets
        return [values[start:stop] for start, stop in zip(offsets[:-1], offsets[1:])]

    def __getstate__(self) -> dict:
        """Pickle without the memoised message-passing index.

        The index (and the scan plans hanging off it) is derived data a
        receiver can rebuild lazily; dropping it keeps the payload that the
        data-parallel trainer ships to worker processes small and free of
        anything but plain arrays.
        """
        state = dict(self.__dict__)
        state["_index_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def copy(self) -> "TensorizedSample":
        """Return a deep copy whose arrays share no memory with this sample.

        Iterates the dataclass fields so future fields are copied too; the
        memoised index cache (``init=False``) is deliberately not carried
        over — the copy owns fresh arrays and rebuilds its own index.
        """
        updates = {}
        for field in dataclasses.fields(self):
            if not field.init:
                continue
            value = getattr(self, field.name)
            if isinstance(value, np.ndarray):
                value = value.copy()
            elif isinstance(value, list):
                value = list(value)
            updates[field.name] = value
        return TensorizedSample(**updates)

    def validate(self) -> None:
        """Internal consistency checks (used by tests and property checks)."""
        if self.link_sequences.shape != self.node_sequences.shape:
            raise ValueError("link and node sequences must share a shape")
        if self.sequence_mask.shape != self.link_sequences.shape:
            raise ValueError("mask shape mismatch")
        if self.targets.shape != (self.num_paths,):
            raise ValueError("targets shape mismatch")
        if np.any(self.path_lengths < 1):
            raise ValueError("every path must have at least one hop")
        lengths_from_mask = self.sequence_mask.sum(axis=1).astype(int)
        if not np.array_equal(lengths_from_mask, self.path_lengths):
            raise ValueError("mask does not agree with path lengths")
        if self.link_sequences.max(initial=0) >= self.num_links:
            raise ValueError("link index out of range")
        if self.node_sequences.max(initial=0) >= self.num_nodes:
            raise ValueError("node index out of range")
        if self.sample_path_offsets is not None:
            offsets = np.asarray(self.sample_path_offsets)
            if offsets.ndim != 1 or len(offsets) < 2:
                raise ValueError("sample_path_offsets must be a 1-D boundary array")
            if offsets[0] != 0 or offsets[-1] != self.num_paths:
                raise ValueError("sample_path_offsets must span [0, num_paths]")
            if np.any(np.diff(offsets) <= 0):
                raise ValueError("sample_path_offsets must be strictly increasing")


def tensorize_sample(sample: Sample, normalizer: Optional[FeatureNormalizer] = None,
                     target: str = "delay", dtype: DTypeLike = None) -> TensorizedSample:
    """Build the dense arrays for one sample.

    When ``normalizer`` is ``None`` the raw physical values are used
    (useful for inspection); models should always receive normalised data.

    ``target`` selects the regression target: ``"delay"`` (default),
    ``"jitter"`` or ``"loss"`` — the sample must carry the requested metric.

    ``dtype`` selects the floating precision of the model-facing arrays
    (features, mask and normalised targets); ``None`` uses the
    :func:`repro.nn.tensor.get_default_dtype` default.  The raw
    (denormalised) measurement arrays always stay float64 so evaluation
    metrics are not quantised by a float32 training run.
    """
    if target not in ("delay", "jitter", "loss"):
        raise ValueError(f"unknown target '{target}'")
    dtype = resolve_dtype(dtype)
    topology = sample.topology
    routing = sample.routing
    pair_order = sample.pair_order

    capacities = np.array([spec.capacity for spec in topology.links()], dtype=np.float64)
    queue_sizes = np.array([topology.node_spec(n).queue_size for n in topology.nodes()],
                           dtype=np.float64)
    traffic = sample.traffic.as_vector(pair_order)
    delays = sample.delays.copy()
    if target == "delay":
        raw_targets = delays.copy()
    elif target == "jitter":
        if sample.jitters is None:
            raise ValueError("sample carries no jitter measurements")
        raw_targets = sample.jitters.copy()
    else:
        if sample.losses is None:
            raise ValueError("sample carries no loss measurements")
        raw_targets = sample.losses.copy()

    link_paths = routing.link_paths()
    node_paths = routing.node_paths()
    lengths = np.array([len(p) for p in link_paths], dtype=np.int64)
    max_len = int(lengths.max())
    num_paths = len(link_paths)

    link_sequences = np.zeros((num_paths, max_len), dtype=np.int64)
    node_sequences = np.zeros((num_paths, max_len), dtype=np.int64)
    mask = np.zeros((num_paths, max_len), dtype=dtype)
    for row, (links, nodes) in enumerate(zip(link_paths, node_paths)):
        length = len(links)
        link_sequences[row, :length] = links
        # The sending node of hop h is nodes[h]; its output queue is the one
        # the packet occupies before traversing links[h].
        node_sequences[row, :length] = nodes[:-1]
        mask[row, :length] = 1.0

    if normalizer is not None:
        link_features = normalizer.normalize("capacity", capacities)[:, None]
        node_features = normalizer.normalize("queue_size", queue_sizes)[:, None]
        path_features = normalizer.normalize("traffic", traffic)[:, None]
        targets = normalizer.normalize(target, raw_targets)
    else:
        link_features = capacities[:, None]
        node_features = queue_sizes[:, None]
        path_features = traffic[:, None]
        targets = raw_targets.copy()
    link_features = link_features.astype(dtype, copy=False)
    node_features = node_features.astype(dtype, copy=False)
    path_features = path_features.astype(dtype, copy=False)
    targets = targets.astype(dtype, copy=False)

    tensorized = TensorizedSample(
        link_features=link_features,
        node_features=node_features,
        path_features=path_features,
        link_sequences=link_sequences,
        node_sequences=node_sequences,
        sequence_mask=mask,
        path_lengths=lengths,
        targets=targets,
        raw_delays=delays,
        pair_order=pair_order,
        target_name=target,
        raw_targets=raw_targets,
    )
    tensorized.validate()
    return tensorized
