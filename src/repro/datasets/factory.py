"""Dataset factory: job-spec-driven, resumable, multi-process generation.

The monolithic ``DatasetGenerator.iter_samples`` loop generates one sample
at a time from one config — fine for benchmarks, hopeless for the
million-scenario sweeps the ROADMAP calls for now that the trainer is an
order of magnitude faster than the simulator feeding it.  This module
refactors generation into four layers:

**Job spec** — :class:`DatasetJobSpec` declares a sweep: topologies ×
:class:`~repro.datasets.generator.DatasetConfig` axes × a sample budget
per scenario.  :func:`expand_units` expands it *deterministically* into
shard-sized :class:`WorkUnit`\\ s.  Each unit draws from its own derived
RNG stream ``np.random.default_rng([job_seed, unit_index])``, so a unit's
output depends only on the spec and its index — never on which worker ran
it, in what order, or how many workers there were.  (This is the one
seed-semantics difference from the legacy serial loop, which threads a
single RNG through every sample.)

**Execution** — :func:`run_job` executes the pending units, either
in-process or on a farm of worker processes (the fork/spawn + pipe
protocol of :mod:`repro.nn.parallel`).  Every worker runs whole units end
to end and commits each as **one shard file** via
:func:`repro.datasets.sharded.write_shard` (temp + ``os.replace``), so a
killed run leaves only whole units on disk.

**Catalog** — the store's ``manifest.json`` is extended with a
``catalog`` block recording per-unit provenance: the generator config,
backend, scenario axes, seed path, simulator version, status and
measured generation cost.  The manifest is atomically rewritten after
every completed unit (the commit point), which is what makes runs
resumable: re-running the same spec with ``resume=True`` executes **only
missing or failed units** (incremental top-up), and
:func:`merge_catalogs` combines several runs into one trainable store.
The ``shards`` index lists completed units in unit order, so any
:class:`~repro.datasets.sharded.ShardedDatasetReader` — and therefore the
whole training stack — reads a factory store unchanged, with a
deterministic sample order regardless of worker count.

**CLI** — ``repro-net generate --workers N --resume`` drives
:func:`run_job` and ``repro-net status`` prints :func:`job_status`.

**Fault tolerance** — the farm is supervised (see :mod:`repro.supervision`):
a worker that dies or hangs past its task timeout is reaped and respawned,
and its unit is re-queued — safe because unit content is a pure function of
``[job_seed, unit_index]``.  A unit that keeps failing is retried up to
``max_retries`` extra times (every execution counts into the catalog's
per-unit ``attempts``) and then **quarantined**: its status and traceback
land in the catalog, the run completes and reports it instead of aborting.
Shard integrity is checked on resume — a committed shard whose bytes no
longer match its catalog SHA-256 is set aside as ``<shard>.corrupt`` and
its unit re-executed.  Concurrent ``resume`` runs over one store (e.g. a
shared filesystem farm) coordinate through atomic per-unit **claim files**
(``.claims/unit-NNNNNN.claim``, ``O_CREAT|O_EXCL``, stale claims taken
over by mtime age) and adopt each other's committed units at every
manifest commit, so no unit is ever executed twice concurrently.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import multiprocessing as mp
import os
import pickle
import shutil
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.generator import DatasetConfig, DatasetGenerator
from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.sharded import (
    MANIFEST_NAME,
    ShardedDatasetReader,
    _write_manifest,
    file_sha256,
    is_sharded_store,
    shard_extension,
    write_shard,
)
from repro.supervision import (
    RestartBudget,
    SupervisedWorker,
    SupervisionPolicy,
    WorkerDied,
)
from repro.testing.faults import fault_point, log_execution
from repro.topology.geant2 import geant2_topology
from repro.topology.generators import (
    grid_topology,
    linear_topology,
    random_topology,
    ring_topology,
    scale_free_topology,
    star_topology,
)
from repro.topology.graph import Topology
from repro.topology.nsfnet import nsfnet_topology
from repro.version import __version__

__all__ = [
    "DatasetJobSpec",
    "WorkUnit",
    "expand_units",
    "execute_unit",
    "run_job",
    "job_status",
    "format_job_status",
    "merge_catalogs",
    "resolve_topology",
]

#: Seed-path suffix reserved for deriving per-job random topologies.
#: Units seed from the two-element path ``[job_seed, unit_index]``
#: (SeedSequence entropy must be non-negative); the topology stream uses a
#: three-element path, which can never collide with any unit's.
_TOPOLOGY_SEED_SUFFIX = (0, 1)

_NAMED_TOPOLOGIES = {
    "geant2": geant2_topology,
    "nsfnet": nsfnet_topology,
}

#: Parametric families: ``"<family>:<size>"`` resolves via these builders.
_PARAMETRIC_TOPOLOGIES = {
    "ring": ring_topology,
    "linear": linear_topology,
    "star": star_topology,
    "scale_free": scale_free_topology,
}


def resolve_topology(name: str, job_seed: int = 0) -> Topology:
    """Build the topology a job-spec name refers to.

    ``"geant2"`` / ``"nsfnet"`` are the paper topologies; ``"ring:8"``,
    ``"linear:6"``, ``"star:5"`` and ``"scale_free:20"`` build parametric
    families; ``"random:12"`` draws a connected random topology from the
    job's dedicated RNG sub-stream, so it is identical for every unit of
    the job (and across worker counts) but varies with the job seed.
    """
    if name in _NAMED_TOPOLOGIES:
        return _NAMED_TOPOLOGIES[name]()
    family, _, parameter = name.partition(":")
    if parameter:
        try:
            size = int(parameter)
        except ValueError:
            raise ValueError(
                f"topology '{name}': size '{parameter}' is not an integer") from None
        if family == "random":
            return random_topology(
                size, rng=np.random.default_rng([job_seed, *_TOPOLOGY_SEED_SUFFIX]))
        if family in _PARAMETRIC_TOPOLOGIES:
            return _PARAMETRIC_TOPOLOGIES[family](size)
    known = sorted(_NAMED_TOPOLOGIES) + sorted(
        f"{f}:<n>" for f in list(_PARAMETRIC_TOPOLOGIES) + ["random"])
    raise ValueError(f"unknown topology '{name}' (known: {', '.join(known)})")


#: DatasetConfig fields a spec may sweep or pin; num_samples and seed are
#: owned by the expansion (unit size and derived streams respectively).
_CONFIG_FIELDS = tuple(
    f.name for f in dataclasses.fields(DatasetConfig)
    if f.name not in ("num_samples", "seed"))


@dataclasses.dataclass
class DatasetJobSpec:
    """A declarative sweep: topologies × DatasetConfig axes × a seed range.

    Attributes
    ----------
    topologies:
        Topology names resolvable by :func:`resolve_topology`.
    samples_per_scenario:
        Samples generated for every (topology × axes combination) scenario.
    unit_size:
        Samples per work unit — the granularity of scheduling, of atomic
        commit and of resume.  The last unit of a scenario may be smaller.
    seed:
        The job seed.  Unit ``k`` draws from
        ``np.random.default_rng([seed, k])``, so every unit's stream is
        independent of execution order and worker count.
    axes:
        Swept :class:`DatasetConfig` fields → list of values; the sweep is
        their cartesian product (in the declared order).
    base_config:
        Fixed :class:`DatasetConfig` overrides shared by every scenario
        (e.g. ``{"backend": "simulation"}``).
    payload:
        Shard encoding of the units, ``"binary"`` (format 3) or
        ``"jsonl"`` (format 2).
    """

    topologies: Sequence[str] = ("geant2",)
    samples_per_scenario: int = 100
    unit_size: int = 32
    seed: int = 0
    axes: Dict[str, Sequence] = dataclasses.field(default_factory=dict)
    base_config: Dict[str, object] = dataclasses.field(default_factory=dict)
    payload: str = "binary"

    def __post_init__(self) -> None:
        self.topologies = tuple(self.topologies)
        if not self.topologies:
            raise ValueError("topologies must name at least one topology")
        if self.samples_per_scenario < 1:
            raise ValueError("samples_per_scenario must be positive")
        if self.unit_size < 1:
            raise ValueError("unit_size must be at least 1")
        if self.payload not in ("binary", "jsonl"):
            raise ValueError(
                f"payload must be 'binary' or 'jsonl', got {self.payload!r}")
        for field_name, values in self.axes.items():
            if field_name not in _CONFIG_FIELDS:
                raise ValueError(
                    f"axis '{field_name}' is not a sweepable DatasetConfig "
                    f"field (choose from {', '.join(_CONFIG_FIELDS)})")
            if not list(values):
                raise ValueError(f"axis '{field_name}' has no values")
        for field_name in self.base_config:
            if field_name not in _CONFIG_FIELDS:
                raise ValueError(
                    f"base_config field '{field_name}' is not a DatasetConfig "
                    f"field (choose from {', '.join(_CONFIG_FIELDS)})")
        overlap = set(self.axes) & set(self.base_config)
        if overlap:
            raise ValueError(
                f"fields {sorted(overlap)} appear in both axes and base_config")

    # ------------------------------------------------------------------ #
    def scenarios(self) -> List[Tuple[str, Dict[str, object]]]:
        """Deterministic scenario list: (topology, axes values) pairs."""
        axis_names = list(self.axes)
        combos = list(itertools.product(*(self.axes[a] for a in axis_names)))
        return [(topology, dict(zip(axis_names, combo)))
                for topology in self.topologies
                for combo in combos]

    @property
    def num_units(self) -> int:
        per_scenario = -(-self.samples_per_scenario // self.unit_size)
        return per_scenario * len(self.scenarios())

    @property
    def total_samples(self) -> int:
        return self.samples_per_scenario * len(self.scenarios())

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "topologies": list(self.topologies),
            "samples_per_scenario": self.samples_per_scenario,
            "unit_size": self.unit_size,
            "seed": self.seed,
            "axes": {name: list(values) for name, values in self.axes.items()},
            "base_config": dict(self.base_config),
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DatasetJobSpec":
        return cls(**payload)

    def fingerprint(self) -> str:
        """Canonical identity of the sweep — what resume matches against."""
        return json.dumps(self.to_dict(), sort_keys=True)


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One independently executable slice of a job: ≤ ``unit_size`` samples
    of one scenario, with its own derived RNG stream."""

    index: int                  #: global unit index (the seed derivation key)
    topology: str
    axes: Dict[str, object]
    config: DatasetConfig       #: full per-unit generator config
    num_samples: int
    scenario_index: int
    sample_offset: int          #: offset of the first sample within the scenario

    @property
    def shard_name_stem(self) -> str:
        return f"unit-{self.index:06d}"


def expand_units(spec: DatasetJobSpec) -> List[WorkUnit]:
    """Deterministically expand a job spec into its work units.

    Unit indices enumerate scenarios in spec order and sample blocks within
    each scenario in offset order; the expansion depends only on the spec,
    so workers can re-derive it locally from the pickled spec and resume
    runs address units stably across processes and sessions.
    """
    units: List[WorkUnit] = []
    index = 0
    for scenario_index, (topology, axes) in enumerate(spec.scenarios()):
        offset = 0
        while offset < spec.samples_per_scenario:
            count = min(spec.unit_size, spec.samples_per_scenario - offset)
            config = DatasetConfig(num_samples=count, seed=spec.seed,
                                   **{**spec.base_config, **axes})
            units.append(WorkUnit(index=index, topology=topology,
                                  axes=dict(axes), config=config,
                                  num_samples=count,
                                  scenario_index=scenario_index,
                                  sample_offset=offset))
            offset += count
            index += 1
    return units


def execute_unit(spec: DatasetJobSpec, unit: WorkUnit, path: str) -> dict:
    """Generate one unit's samples and atomically commit its shard file.

    Returns the unit's provenance record for the catalog.  The unit's RNG
    stream ``default_rng([job_seed, unit_index])`` makes the shard's
    content a pure function of (spec, unit index) — bit-identical whether
    it runs in the parent, in any worker, or in a later resume.
    """
    started = time.perf_counter()
    log_execution("unit", unit_index=unit.index, pid=os.getpid())
    fault_point("factory.unit.start", unit_index=unit.index)
    rng = np.random.default_rng([spec.seed, unit.index])
    topology = resolve_topology(unit.topology, spec.seed)
    generator = DatasetGenerator(topology, unit.config)
    samples = []
    events_processed = 0
    sim_wall_seconds = 0.0
    for position in range(unit.num_samples):
        sample = generator.generate_one(rng)
        sample.metadata.update({
            "job_seed": spec.seed,
            "unit_index": unit.index,
            "unit_position": position,
            **unit.axes,
        })
        events_processed += int(sample.metadata.get("events_processed", 0))
        sim_wall_seconds += float(sample.metadata.get("sim_wall_seconds", 0.0))
        samples.append(sample)
    name = unit.shard_name_stem + shard_extension(spec.payload)
    record = write_shard(path, name, samples, payload=spec.payload)
    fault_point("factory.unit.committed", unit_index=unit.index,
                path=os.path.join(path, name))
    return {
        "shard": record["name"],
        "written_samples": record["num_samples"],
        "sha256": record["sha256"],
        "generation_seconds": time.perf_counter() - started,
        "events_processed": events_processed,
        "sim_wall_seconds": sim_wall_seconds,
    }


# ---------------------------------------------------------------------- #
# Catalog layer
# ---------------------------------------------------------------------- #

def _initial_unit_state(unit: WorkUnit) -> dict:
    return {
        "index": unit.index,
        "status": "pending",
        "topology": unit.topology,
        "axes": dict(unit.axes),
        "config": dataclasses.asdict(unit.config),
        "backend": unit.config.backend,
        "num_samples": unit.num_samples,
        "scenario_index": unit.scenario_index,
        "sample_offset": unit.sample_offset,
        "seed_path": [unit.config.seed, unit.index],
        "shard": None,
        "attempts": 0,  #: cumulative executions across all runs/resumes
    }


def _build_manifest(spec: DatasetJobSpec, units_state: List[dict],
                    normalizer: Optional[FeatureNormalizer] = None,
                    metadata: Optional[dict] = None) -> dict:
    """The store manifest: a plain sharded-store index (readable by any
    :class:`ShardedDatasetReader`, shards in unit order) plus the catalog."""
    done = [state for state in units_state if state["status"] == "done"]

    def shard_record(state: dict) -> dict:
        record = {"name": state["shard"],
                  "num_samples": state["written_samples"]}
        if state.get("sha256"):
            record["sha256"] = state["sha256"]
        return record

    return {
        "format_version": 3 if spec.payload == "binary" else 2,
        "payload": spec.payload,
        "metadata": dict(metadata) if metadata else {},
        "normalizer": normalizer.to_dict() if normalizer is not None else None,
        "total_samples": sum(state["written_samples"] for state in done),
        "shards": [shard_record(state) for state in done],
        "catalog": {
            "job": spec.to_dict(),
            "fingerprint": spec.fingerprint(),
            "simulator_version": __version__,
            "units": units_state,
        },
    }


def _read_manifest(path: str) -> dict:
    with open(os.path.join(path, MANIFEST_NAME), "r", encoding="utf-8") as handle:
        return json.load(handle)


def _load_units_state(spec: DatasetJobSpec, path: str,
                      resume: bool) -> Tuple[List[dict], Optional[dict]]:
    """Fresh or restored per-unit state for a run over ``path``.

    A unit counts as done only when the catalog says so *and* its shard
    file still exists *and* (when a checksum was recorded) the shard's
    bytes still hash to it — a shard that disappeared re-queues exactly
    that unit, and one that rotted on disk is set aside as
    ``<shard>.corrupt`` and re-queued with the corruption noted.  Units
    that were not done (pending / quarantined) come back as pending but
    keep their cumulative ``attempts`` and last error.  A store holding a
    different job's catalog, or a plain sharded store without one, is
    refused rather than silently clobbered.
    """
    units = expand_units(spec)
    fresh = [_initial_unit_state(unit) for unit in units]
    if not is_sharded_store(path):
        return fresh, None
    manifest = _read_manifest(path)
    catalog = manifest.get("catalog")
    if catalog is None:
        raise ValueError(
            f"'{path}' holds a sharded store without a factory catalog; "
            "refusing to overwrite it (pick a new output directory)")
    if catalog.get("fingerprint") != spec.fingerprint():
        raise ValueError(
            f"'{path}' was generated from a different job spec; re-run with "
            "the original spec to top it up, or pick a new output directory")
    if not resume:
        raise ValueError(
            f"'{path}' already holds this job's catalog; pass resume=True "
            "(CLI --resume) to execute only its missing units")
    recorded = {state["index"]: state for state in catalog.get("units", [])}
    restored = []
    for state in fresh:
        previous = recorded.get(state["index"])
        if previous is None:
            restored.append(state)
            continue
        state["attempts"] = int(previous.get("attempts", 0))
        if previous.get("status") == "done" and previous.get("shard"):
            shard_path = os.path.join(path, previous["shard"])
            if os.path.isfile(shard_path):
                expected = previous.get("sha256")
                if expected is None or file_sha256(shard_path) == expected:
                    restored.append(previous)
                    continue
                # Silent corruption: set the bytes aside for post mortem
                # (no manifest will ever reference the .corrupt name, so
                # readers never touch it), then re-queue the unit.
                os.replace(shard_path, shard_path + ".corrupt")
                state["error"] = (
                    f"shard '{previous['shard']}' failed checksum "
                    f"verification on resume (expected sha256 {expected}); "
                    "the corrupt bytes were set aside as "
                    f"'{previous['shard']}.corrupt' and the unit re-queued")
        elif previous.get("error"):
            state["error"] = previous["error"]
        restored.append(state)
    return restored, manifest


def _mark_done(state: dict, record: dict) -> None:
    state.update(record)
    state["status"] = "done"
    state.pop("error", None)


def _mark_quarantined(state: dict, error: str) -> None:
    """A unit that exhausted its retries: recorded, skipped, reported."""
    state["status"] = "quarantined"
    state["error"] = error
    state["shard"] = None


# ---------------------------------------------------------------------- #
# Claim layer — multi-process / multi-host mutual exclusion per unit
# ---------------------------------------------------------------------- #

_CLAIMS_DIR = ".claims"


def _claim_file(path: str, index: int) -> str:
    return os.path.join(path, _CLAIMS_DIR, f"unit-{index:06d}.claim")


def _try_claim_unit(path: str, index: int, ttl: float) -> bool:
    """Atomically claim unit ``index`` for this process.

    The claim is an ``O_CREAT|O_EXCL`` file — on any POSIX filesystem
    (NFS included, for this flag combination) exactly one creator wins,
    which is what lets concurrent ``resume`` runs on a shared store divide
    the pending units without ever executing one twice.  A claim older
    than ``ttl`` seconds (by mtime) belongs to a presumed-dead run and is
    taken over.  Returns False when another live run holds the unit.
    """
    claim = _claim_file(path, index)
    os.makedirs(os.path.dirname(claim), exist_ok=True)
    for _ in range(2):
        try:
            fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - os.path.getmtime(claim)
            except OSError:
                continue  # holder released between EXCL and stat; retry
            if age <= ttl:
                return False
            try:  # stale: the holder died without releasing; take over
                os.remove(claim)
            except OSError:
                pass
            continue
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump({"pid": os.getpid(), "time": time.time()}, handle)
        return True
    return False


def _release_claim(path: str, index: int) -> None:
    try:
        os.remove(_claim_file(path, index))
    except OSError:
        pass


def _commit_lock_file(path: str) -> str:
    return os.path.join(path, _CLAIMS_DIR, "manifest.lock")


def _acquire_commit_lock(path: str, stale: float = 30.0) -> None:
    """Serialise manifest commits across concurrent resume runs.

    A commit is a read-modify-write of ``manifest.json`` (adopt the
    latest on-disk state, then rewrite the whole file); two unserialised
    commits can interleave so the later write erases the earlier one's
    freshly committed unit — after which the earlier run's released
    claim no longer protects it and a competitor re-executes it.  The
    lock is held only for the few milliseconds of the adopt+write cycle;
    a lock older than ``stale`` seconds belongs to a dead run and is
    broken.
    """
    lock = _commit_lock_file(path)
    os.makedirs(os.path.dirname(lock), exist_ok=True)
    while True:
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - os.path.getmtime(lock)
            except OSError:
                continue  # released between EXCL and stat; retry at once
            if age > stale:
                try:
                    os.remove(lock)
                except OSError:
                    pass
                continue
            time.sleep(0.005)
            continue
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        return


def _release_commit_lock(path: str) -> None:
    try:
        os.remove(_commit_lock_file(path))
    except OSError:
        pass


# ---------------------------------------------------------------------- #
# Execution layer
# ---------------------------------------------------------------------- #

def _factory_worker_main(conn, payload: bytes) -> None:
    """Worker loop: re-derive the unit list from the pickled spec, then
    execute whole units on request.

    Protocol (parent → worker): ``("unit", index)`` or ``("close",)``;
    replies ``("done", index, record)`` / ``("failed", index, traceback)``.
    The worker writes its shard itself — only the small provenance record
    travels back over the pipe.
    """
    try:
        spec, path = pickle.loads(payload)
        units = expand_units(spec)
    except Exception:  # noqa: BLE001 - report instead of dying mute
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ready",))
    try:
        while True:
            message = conn.recv()
            if message[0] == "unit":
                index = message[1]
                try:
                    record = execute_unit(spec, units[index], path)
                    conn.send(("done", index, record))
                except Exception:  # noqa: BLE001 - ship the traceback
                    conn.send(("failed", index, traceback.format_exc()))
            elif message[0] == "close":
                break
            else:
                conn.send(("error", f"unknown message kind {message[0]!r}"))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _run_units_parallel(spec: DatasetJobSpec, path: str, pending: List[int],
                        states: Dict[int, dict], workers: int,
                        commit: Callable[[], None],
                        progress: Optional[Callable[[int, int, int], None]],
                        start_method: Optional[str],
                        policy: SupervisionPolicy,
                        budget: RestartBudget,
                        try_take: Callable[[int], bool],
                        finish: Callable[[int], None],
                        handle_failure: Callable[[int, str], bool]) -> None:
    """Farm pending units out to supervised workers, dynamically scheduled.

    Units are handed out one at a time as workers free up (units can have
    very different costs — simulation duration and topology size are sweep
    axes), and the manifest is committed after every completed unit so an
    interrupted run keeps everything already finished.

    Supervision: a worker that dies or blows its per-unit deadline is
    reaped and respawned (spending ``budget``) and its unit goes through
    ``handle_failure`` — re-queued at the front (the replacement's RNG
    stream makes the rerun bit-identical) or quarantined once its retries
    are spent.  ``try_take(index)`` is the dispatch gate (claim files +
    adopted-progress check); ``finish(index)`` runs on success or
    quarantine (claim release).
    """
    if start_method is None:
        available = mp.get_all_start_methods()
        start_method = "fork" if "fork" in available else "spawn"
    context = mp.get_context(start_method)
    payload = pickle.dumps((spec, path))
    count = min(workers, len(pending))

    def spawn(rank: int):
        parent_conn, child_conn = context.Pipe()
        process = context.Process(target=_factory_worker_main,
                                  args=(child_conn, payload), daemon=True)
        process.start()
        child_conn.close()
        try:
            reply = parent_conn.recv()
        except (EOFError, OSError) as error:
            raise RuntimeError(
                f"factory worker {rank} died during start-up "
                f"({error!r})") from error
        if reply[0] == "error":
            raise RuntimeError(
                f"factory worker {rank} failed to start:\n{reply[1]}")
        return process, parent_conn

    queue = list(pending)
    done_count = 0
    total = len(pending)
    farm: List[SupervisedWorker] = []
    #: rank -> (unit index, absolute deadline or None)
    in_flight: Dict[int, Tuple[int, Optional[float]]] = {}

    def dispatch(worker: SupervisedWorker) -> None:
        """Hand the worker its next dispatchable unit, if any."""
        while queue:
            index = queue.pop(0)
            if not try_take(index):
                continue
            while True:
                try:
                    worker.send(("unit", index))
                    break
                except WorkerDied as error:
                    budget.spend(str(error))
                    worker.respawn()
            in_flight[worker.rank] = (index, policy.deadline())
            return

    def recover(rank: int, reason: str) -> None:
        """Respawn a dead/hung worker; route its unit through retry."""
        index, _ = in_flight.pop(rank)
        budget.spend(reason)
        farm[rank].respawn()  # reaps first — a hung process is killed
        if handle_failure(index, reason):
            queue.insert(0, index)  # retry promptly (claim is still held)
        dispatch(farm[rank])

    try:
        farm = [SupervisedWorker(rank, spawn) for rank in range(count)]
        for worker in farm:
            dispatch(worker)
        while in_flight:
            by_conn = {farm[rank].conn: rank for rank in in_flight}
            ready = mp.connection.wait(list(by_conn),
                                       timeout=policy.poll_interval)
            for conn in ready:
                rank = by_conn[conn]
                worker = farm[rank]
                index, _ = in_flight[rank]
                try:
                    reply = conn.recv()
                except (EOFError, OSError) as error:
                    recover(rank, f"factory worker {rank} died while "
                                  f"generating unit {index} ({error!r})")
                    continue
                in_flight.pop(rank)
                kind = reply[0]
                if kind == "done":
                    _mark_done(states[reply[1]], reply[2])
                    done_count += 1
                    # Commit, then release the claim (see the serial path).
                    commit()
                    finish(reply[1])
                    if progress is not None:
                        progress(reply[1], done_count, total)
                elif kind == "failed":
                    if handle_failure(reply[1], reply[2]):
                        queue.insert(0, reply[1])
                else:
                    raise RuntimeError(f"unexpected worker reply {kind!r}")
                dispatch(worker)
            now = time.monotonic()
            for rank in list(in_flight):
                index, deadline = in_flight[rank]
                if farm[rank].is_dead():
                    recover(rank, f"factory worker {rank} (exit code "
                                  f"{farm[rank].process.exitcode}) died while "
                                  f"generating unit {index}")
                elif deadline is not None and now > deadline:
                    recover(rank, f"factory worker {rank} exceeded the task "
                                  f"timeout on unit {index} and is presumed "
                                  "hung")
    finally:
        for worker in farm:
            worker.close(farewell=("close",))


def run_job(spec: DatasetJobSpec, path: str, workers: int = 1,
            resume: bool = False, limit: Optional[int] = None,
            progress: Optional[Callable[[int, int, int], None]] = None,
            fit_normalizer: bool = True,
            metadata: Optional[dict] = None,
            start_method: Optional[str] = None,
            max_retries: int = 2,
            task_timeout: Optional[float] = None,
            max_restarts: Optional[int] = None,
            claim_ttl: float = 3600.0) -> dict:
    """Execute a job spec's pending units into the store at ``path``.

    Parameters
    ----------
    workers:
        Worker processes; 1 executes units in-process (identical output —
        unit content never depends on the execution engine).
    resume:
        Continue a store already holding this job's catalog: only units
        that are missing, quarantined, whose shard file has disappeared,
        or whose shard fails its checksum are executed.  Without it, an
        existing catalog is refused.
    limit:
        Execute at most this many units this invocation (budgeted top-up);
        the rest stay pending for a later ``resume`` run.
    progress:
        ``progress(unit_index, completed_this_run, scheduled_this_run)``
        after every unit commits.
    fit_normalizer:
        When the job completes, fit a :class:`FeatureNormalizer` by
        streaming the finished store and record it in the manifest.
    max_retries:
        Extra executions a failing unit gets (crash, hang or exception)
        before it is quarantined.  Every execution counts into the unit's
        cumulative catalog ``attempts``.
    task_timeout:
        Seconds one unit may run on a worker before the worker is presumed
        hung, killed and respawned (``None`` disables).
    max_restarts:
        Worker respawns this run may spend before giving up (default 8).
    claim_ttl:
        Seconds after which another run's unit claim counts as stale and
        is taken over (its holder presumed dead).

    Returns :func:`job_status` of the store.  A run with quarantined units
    **completes** (their errors are in the catalog and the status report;
    the CLI exits non-zero); only unrecoverable farm errors raise — after
    flushing the catalog, so the store is always resumable from its last
    committed unit.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    policy = SupervisionPolicy(
        task_timeout=task_timeout, max_retries=max_retries,
        max_restarts=8 if max_restarts is None else max_restarts)
    os.makedirs(path, exist_ok=True)
    units_state, previous_manifest = _load_units_state(spec, path, resume)
    states = {state["index"]: state for state in units_state}
    previous_metadata = (previous_manifest or {}).get("metadata") or {}
    manifest_metadata = {**previous_metadata, **(metadata or {})}
    held_claims: set = set()

    def adopt_external_progress() -> None:
        """Fold units committed by a concurrent run into our state.

        Two resumes sharing one store each rewrite the whole manifest;
        without adoption, each rewrite would erase the other's finished
        units.  Claims guarantee a unit we hold is never concurrently
        done elsewhere, so adoption only ever fills in units we skipped.
        """
        if not is_sharded_store(path):
            return
        try:
            manifest = _read_manifest(path)
        except (OSError, json.JSONDecodeError):  # pragma: no cover - race
            return
        for record in (manifest.get("catalog") or {}).get("units", []):
            state = states.get(record.get("index"))
            if (state is None or state["status"] == "done"
                    or record.get("index") in held_claims):
                continue
            if (record.get("status") == "done" and record.get("shard")
                    and os.path.isfile(os.path.join(path, record["shard"]))):
                state.clear()
                state.update(record)

    def commit(normalizer: Optional[FeatureNormalizer] = None) -> None:
        # Adopt-then-write must be atomic with respect to other runs'
        # commits, or the write clobbers records they committed since our
        # read (see _acquire_commit_lock).
        _acquire_commit_lock(path)
        try:
            adopt_external_progress()
            _write_manifest(path, _build_manifest(spec, units_state,
                                                  normalizer=normalizer,
                                                  metadata=manifest_metadata))
        finally:
            _release_commit_lock(path)

    def try_take(index: int) -> bool:
        """Dispatch gate: claim the unit and re-check it is still needed."""
        if states[index]["status"] == "done":
            return False
        if index not in held_claims:
            if not _try_claim_unit(path, index, claim_ttl):
                return False  # another live run is generating it right now
            # The claim may have been released by a run that *finished* the
            # unit; adopt before re-executing it pointlessly (and, worse,
            # racing a reader of its committed shard).  The unit must not
            # be in held_claims yet — adoption skips held units (they are
            # ours to execute), and here done-ness is the very thing being
            # re-checked.
            adopt_external_progress()
            if states[index]["status"] == "done":
                _release_claim(path, index)
                return False
            held_claims.add(index)
        states[index]["attempts"] = int(states[index].get("attempts", 0)) + 1
        attempts_this_run[index] = attempts_this_run.get(index, 0) + 1
        return True

    def finish(index: int) -> None:
        if index in held_claims:
            held_claims.discard(index)
            _release_claim(path, index)

    def handle_failure(index: int, error: str) -> bool:
        """Retry (True) or quarantine (False) a failed execution."""
        if attempts_this_run.get(index, 0) <= policy.max_retries:
            states[index]["error"] = error
            commit()
            return True
        _mark_quarantined(states[index], error)
        commit()
        finish(index)
        return False

    attempts_this_run: Dict[int, int] = {}
    pending = [state["index"] for state in units_state
               if state["status"] != "done"]
    if limit is not None:
        if limit < 0:
            raise ValueError("limit must be non-negative")
        pending = pending[:limit]

    try:
        # Commit the full unit plan up front so `status` sees pending units
        # (and an interrupted first run is already resumable).
        commit()
        if workers == 1:
            units = expand_units(spec)
            total = len(pending)
            done_count = 0
            queue = list(pending)
            while queue:
                index = queue.pop(0)
                if not try_take(index):
                    continue
                try:
                    record = execute_unit(spec, units[index], path)
                except KeyboardInterrupt:
                    raise
                except Exception:  # noqa: BLE001 - retry, then quarantine
                    if handle_failure(index, traceback.format_exc()):
                        queue.insert(0, index)
                    continue
                _mark_done(states[index], record)
                done_count += 1
                # Commit before releasing the claim: once the claim is gone
                # a concurrent resume may take the unit, and only the
                # committed manifest tells it the work is already done.
                commit()
                finish(index)
                if progress is not None:
                    progress(index, done_count, total)
        else:
            _run_units_parallel(spec, path, pending, states, workers, commit,
                                progress, start_method, policy,
                                RestartBudget(policy.max_restarts),
                                try_take, finish, handle_failure)
    except BaseException:
        # Unrecoverable (restart budget, spawn failure, interrupt): flush
        # what finished so the crashed run resumes from its last commit.
        try:
            commit()
        except Exception:  # noqa: BLE001 - the original error matters more
            pass
        raise
    finally:
        for index in list(held_claims):
            finish(index)

    complete = all(state["status"] == "done" for state in units_state)
    if complete and fit_normalizer:
        normalizer = FeatureNormalizer().fit(ShardedDatasetReader(path))
        commit(normalizer=normalizer)
    return job_status(path)


# ---------------------------------------------------------------------- #
# Status and merge
# ---------------------------------------------------------------------- #

def job_status(path: str) -> dict:
    """Per-unit progress of a factory store: done/pending/quarantined
    counts, cumulative execution attempts, sample totals and aggregate
    generation cost.  ``failed_units`` is kept as a legacy alias of
    ``quarantined_units``."""
    if not is_sharded_store(path):
        raise FileNotFoundError(f"no sharded dataset store at '{path}'")
    manifest = _read_manifest(path)
    catalog = manifest.get("catalog")
    if catalog is None:
        raise ValueError(f"'{path}' is a sharded store without a factory catalog")
    units = catalog.get("units", [])
    by_status: Dict[str, List[int]] = {"done": [], "pending": [],
                                       "quarantined": [], "failed": []}
    for state in units:
        by_status.setdefault(state.get("status", "pending"), []).append(state["index"])
    # Pre-quarantine catalogs recorded exhausted units as "failed".
    quarantined = by_status["quarantined"] + by_status["failed"]
    done = [state for state in units if state.get("status") == "done"]
    return {
        "path": path,
        "total_units": len(units),
        "done_units": len(by_status["done"]),
        "pending_units": len(by_status["pending"]),
        "quarantined_units": quarantined,
        "failed_units": quarantined,
        "total_attempts": sum(int(state.get("attempts", 0)) for state in units),
        "complete": len(by_status["done"]) == len(units) and bool(units),
        "samples_written": sum(state.get("written_samples", 0) for state in done),
        "total_samples_planned": sum(state.get("num_samples", 0) for state in units),
        "generation_seconds": sum(state.get("generation_seconds", 0.0)
                                  for state in done),
        "events_processed": sum(state.get("events_processed", 0) for state in done),
        "simulator_version": catalog.get("simulator_version"),
        "has_normalizer": manifest.get("normalizer") is not None,
        "job": catalog.get("job", {}),
    }


def format_job_status(status: dict) -> str:
    """Human-readable ``repro-net status`` report."""
    lines = [
        f"factory store       : {status['path']}",
        f"units done/total    : {status['done_units']}/{status['total_units']}"
        + (" (complete)" if status["complete"] else ""),
        f"samples written     : {status['samples_written']}"
        f"/{status['total_samples_planned']}",
        f"generation seconds  : {status['generation_seconds']:.2f}",
        f"normalizer attached : {'yes' if status['has_normalizer'] else 'no'}",
    ]
    if status["events_processed"]:
        rate = status["events_processed"] / max(status["generation_seconds"], 1e-9)
        lines.insert(4, f"simulator events    : {status['events_processed']} "
                        f"({rate:.0f} events/sec)")
    attempts = status.get("total_attempts", 0)
    if attempts > status["done_units"]:
        retries = attempts - status["done_units"]
        lines.append(f"execution attempts  : {attempts} "
                     f"({retries} beyond one per finished unit)")
    if status["quarantined_units"]:
        lines.append(f"QUARANTINED units   : {status['quarantined_units']} "
                     "(tracebacks recorded in the catalog; re-run with "
                     "--resume to retry them)")
    if status["pending_units"]:
        lines.append(f"pending units       : {status['pending_units']} "
                     "(re-run with --resume to top up)")
    return "\n".join(lines)


def merge_catalogs(sources: Sequence[str], output: str,
                   fit_normalizer: bool = True) -> dict:
    """Merge several factory stores into one trainable store.

    Every source's *done* units are copied into ``output`` under fresh
    sequential unit names; their catalog records are preserved verbatim
    (plus ``source`` / ``source_index`` provenance), so the merged catalog
    still tells exactly which job, seed path and config produced every
    shard.  Sources may mix payload encodings — the reader dispatches its
    decoder per shard file — but **not** simulator versions: mixing
    samples produced by different generator/simulator code would silently
    poison the merged store's provenance, so mismatched
    ``simulator_version`` values are refused with an error naming each
    source's version.  Returns the merged store's :func:`job_status`.
    """
    if not sources:
        raise ValueError("at least one source store is required")
    if is_sharded_store(output):
        raise ValueError(
            f"'{output}' already holds a store; merge into a fresh directory")
    os.makedirs(output, exist_ok=True)
    merged_units: List[dict] = []
    shards: List[dict] = []
    jobs = []
    payloads = set()
    versions = set()
    source_versions: List[Tuple[str, object]] = []
    for source in sources:
        if not is_sharded_store(source):
            raise FileNotFoundError(f"no sharded dataset store at '{source}'")
        manifest = _read_manifest(source)
        catalog = manifest.get("catalog")
        if catalog is None:
            raise ValueError(
                f"'{source}' is a sharded store without a factory catalog; "
                "only factory stores carry the provenance a merge preserves")
        payloads.add(manifest.get("payload"))
        versions.add(catalog.get("simulator_version"))
        if len(versions) > 1:
            raise ValueError(
                "refusing to merge catalogs with mismatched simulator "
                "versions — the merged store's provenance would silently "
                "mix generator code: "
                + ", ".join(f"'{src}' → {ver}" for src, ver in source_versions
                            + [(source, catalog.get("simulator_version"))])
                + "; regenerate the outdated store(s) first")
        source_versions.append((source, catalog.get("simulator_version")))
        jobs.append({"source": source, "job": catalog.get("job", {}),
                     "fingerprint": catalog.get("fingerprint")})
        for state in catalog.get("units", []):
            if state.get("status") != "done" or not state.get("shard"):
                continue
            extension = state["shard"][state["shard"].index("."):]
            new_index = len(merged_units)
            new_name = f"unit-{new_index:06d}{extension}"
            shutil.copyfile(os.path.join(source, state["shard"]),
                            os.path.join(output, new_name + ".tmp"))
            os.replace(os.path.join(output, new_name + ".tmp"),
                       os.path.join(output, new_name))
            merged = dict(state)
            merged.update({"index": new_index, "shard": new_name,
                           "source": source, "source_index": state["index"]})
            merged_units.append(merged)
            shard = {"name": new_name,
                     "num_samples": state["written_samples"]}
            if state.get("sha256"):  # the copy has the same bytes
                shard["sha256"] = state["sha256"]
            shards.append(shard)
    if not merged_units:
        raise ValueError("no completed units found in the source stores")
    payload = payloads.pop() if len(payloads) == 1 else "mixed"
    manifest = {
        "format_version": 2 if payload == "jsonl" else 3,
        "payload": payload,
        "metadata": {"merged_from": [job["source"] for job in jobs]},
        "normalizer": None,
        "total_samples": sum(shard["num_samples"] for shard in shards),
        "shards": shards,
        "catalog": {
            "job": {"merged_from": jobs},
            "fingerprint": None,
            "simulator_version": versions.pop(),
            "units": merged_units,
        },
    }
    _write_manifest(output, manifest)
    if fit_normalizer:
        manifest["normalizer"] = FeatureNormalizer().fit(
            ShardedDatasetReader(output)).to_dict()
        _write_manifest(output, manifest)
    return job_status(output)
