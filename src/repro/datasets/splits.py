"""Deterministic train/validation/test splitting of sample lists."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.datasets.sample import Sample

__all__ = ["train_val_test_split"]


def train_val_test_split(samples: Sequence[Sample], train_fraction: float = 0.7,
                         val_fraction: float = 0.15, seed: int = 0,
                         ) -> Tuple[List[Sample], List[Sample], List[Sample]]:
    """Shuffle and split samples into train/validation/test lists.

    The three fractions must satisfy ``0 < train``, ``0 <= val`` and
    ``train + val < 1``; the remainder becomes the test set.  With fewer
    samples than strictly needed the split still guarantees a non-empty
    training set.
    """
    samples = list(samples)
    if not samples:
        raise ValueError("cannot split an empty dataset")
    if train_fraction <= 0 or val_fraction < 0 or train_fraction + val_fraction >= 1.0:
        raise ValueError("fractions must satisfy 0 < train, 0 <= val, train + val < 1")

    order = np.random.default_rng(seed).permutation(len(samples))
    shuffled = [samples[i] for i in order]
    num_train = max(1, int(round(train_fraction * len(shuffled))))
    num_val = int(round(val_fraction * len(shuffled)))
    num_train = min(num_train, len(shuffled))
    num_val = min(num_val, len(shuffled) - num_train)
    train = shuffled[:num_train]
    val = shuffled[num_train:num_train + num_val]
    test = shuffled[num_train + num_val:]
    return train, val, test
