"""Dataset substrate: samples, generators, tensorisation and storage.

A :class:`~repro.datasets.sample.Sample` bundles one simulated scenario —
topology (with per-node queue sizes), routing scheme, traffic matrix — with
the measured per-path performance (delay, jitter, loss).  Two generators
produce samples:

* :class:`~repro.datasets.simulation.SimulationGroundTruth` runs the
  packet-level simulator (the OMNeT++ substitute) — accurate but slow.
* :class:`~repro.datasets.analytic.AnalyticGroundTruth` evaluates a
  fixed-point M/M/1/K queueing network with measurement noise — fast enough
  to produce the training volumes the benchmarks need.

:mod:`repro.datasets.tensorize` converts samples into the index/feature
arrays the RouteNet models consume, and :mod:`repro.datasets.storage`
persists datasets to disk — either as one gzipped JSON blob (format 1) or
as a :mod:`sharded <repro.datasets.sharded>` store of gzipped JSONL shards
(format 2) that :mod:`repro.datasets.prefetch` streams batches out of for
out-of-core training.
"""

from repro.datasets.sample import Sample
from repro.datasets.analytic import AnalyticGroundTruth
from repro.datasets.simulation import SimulationGroundTruth
from repro.datasets.generator import DatasetConfig, DatasetGenerator, generate_dataset
from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.tensorize import TensorizedSample, tensorize_sample
from repro.datasets.batching import bucket_order, make_batches, merge_tensorized_samples
from repro.datasets.splits import train_val_test_split
from repro.datasets.storage import load_dataset, save_dataset
from repro.datasets.sharded import (
    ShardedDatasetReader,
    ShardedDatasetWriter,
    attach_normalizer,
    is_sharded_store,
)
from repro.datasets.factory import (
    DatasetJobSpec,
    WorkUnit,
    expand_units,
    execute_unit,
    job_status,
    merge_catalogs,
    run_job,
)
from repro.datasets.prefetch import BatchPrefetcher, iter_window_batches

__all__ = [
    "Sample",
    "AnalyticGroundTruth",
    "SimulationGroundTruth",
    "DatasetConfig",
    "DatasetGenerator",
    "generate_dataset",
    "FeatureNormalizer",
    "TensorizedSample",
    "tensorize_sample",
    "bucket_order",
    "make_batches",
    "merge_tensorized_samples",
    "train_val_test_split",
    "save_dataset",
    "load_dataset",
    "ShardedDatasetReader",
    "ShardedDatasetWriter",
    "attach_normalizer",
    "is_sharded_store",
    "BatchPrefetcher",
    "iter_window_batches",
    "DatasetJobSpec",
    "WorkUnit",
    "expand_units",
    "execute_unit",
    "run_job",
    "job_status",
    "merge_catalogs",
]
