"""The :class:`Sample`: one scenario plus its measured per-path performance."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.routing.scheme import RoutingScheme
from repro.topology.graph import Topology
from repro.topology.io import topology_from_dict, topology_to_dict
from repro.traffic.matrix import TrafficMatrix

__all__ = ["Sample"]


@dataclasses.dataclass
class Sample:
    """One dataset entry.

    Attributes
    ----------
    topology:
        The topology, including per-node queue sizes (the node feature).
    routing:
        The routing scheme whose pairs define the order of the target arrays.
    traffic:
        The end-to-end traffic matrix.
    delays:
        Per-pair average delay in seconds, in :meth:`RoutingScheme.pairs` order.
    jitters, losses:
        Optional per-pair jitter (seconds) and loss ratio, same order.
    metadata:
        Free-form information about how the sample was generated.
    """

    topology: Topology
    routing: RoutingScheme
    traffic: TrafficMatrix
    delays: np.ndarray
    jitters: Optional[np.ndarray] = None
    losses: Optional[np.ndarray] = None
    metadata: Dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.delays = np.asarray(self.delays, dtype=np.float64)
        if self.delays.shape != (self.routing.num_paths,):
            raise ValueError(
                f"expected {self.routing.num_paths} delays, got shape {self.delays.shape}")
        if np.any(~np.isfinite(self.delays)) or np.any(self.delays < 0):
            raise ValueError("delays must be finite and non-negative")
        for name in ("jitters", "losses"):
            value = getattr(self, name)
            if value is not None:
                value = np.asarray(value, dtype=np.float64)
                if value.shape != self.delays.shape:
                    raise ValueError(f"{name} must match the delay vector shape")
                setattr(self, name, value)

    # ------------------------------------------------------------------ #
    @property
    def pair_order(self) -> List[Tuple[int, int]]:
        """The (source, destination) order of every per-path array."""
        return self.routing.pairs()

    @property
    def num_paths(self) -> int:
        return self.routing.num_paths

    def delay(self, source: int, destination: int) -> float:
        """Delay of one pair in seconds."""
        return float(self.delays[self.pair_order.index((source, destination))])

    def queue_sizes(self) -> Dict[int, int]:
        """Per-node queue sizes of the scenario."""
        return self.topology.queue_sizes()

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """JSON-serialisable representation (used by dataset storage)."""
        payload = {
            "topology": topology_to_dict(self.topology),
            "routing": self.routing.to_dict(),
            "traffic": self.traffic.to_dict(),
            "delays": self.delays.tolist(),
            "metadata": dict(self.metadata),
        }
        if self.jitters is not None:
            payload["jitters"] = self.jitters.tolist()
        if self.losses is not None:
            payload["losses"] = self.losses.tolist()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "Sample":
        """Rebuild a sample from :meth:`to_dict` output."""
        topology = topology_from_dict(payload["topology"])
        routing = RoutingScheme.from_dict(topology, payload["routing"])
        traffic = TrafficMatrix.from_dict(payload["traffic"])
        return cls(
            topology=topology,
            routing=routing,
            traffic=traffic,
            delays=np.asarray(payload["delays"]),
            jitters=np.asarray(payload["jitters"]) if "jitters" in payload else None,
            losses=np.asarray(payload["losses"]) if "losses" in payload else None,
            metadata=payload.get("metadata", {}),
        )

    def __repr__(self) -> str:
        return (f"Sample(topology='{self.topology.name}', paths={self.num_paths}, "
                f"mean_delay={self.delays.mean():.4g}s)")
