"""Test-support utilities shipped with the package.

The only resident so far is :mod:`repro.testing.faults`, the
deterministic fault-injection harness used by the resilience test suite
(and available for manual chaos runs via ``REPRO_FAULTS``).
"""

from repro.testing import faults

__all__ = ["faults"]
