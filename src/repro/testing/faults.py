"""Deterministic fault injection for the worker farms.

Every recovery path in the resilience layer (worker death, hangs, failing
units, corrupted shard bytes) must be exercised by tests, not by hope.
This module plants named **fault points** in production code; each is a
single cheap call

    fault_point("factory.unit.start", unit_index=unit.index)

that does nothing unless a **fault plan** is active.  Plans are injected
two ways:

* ``REPRO_FAULTS`` — a JSON list of fault specs in the environment, so
  faults survive into worker *subprocesses* (both fork and spawn start
  methods) and into CLI invocations under test.
* :func:`install_plan` — direct in-process installation for unit tests.

A fault spec is a dict::

    {"site": "factory.unit.start",      # fault-point name (required)
     "kind": "die",                     # die | hang | delay | fail | corrupt
     "match": {"unit_index": 4},        # fire only when these coords match
     "once": true,                      # fire at most once per fault *id*
     "id": "kill-unit-4",               # marker name for once-semantics
     "seconds": 0.2}                    # delay/hang duration (delay only)

Kinds:

``die``
    ``os._exit(86)`` — an abrupt SIGKILL-like death (no cleanup, no
    exception propagation), the closest portable stand-in for the OOM
    killer.
``hang``
    Sleep far beyond any sane task timeout (the supervisor must detect
    and kill the process; the sleep only bounds runaway tests).
``delay``
    Sleep ``seconds`` then continue — used to force real execution
    overlap in concurrency tests.
``fail``
    Raise :class:`InjectedFault` — an ordinary task failure that the
    retry/quarantine machinery must handle.
``corrupt``
    Flip bytes in the file named by the fault point's ``path`` coordinate
    — artifact-integrity tests use this to damage a committed shard.

``once`` semantics must hold **across processes and respawns** (a fault
that kills every worker that ever touches unit 4 makes recovery
impossible by construction, which is a different test).  They are
implemented as ``O_CREAT|O_EXCL`` marker files in ``REPRO_FAULT_DIR``;
whichever process creates the marker fires the fault, everyone else
skips it.  Plans containing a ``once`` spec therefore require
``REPRO_FAULT_DIR`` to be set when installed via the environment.

Separately, ``REPRO_FAULT_EXEC_LOG`` names a file to which
:func:`log_execution` appends one line per call (``O_APPEND`` writes of
one short line are atomic on POSIX) — concurrency tests use it to prove
each work unit was executed exactly once across competing processes.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "InjectedFault",
    "fault_point",
    "install_plan",
    "active_plan",
    "log_execution",
    "HANG_SECONDS",
]

ENV_PLAN = "REPRO_FAULTS"
ENV_MARKER_DIR = "REPRO_FAULT_DIR"
ENV_EXEC_LOG = "REPRO_FAULT_EXEC_LOG"

# Upper bound on a "hang": long enough that any sane task timeout fires
# first, short enough that a misconfigured test cannot wedge CI forever.
HANG_SECONDS = 120.0

_VALID_KINDS = ("die", "hang", "delay", "fail", "corrupt")

# None = not yet loaded from the environment; [] = loaded, no faults.
_plan: Optional[List[Dict[str, Any]]] = None
_plan_from_env: Optional[str] = None


class InjectedFault(RuntimeError):
    """The exception raised by ``kind: fail`` fault specs."""


def _validate(spec: Dict[str, Any]) -> Dict[str, Any]:
    if not isinstance(spec, dict):
        raise ValueError(f"fault spec must be a dict, got {type(spec).__name__}")
    site = spec.get("site")
    if not site or not isinstance(site, str):
        raise ValueError(f"fault spec needs a 'site' string: {spec!r}")
    kind = spec.get("kind")
    if kind not in _VALID_KINDS:
        raise ValueError(
            f"fault spec 'kind' must be one of {_VALID_KINDS}, got {kind!r}")
    match = spec.get("match", {})
    if not isinstance(match, dict):
        raise ValueError(f"fault spec 'match' must be a dict: {spec!r}")
    if spec.get("once") and not spec.get("id"):
        raise ValueError(
            f"fault spec with 'once' needs an 'id' for its marker: {spec!r}")
    return spec


def install_plan(specs: Optional[List[Dict[str, Any]]]) -> None:
    """Install a fault plan in-process (``None`` clears it).

    Unit-test hook; production processes pick plans up from
    ``REPRO_FAULTS`` instead.  Installed plans take precedence over the
    environment until cleared.
    """
    global _plan, _plan_from_env
    if specs is None:
        _plan = None
        _plan_from_env = None
        return
    _plan = [_validate(dict(s) if isinstance(s, dict) else s) for s in specs]
    _plan_from_env = None


def active_plan() -> List[Dict[str, Any]]:
    """The current fault plan (env plans are parsed lazily and cached)."""
    global _plan, _plan_from_env
    raw = os.environ.get(ENV_PLAN)
    if _plan is not None and (_plan_from_env is None or _plan_from_env == raw):
        return _plan
    if not raw:
        _plan = None
        _plan_from_env = None
        return []
    try:
        specs = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ValueError(f"{ENV_PLAN} is not valid JSON: {error}") from error
    if not isinstance(specs, list):
        raise ValueError(f"{ENV_PLAN} must be a JSON list of fault specs")
    plan = [_validate(s) for s in specs]
    if any(s.get("once") for s in plan) and not os.environ.get(ENV_MARKER_DIR):
        raise ValueError(
            f"{ENV_PLAN} contains 'once' faults but {ENV_MARKER_DIR} is not "
            "set — once-markers need a shared directory to survive respawns")
    _plan = plan
    _plan_from_env = raw
    return _plan


def _claim_once_marker(fault_id: str) -> bool:
    """Atomically claim the right to fire a once-fault (cross-process)."""
    directory = os.environ.get(ENV_MARKER_DIR)
    if not directory:
        raise ValueError(
            f"fault {fault_id!r} has once-semantics but {ENV_MARKER_DIR} "
            "is not set")
    os.makedirs(directory, exist_ok=True)
    marker = os.path.join(directory, f"fired-{fault_id}")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(f"pid={os.getpid()} time={time.time():.3f}\n")
    return True


def _matches(spec: Dict[str, Any], coords: Dict[str, Any]) -> bool:
    return all(coords.get(key) == value
               for key, value in spec.get("match", {}).items())


def _corrupt_file(path: str) -> None:
    """Flip a handful of payload bytes in ``path`` (keeps the size)."""
    with open(path, "r+b") as handle:
        data = handle.read()
        if not data:
            raise ValueError(f"cannot corrupt empty file: {path}")
        blob = bytearray(data)
        # Damage the middle of the file: headers at either end may be
        # validated before the checksum gets its chance, and the point of
        # the integrity tests is that the *checksum* catches silent rot.
        start = len(blob) // 2
        for offset in range(start, min(start + 8, len(blob))):
            blob[offset] ^= 0xFF
        handle.seek(0)
        handle.write(bytes(blob))


def fault_point(site: str, **coords: Any) -> None:
    """Declare a named fault point; fire any matching active faults.

    No-op (one dict lookup) when no plan is active — safe to leave in
    production code paths.
    """
    plan = active_plan()
    if not plan:
        return
    for spec in plan:
        if spec["site"] != site or not _matches(spec, coords):
            continue
        if spec.get("once") and not _claim_once_marker(spec["id"]):
            continue
        kind = spec["kind"]
        if kind == "die":
            os._exit(86)
        elif kind == "hang":
            time.sleep(float(spec.get("seconds", HANG_SECONDS)))
        elif kind == "delay":
            time.sleep(float(spec.get("seconds", 0.1)))
        elif kind == "fail":
            raise InjectedFault(
                f"injected failure at {site} ({coords!r})")
        elif kind == "corrupt":
            path = coords.get("path")
            if not path:
                raise ValueError(
                    f"corrupt fault at {site} needs a 'path' coordinate")
            _corrupt_file(str(path))


def log_execution(event: str, **coords: Any) -> None:
    """Append one line to ``REPRO_FAULT_EXEC_LOG`` (if set).

    Single short ``O_APPEND`` writes are atomic on POSIX, so competing
    processes can share one log; tests read it back to count how many
    times each piece of work actually executed.
    """
    path = os.environ.get(ENV_EXEC_LOG)
    if not path:
        return
    parts = [event] + [f"{key}={coords[key]}" for key in sorted(coords)]
    line = (" ".join(parts) + "\n").encode("utf-8")
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)
