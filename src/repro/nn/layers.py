"""Feed-forward layers: dense, dropout, layer normalisation, embeddings."""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.initializers import glorot_uniform, ones_init, zeros_init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor

__all__ = ["Dense", "Sequential", "Dropout", "LayerNorm", "Embedding", "MLP", "get_activation"]

def identity(x: Tensor) -> Tensor:
    """The linear / no-op activation.

    A named module-level function (rather than a lambda) so modules that
    store their resolved activation — and therefore whole models — stay
    picklable, which the multiprocess data-parallel trainer relies on to
    ship replicas to worker processes.
    """
    return x


_ACTIVATIONS: dict = {
    None: identity,
    "linear": identity,
    "relu": F.relu,
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "softplus": F.softplus,
    "selu": F.selu,
    "elu": F.elu,
    "leaky_relu": F.leaky_relu,
}


def get_activation(name_or_fn) -> Callable[[Tensor], Tensor]:
    """Resolve an activation by name or pass a callable through unchanged."""
    if callable(name_or_fn):
        return name_or_fn
    if name_or_fn in _ACTIVATIONS:
        return _ACTIVATIONS[name_or_fn]
    raise ValueError(f"unknown activation '{name_or_fn}'; available: {sorted(k for k in _ACTIVATIONS if k)}")


class Dense(Module):
    """Fully connected layer ``y = activation(x W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation=None,
        use_bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.activation = get_activation(activation)
        self.use_bias = use_bias
        self.weight = Parameter(glorot_uniform((in_features, out_features), rng=rng), name="weight")
        if use_bias:
            self.bias = Parameter(zeros_init((out_features,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Dense expected last dimension {self.in_features}, got {x.shape[-1]}"
            )
        out = x.matmul(self.weight)
        if self.use_bias:
            out = out + self.bias
        return self.activation(out)

    def __repr__(self) -> str:
        return f"Dense(in={self.in_features}, out={self.out_features})"


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, layers: Iterable[Module]) -> None:
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(self.layers):
            self.register_module(f"layer{index}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class MLP(Sequential):
    """Multi-layer perceptron defined by a list of hidden sizes.

    This is the shape of RouteNet's readout function: a stack of dense layers
    with a chosen hidden activation and a (typically linear or softplus)
    output activation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        out_features: int,
        hidden_activation="relu",
        output_activation=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        sizes = [in_features] + list(hidden_sizes)
        layers = [
            Dense(sizes[i], sizes[i + 1], activation=hidden_activation, rng=rng)
            for i in range(len(sizes) - 1)
        ]
        layers.append(Dense(sizes[-1], out_features, activation=output_activation, rng=rng))
        super().__init__(layers)
        self.in_features = in_features
        self.out_features = out_features


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, rng=self._rng, training=self.training)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, features: int, epsilon: float = 1e-5) -> None:
        super().__init__()
        self.features = features
        self.epsilon = epsilon
        self.gain = Parameter(ones_init((features,)), name="gain")
        self.bias = Parameter(zeros_init((features,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered ** 2).mean(axis=-1, keepdims=True)
        normalised = centered / ((variance + self.epsilon) ** 0.5)
        return normalised * self.gain + self.bias


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("num_embeddings and embedding_dim must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        generator = rng if rng is not None else np.random.default_rng()
        self.weight = Parameter(generator.normal(0.0, 0.05, size=(num_embeddings, embedding_dim)),
                                name="weight")

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight.gather(indices)
