"""Loss functions for regression targets (per-path delay / jitter)."""

from __future__ import annotations

from repro.nn.tensor import Tensor, as_tensor, where

__all__ = ["mse_loss", "mae_loss", "huber_loss", "mape_loss", "log_mse_loss"]


def _validate(predictions: Tensor, targets: Tensor) -> None:
    if predictions.shape != targets.shape:
        raise ValueError(
            f"predictions shape {predictions.shape} does not match targets shape {targets.shape}"
        )


def mse_loss(predictions, targets) -> Tensor:
    """Mean squared error."""
    predictions, targets = as_tensor(predictions), as_tensor(targets)
    _validate(predictions, targets)
    return ((predictions - targets) ** 2).mean()


def mae_loss(predictions, targets) -> Tensor:
    """Mean absolute error."""
    predictions, targets = as_tensor(predictions), as_tensor(targets)
    _validate(predictions, targets)
    return (predictions - targets).abs().mean()


def huber_loss(predictions, targets, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear beyond ``delta``."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    predictions, targets = as_tensor(predictions), as_tensor(targets)
    _validate(predictions, targets)
    error = predictions - targets
    abs_error = error.abs()
    quadratic = 0.5 * (error ** 2)
    linear = delta * abs_error - 0.5 * delta ** 2
    return where(abs_error.data <= delta, quadratic, linear).mean()


def mape_loss(predictions, targets, epsilon: float = 1e-8) -> Tensor:
    """Mean absolute percentage error (differentiable w.r.t. predictions)."""
    predictions, targets = as_tensor(predictions), as_tensor(targets)
    _validate(predictions, targets)
    return ((predictions - targets).abs() / (targets.abs() + epsilon)).mean()


def log_mse_loss(predictions, targets, epsilon: float = 1e-8) -> Tensor:
    """Mean squared error between ``log`` of predictions and targets.

    Useful when delays span orders of magnitude; both arguments must be
    positive (they are clipped at ``epsilon``).
    """
    predictions, targets = as_tensor(predictions), as_tensor(targets)
    _validate(predictions, targets)
    return ((predictions.clip(min_value=epsilon).log()
             - targets.clip(min_value=epsilon).log()) ** 2).mean()
