"""Reverse-mode automatic differentiation over NumPy arrays.

The :class:`Tensor` class wraps a :class:`numpy.ndarray` and records the
operations applied to it in a dynamic computation graph.  Calling
:meth:`Tensor.backward` on a scalar result propagates gradients to every
tensor created with ``requires_grad=True``.

Only the operations required by the RouteNet family of models (and their
tests) are implemented, but each one supports full NumPy broadcasting and is
verified against finite differences in the test-suite.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]
DTypeLike = Union[str, type, np.dtype, None]

_GRAD_ENABLED = True

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))
_DEFAULT_DTYPE = np.dtype(np.float64)


def resolve_dtype(dtype: DTypeLike = None) -> np.dtype:
    """Map a dtype spec ("float32", np.float64, None, ...) to a NumPy dtype.

    ``None`` resolves to the current module default (see
    :func:`set_default_dtype`).  Only float32 and float64 are accepted: the
    autograd substrate stores states and gradients in one of those two
    precisions.
    """
    if dtype is None:
        return _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _FLOAT_DTYPES:
        raise ValueError(f"unsupported dtype {dtype!r}: expected float32 or float64")
    return resolved


def get_default_dtype() -> np.dtype:
    """The dtype new tensors take when none is given (float64 unless changed)."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype: DTypeLike) -> None:
    """Set the process-wide default floating dtype for tensor creation."""
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolve_dtype(dtype)


@contextlib.contextmanager
def default_dtype(dtype: DTypeLike):
    """Context manager that temporarily switches the default dtype::

        with nn.default_dtype("float32"):
            model = ExtendedRouteNet(config)   # float32 parameters
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolve_dtype(dtype)
    try:
        yield
    finally:
        _DEFAULT_DTYPE = previous


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking.

    Use it for inference-only code paths to avoid building the autograd
    graph::

        with nn.no_grad():
            predictions = model(sample)
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _GRAD_ENABLED


def _as_array(value: ArrayLike, dtype: DTypeLike = None) -> np.ndarray:
    if isinstance(value, Tensor):
        if dtype is None:
            return value.data
        # An explicit dtype must win even for Tensor inputs (construction
        # from a Tensor detaches anyway; use Tensor.astype for a
        # differentiable cast).
        return value.data.astype(resolve_dtype(dtype), copy=False)
    if dtype is None:
        # Arrays and NumPy scalars (e.g. reduction results) already in a
        # supported float precision keep it; everything else (lists, Python
        # scalars, integer arrays) takes the module default.
        if isinstance(value, (np.ndarray, np.generic)) and value.dtype in _FLOAT_DTYPES:
            return np.asarray(value)
        return np.asarray(value, dtype=_DEFAULT_DTYPE)
    return np.asarray(value, dtype=resolve_dtype(dtype))


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over the leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class GradientBufferPool:
    """Reusable scratch arrays for backward-pass temporaries.

    The masked RNN scan and the gather/segment-sum aggregations need a
    same-shaped scratch array at every time step of the backward pass.  The
    pool hands the same buffers back out step after step instead of letting
    every step allocate (and the allocator free) fresh full-size arrays —
    the dominant allocation churn of backward on large merged batches.

    The pool is active only while a :meth:`Tensor.backward` call is running
    and is drained when it returns, so no memory is retained between
    optimisation steps.  ``hits``/``misses`` count reuses vs fresh
    allocations across the process (for benchmarks and tests).
    """

    __slots__ = ("_free", "active", "hits", "misses")

    def __init__(self) -> None:
        self._free: dict = {}
        self.active = False
        self.hits = 0
        self.misses = 0

    def activate(self) -> None:
        self.active = True

    def release(self) -> None:
        self.active = False
        self._free.clear()

    def take(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Return an uninitialised scratch array of the requested shape/dtype."""
        key = (shape, np.dtype(dtype).str)
        stack = self._free.get(key)
        if stack:
            self.hits += 1
            return stack.pop()
        self.misses += 1
        return np.empty(shape, dtype=dtype)

    def give(self, buffer: np.ndarray) -> None:
        """Hand a scratch array back for reuse (no-op when the pool is idle)."""
        if not self.active:
            return
        key = (buffer.shape, buffer.dtype.str)
        self._free.setdefault(key, []).append(buffer)


_GRAD_BUFFER_POOL = GradientBufferPool()


def grad_buffer_pool_stats() -> dict:
    """Cumulative ``{"hits", "misses"}`` of the backward scratch-buffer pool."""
    return {"hits": _GRAD_BUFFER_POOL.hits, "misses": _GRAD_BUFFER_POOL.misses}


def reset_grad_buffer_pool_stats() -> None:
    """Zero the pool counters (used by benchmarks measuring one backward)."""
    _GRAD_BUFFER_POOL.hits = 0
    _GRAD_BUFFER_POOL.misses = 0


def _is_basic_index(key) -> bool:
    """True when ``key`` is basic NumPy indexing (ints/slices/ellipsis only).

    Basic indexing selects every element at most once, so gradients can be
    scattered with ``+=`` instead of the much slower ``np.add.at`` that
    advanced (integer/boolean array) indexing needs for repeated indices.
    """
    items = key if isinstance(key, tuple) else (key,)
    return all(isinstance(item, (int, np.integer, slice, type(Ellipsis), type(None)))
               for item in items)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    __array_priority__ = 200  # ensure ndarray op Tensor dispatches to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
        dtype: DTypeLike = None,
    ) -> None:
        self.data = _as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = tuple(_parents) if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        elif self.grad.shape == np.shape(grad):
            # The buffer is owned by this tensor (created by the copy above),
            # so adding in place avoids a full-size temporary per contribution
            # — the dominant cost of backward on large merged batches.
            self.grad += grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` which is only valid for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"grad shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        # Topological sort of the graph reachable from ``self``.
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        # Scratch buffers requested by fused backward nodes are pooled for
        # the duration of this call and dropped afterwards.
        pool = _GRAD_BUFFER_POOL
        owns_pool = not pool.active
        if owns_pool:
            pool.activate()
        try:
            self._accumulate(grad)
            for node in reversed(order):
                if node._backward is None or node.grad is None:
                    continue
                node._backward(node.grad)
        finally:
            if owns_pool:
                pool.release()

    def astype(self, dtype: DTypeLike) -> "Tensor":
        """Differentiable cast; the gradient is cast back to this dtype."""
        target = resolve_dtype(dtype)
        if target == self.data.dtype:
            return self
        out_data = self.data.astype(target)
        source = self.data.dtype

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.astype(source))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = _coerce_like(other, self)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_coerce_like(other, self))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _coerce_like(other, self) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = _coerce_like(other, self)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = _coerce_like(other, self)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            other_t._accumulate(
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape)
            )

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _coerce_like(other, self) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * (self.data ** (exponent - 1)))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix multiplication (2-D by 2-D, or batched via NumPy rules)."""
        other_t = _coerce_like(other, self)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    grad_self = np.outer(grad, other_t.data) if self.data.ndim == 2 else grad * other_t.data
                else:
                    grad_self = grad @ np.swapaxes(other_t.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.outer(self.data, grad) if other_t.data.ndim == 2 else grad * self.data
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other_t._accumulate(_unbroadcast(grad_other, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_expanded = grad
            if axis is not None and not keepdims:
                grad_expanded = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad_expanded, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_expanded = grad
            out_expanded = out_data
            if axis is not None and not keepdims:
                grad_expanded = np.expand_dims(grad, axis=axis)
                out_expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == out_expanded).astype(self.data.dtype)
            # Split the gradient evenly among ties, matching TF behaviour.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * grad_expanded / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Element-wise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable sigmoid: only exponentiates non-positive values
        # (exp(-|x|) ≤ 1), so no overflow at either precision.
        decay = np.exp(-np.abs(self.data))
        out_data = np.where(self.data >= 0, 1.0 / (1.0 + decay), decay / (1.0 + decay))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0))

        return Tensor._make(out_data, (self,), backward)

    def softplus(self) -> "Tensor":
        # log(1 + exp(x)) computed stably.
        out_data = np.logaddexp(0.0, self.data)

        def backward(grad: np.ndarray) -> None:
            decay = np.exp(-np.abs(self.data))
            sig = np.where(self.data >= 0, 1.0 / (1.0 + decay), decay / (1.0 + decay))
            self._accumulate(grad * sig)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, min_value: Optional[float] = None, max_value: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, min_value, max_value)

        def backward(grad: np.ndarray) -> None:
            mask = np.ones_like(self.data)
            if min_value is not None:
                mask = mask * (self.data >= min_value)
            if max_value is not None:
                mask = mask * (self.data <= max_value)
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis=axis)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes=axes)

        def backward(grad: np.ndarray) -> None:
            if axes is None:
                self._accumulate(np.transpose(grad))
            else:
                inverse = np.argsort(axes)
                self._accumulate(np.transpose(grad, axes=inverse))

        return Tensor._make(out_data, (self,), backward)

    def _scatter_accumulate(self, key, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad[key]`` without a full temporary.

        Indexing nodes only touch the selected entries, so scattering straight
        into the (owned) gradient buffer keeps their backward cost proportional
        to the slice, not to the whole tensor — crucial for the per-step slices
        of the RNN scan over large merged batches.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        if _is_basic_index(key):
            # Basic indexing selects each element at most once.
            self.grad[key] += grad
        else:
            np.add.at(self.grad, key, grad)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            self._scatter_accumulate(key, grad)

        return Tensor._make(out_data, (self,), backward)

    def gather(self, indices: np.ndarray) -> "Tensor":
        """Gather rows: ``out[i, ...] = self[indices[i], ...]``.

        ``indices`` may have any shape; the result has shape
        ``indices.shape + self.shape[1:]``.  The backward pass scatter-adds
        gradients back into the source rows, which makes this the building
        block for RouteNet's message passing.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            self._scatter_accumulate(indices, grad)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Comparisons (no gradient)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)


# ---------------------------------------------------------------------- #
# Free functions
# ---------------------------------------------------------------------- #
def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already a tensor)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _coerce_like(value: ArrayLike, reference: Tensor) -> Tensor:
    """Coerce an operand to a tensor, giving dtype-less values the peer's dtype.

    Python scalars, lists and integer arrays take ``reference``'s dtype so a
    float32 graph is not silently promoted to float64 by a literal like
    ``1.0 - gate`` (NumPy treats the wrapped 0-d array as a strong dtype).
    Arrays that already carry a float32/float64 dtype are respected.
    """
    if isinstance(value, Tensor):
        return value
    if isinstance(value, np.ndarray) and value.dtype in _FLOAT_DTYPES:
        return Tensor(value)
    return Tensor(np.asarray(value, dtype=reference.data.dtype))


def tensor(value: ArrayLike, requires_grad: bool = False, dtype: DTypeLike = None) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(value, requires_grad=requires_grad, dtype=dtype)


def zeros(shape, requires_grad: bool = False, dtype: DTypeLike = None) -> Tensor:
    """Create a tensor of zeros."""
    return Tensor(np.zeros(shape, dtype=resolve_dtype(dtype)), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False, dtype: DTypeLike = None) -> Tensor:
    """Create a tensor of ones."""
    return Tensor(np.ones(shape, dtype=resolve_dtype(dtype)), requires_grad=requires_grad)


def randn(shape, scale: float = 1.0, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False, dtype: DTypeLike = None) -> Tensor:
    """Create a tensor of Gaussian noise with standard deviation ``scale``."""
    generator = rng if rng is not None else np.random.default_rng()
    noise = generator.normal(0.0, scale, size=shape).astype(resolve_dtype(dtype), copy=False)
    return Tensor(noise, requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensor_list = [as_tensor(t) for t in tensors]
    arrays = [t.data for t in tensor_list]
    out_data = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensor_list, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensor_list), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensor_list = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensor_list], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensor_list), axis=axis)
        for t, piece in zip(tensor_list, pieces):
            t._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensor_list), backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Element-wise selection ``condition ? a : b`` (condition not differentiated)."""
    condition = np.asarray(condition, dtype=bool)
    a_t, b_t = as_tensor(a), as_tensor(b)
    out_data = np.where(condition, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        a_t._accumulate(_unbroadcast(grad * condition, a_t.shape))
        b_t._accumulate(_unbroadcast(grad * (~condition), b_t.shape))

    return Tensor._make(out_data, (a_t, b_t), backward)


def masked_where(row_mask: np.ndarray, new: ArrayLike, old: ArrayLike) -> Tensor:
    """Fused per-row select: ``out[i] = new[i] if row_mask[i] else old[i]``.

    Semantically identical to ``where(row_mask[:, None], new, old)`` for
    same-shape operands, but implemented as a single autograd node: the
    backward pass splits the incoming gradient between ``new`` and ``old``
    inside one scratch array drawn from the per-backward buffer pool,
    instead of materialising two fresh full-size temporaries per call.
    This is the masked state update of the RNN scan, executed once per time
    step — on long merged sequences the pooled buffer is reused across all
    steps of the backward sweep.
    """
    new_t, old_t = as_tensor(new), as_tensor(old)
    if new_t.shape != old_t.shape:
        raise ValueError(
            f"masked_where requires same-shape operands, got {new_t.shape} and {old_t.shape}")
    row_mask = np.asarray(row_mask)
    if row_mask.dtype != np.bool_:
        row_mask = row_mask > 0
    if row_mask.shape != (new_t.shape[0],):
        raise ValueError(
            f"row_mask must have shape ({new_t.shape[0]},), got {row_mask.shape}")
    condition = row_mask.reshape((-1,) + (1,) * (new_t.ndim - 1))
    out_data = np.where(condition, new_t.data, old_t.data)

    def backward(grad: np.ndarray) -> None:
        # One pooled scratch holds grad*mask, then is rewritten in place to
        # grad*(1-mask); _accumulate copies/adds it, never retains it.
        buffer = _GRAD_BUFFER_POOL.take(grad.shape, grad.dtype)
        if new_t.requires_grad:
            np.multiply(grad, condition, out=buffer)
            new_t._accumulate(buffer)
        if old_t.requires_grad:
            np.multiply(grad, ~condition, out=buffer)
            old_t._accumulate(buffer)
        _GRAD_BUFFER_POOL.give(buffer)

    return Tensor._make(out_data, (new_t, old_t), backward)


def gather_segment_sum(data: Tensor, item_index, segment_ids: np.ndarray,
                       num_segments: int) -> Tensor:
    """Fused ``segment_sum(data[item_index], segment_ids, num_segments)``.

    The message-passing aggregations first gather one row per (path, hop)
    entry and then segment-sum the rows per link/node.  Fusing both into a
    single node removes the intermediate ``(num_entries, dim)`` tensor from
    the autograd graph (its data *and* its gradient buffer); the backward
    pass gathers the out-gradient rows into a pooled scratch array and
    scatters them straight into ``data.grad`` in one pass.

    ``item_index`` is any NumPy index selecting rows of ``data`` — a 1-D
    integer array or a tuple of such arrays for multi-axis selection.
    """
    data_t = as_tensor(data)
    if isinstance(item_index, tuple):
        key = tuple(np.asarray(axis_index, dtype=np.int64) for axis_index in item_index)
    else:
        key = np.asarray(item_index, dtype=np.int64)
    selected = data_t.data[key]
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1 or segment_ids.shape[0] != selected.shape[0]:
        raise ValueError("segment_ids must be 1-D with one id per selected row")
    if segment_ids.size and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise ValueError("segment id out of range")
    out_data = np.zeros((num_segments,) + selected.shape[1:], dtype=data_t.dtype)
    np.add.at(out_data, segment_ids, selected)

    def backward(grad: np.ndarray) -> None:
        if not data_t.requires_grad:
            return
        if data_t.grad is None:
            data_t.grad = np.zeros_like(data_t.data)
        entry_shape = (segment_ids.shape[0],) + grad.shape[1:]
        buffer = _GRAD_BUFFER_POOL.take(entry_shape, grad.dtype)
        np.take(grad, segment_ids, axis=0, out=buffer)
        np.add.at(data_t.grad, key, buffer)
        _GRAD_BUFFER_POOL.give(buffer)

    return Tensor._make(out_data, (data_t,), backward)


def make_multi_output(outputs_data: Sequence[np.ndarray], parents: Sequence[Tensor],
                      backward: Callable[[Tuple[Optional[np.ndarray], ...]], None]
                      ) -> List[Tensor]:
    """Create sibling output tensors that share one joint backward function.

    Fused nodes like the checkpointed RNN scan produce several outputs (the
    aggregated messages *and* the final state) whose backward pass must run
    once, with the gradients of every output in hand.  The tape engine calls
    one ``_backward`` per tensor, so the joint node is expressed through a
    hidden scalar *anchor*: each output is a child of the anchor and merely
    stashes its incoming gradient; the anchor — topologically ordered after
    every output and before every parent — then invokes ``backward`` with the
    tuple of stashed gradients (``None`` for outputs the loss never reached).

    ``backward`` is responsible for accumulating into the parents itself
    (e.g. via :meth:`Tensor._accumulate` / :meth:`Tensor._scatter_accumulate`);
    the parents are declared only so ordering and ``requires_grad`` propagate
    correctly.  When gradients are globally disabled or no parent requires
    them, plain detached tensors are returned and ``backward`` is dropped.
    """
    parent_tensors = tuple(as_tensor(p) for p in parents)
    requires = _GRAD_ENABLED and any(p.requires_grad for p in parent_tensors)
    if not requires:
        return [Tensor(data) for data in outputs_data]

    stashed: List[Optional[np.ndarray]] = [None] * len(outputs_data)
    anchor_dtype = np.asarray(outputs_data[0]).dtype

    def anchor_backward(_grad: np.ndarray) -> None:
        backward(tuple(stashed))

    anchor = Tensor(np.zeros((), dtype=anchor_dtype), requires_grad=True,
                    _parents=parent_tensors, _backward=anchor_backward)

    outputs: List[Tensor] = []
    for position, data in enumerate(outputs_data):
        def stash(grad: np.ndarray, position: int = position) -> None:
            stashed[position] = grad
            # Poke the anchor so the engine fires ``anchor_backward`` even
            # though no numerical gradient flows through it.
            anchor._accumulate(np.zeros((), dtype=anchor_dtype))

        outputs.append(Tensor(data, requires_grad=True, _parents=(anchor,),
                              _backward=stash))
    return outputs


def segment_sum(data: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``data`` into ``num_segments`` buckets.

    ``out[s] = sum_i data[i] for segment_ids[i] == s``.  This mirrors
    ``tf.math.unsorted_segment_sum`` and is the aggregation primitive used by
    the RouteNet message passing (links/nodes aggregate the states of the
    paths that traverse them).
    """
    data_t = as_tensor(data)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1 or segment_ids.shape[0] != data_t.shape[0]:
        raise ValueError("segment_ids must be 1-D with one id per row of data")
    if segment_ids.size and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise ValueError("segment id out of range")
    out_shape = (num_segments,) + data_t.shape[1:]
    out_data = np.zeros(out_shape, dtype=data_t.dtype)
    np.add.at(out_data, segment_ids, data_t.data)

    def backward(grad: np.ndarray) -> None:
        data_t._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (data_t,), backward)


def segment_mean(data: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Average rows of ``data`` per segment (empty segments yield zeros)."""
    data_t = as_tensor(data)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(data_t.dtype)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (data_t.ndim - 1))
    return segment_sum(data_t, segment_ids, num_segments) / counts
