"""Reverse-mode automatic differentiation over NumPy arrays.

The :class:`Tensor` class wraps a :class:`numpy.ndarray` and records the
operations applied to it in a dynamic computation graph.  Calling
:meth:`Tensor.backward` on a scalar result propagates gradients to every
tensor created with ``requires_grad=True``.

Only the operations required by the RouteNet family of models (and their
tests) are implemented, but each one supports full NumPy broadcasting and is
verified against finite differences in the test-suite.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking.

    Use it for inference-only code paths to avoid building the autograd
    graph::

        with nn.no_grad():
            predictions = model(sample)
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _GRAD_ENABLED


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over the leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _is_basic_index(key) -> bool:
    """True when ``key`` is basic NumPy indexing (ints/slices/ellipsis only).

    Basic indexing selects every element at most once, so gradients can be
    scattered with ``+=`` instead of the much slower ``np.add.at`` that
    advanced (integer/boolean array) indexing needs for repeated indices.
    """
    items = key if isinstance(key, tuple) else (key,)
    return all(isinstance(item, (int, np.integer, slice, type(Ellipsis), type(None)))
               for item in items)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    __array_priority__ = 200  # ensure ndarray op Tensor dispatches to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = tuple(_parents) if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        elif self.grad.shape == np.shape(grad):
            # The buffer is owned by this tensor (created by the copy above),
            # so adding in place avoids a full-size temporary per contribution
            # — the dominant cost of backward on large merged batches.
            self.grad += grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` which is only valid for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"grad shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        # Topological sort of the graph reachable from ``self``.
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            other_t._accumulate(
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape)
            )

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * (self.data ** (exponent - 1)))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix multiplication (2-D by 2-D, or batched via NumPy rules)."""
        other_t = as_tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    grad_self = np.outer(grad, other_t.data) if self.data.ndim == 2 else grad * other_t.data
                else:
                    grad_self = grad @ np.swapaxes(other_t.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.outer(self.data, grad) if other_t.data.ndim == 2 else grad * self.data
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other_t._accumulate(_unbroadcast(grad_other, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_expanded = grad
            if axis is not None and not keepdims:
                grad_expanded = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad_expanded, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_expanded = grad
            out_expanded = out_data
            if axis is not None and not keepdims:
                grad_expanded = np.expand_dims(grad, axis=axis)
                out_expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == out_expanded).astype(self.data.dtype)
            # Split the gradient evenly among ties, matching TF behaviour.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * grad_expanded / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Element-wise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable sigmoid.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-self.data)),
            np.exp(self.data) / (1.0 + np.exp(self.data)),
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0))

        return Tensor._make(out_data, (self,), backward)

    def softplus(self) -> "Tensor":
        # log(1 + exp(x)) computed stably.
        out_data = np.logaddexp(0.0, self.data)

        def backward(grad: np.ndarray) -> None:
            sig = np.where(
                self.data >= 0,
                1.0 / (1.0 + np.exp(-self.data)),
                np.exp(self.data) / (1.0 + np.exp(self.data)),
            )
            self._accumulate(grad * sig)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, min_value: Optional[float] = None, max_value: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, min_value, max_value)

        def backward(grad: np.ndarray) -> None:
            mask = np.ones_like(self.data)
            if min_value is not None:
                mask = mask * (self.data >= min_value)
            if max_value is not None:
                mask = mask * (self.data <= max_value)
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis=axis)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes=axes)

        def backward(grad: np.ndarray) -> None:
            if axes is None:
                self._accumulate(np.transpose(grad))
            else:
                inverse = np.argsort(axes)
                self._accumulate(np.transpose(grad, axes=inverse))

        return Tensor._make(out_data, (self,), backward)

    def _scatter_accumulate(self, key, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad[key]`` without a full temporary.

        Indexing nodes only touch the selected entries, so scattering straight
        into the (owned) gradient buffer keeps their backward cost proportional
        to the slice, not to the whole tensor — crucial for the per-step slices
        of the RNN scan over large merged batches.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        if _is_basic_index(key):
            # Basic indexing selects each element at most once.
            self.grad[key] += grad
        else:
            np.add.at(self.grad, key, grad)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            self._scatter_accumulate(key, grad)

        return Tensor._make(out_data, (self,), backward)

    def gather(self, indices: np.ndarray) -> "Tensor":
        """Gather rows: ``out[i, ...] = self[indices[i], ...]``.

        ``indices`` may have any shape; the result has shape
        ``indices.shape + self.shape[1:]``.  The backward pass scatter-adds
        gradients back into the source rows, which makes this the building
        block for RouteNet's message passing.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            self._scatter_accumulate(indices, grad)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Comparisons (no gradient)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)


# ---------------------------------------------------------------------- #
# Free functions
# ---------------------------------------------------------------------- #
def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already a tensor)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(value, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    """Create a tensor of zeros."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    """Create a tensor of ones."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(shape, scale: float = 1.0, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False) -> Tensor:
    """Create a tensor of Gaussian noise with standard deviation ``scale``."""
    generator = rng if rng is not None else np.random.default_rng()
    return Tensor(generator.normal(0.0, scale, size=shape), requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensor_list = [as_tensor(t) for t in tensors]
    arrays = [t.data for t in tensor_list]
    out_data = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensor_list, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensor_list), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensor_list = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensor_list], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensor_list), axis=axis)
        for t, piece in zip(tensor_list, pieces):
            t._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensor_list), backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Element-wise selection ``condition ? a : b`` (condition not differentiated)."""
    condition = np.asarray(condition, dtype=bool)
    a_t, b_t = as_tensor(a), as_tensor(b)
    out_data = np.where(condition, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        a_t._accumulate(_unbroadcast(grad * condition, a_t.shape))
        b_t._accumulate(_unbroadcast(grad * (~condition), b_t.shape))

    return Tensor._make(out_data, (a_t, b_t), backward)


def segment_sum(data: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``data`` into ``num_segments`` buckets.

    ``out[s] = sum_i data[i] for segment_ids[i] == s``.  This mirrors
    ``tf.math.unsorted_segment_sum`` and is the aggregation primitive used by
    the RouteNet message passing (links/nodes aggregate the states of the
    paths that traverse them).
    """
    data_t = as_tensor(data)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1 or segment_ids.shape[0] != data_t.shape[0]:
        raise ValueError("segment_ids must be 1-D with one id per row of data")
    if segment_ids.size and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise ValueError("segment id out of range")
    out_shape = (num_segments,) + data_t.shape[1:]
    out_data = np.zeros(out_shape, dtype=data_t.dtype)
    np.add.at(out_data, segment_ids, data_t.data)

    def backward(grad: np.ndarray) -> None:
        data_t._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (data_t,), backward)


def segment_mean(data: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Average rows of ``data`` per segment (empty segments yield zeros)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (as_tensor(data).ndim - 1))
    return segment_sum(data, segment_ids, num_segments) / counts
