"""Base classes for trainable components: :class:`Parameter` and :class:`Module`.

A :class:`Module` owns named :class:`Parameter` objects and child modules, and
exposes them through :meth:`Module.parameters` / :meth:`Module.named_parameters`
so optimisers and serialisation helpers can treat any model uniformly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import DTypeLike, Tensor, resolve_dtype

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by :class:`Module`.

    Parameters are always stored in a concrete float precision: ``dtype``
    when given, otherwise the module-level default (see
    :func:`repro.nn.tensor.set_default_dtype`) active at construction time —
    models pin their precision by building parameters inside a
    :func:`repro.nn.tensor.default_dtype` block.
    """

    def __init__(self, data, name: Optional[str] = None, dtype: DTypeLike = None) -> None:
        super().__init__(np.asarray(data, dtype=resolve_dtype(dtype)),
                         requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are registered automatically.  Subclasses implement
    :meth:`forward`, and instances are callable.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module (used for module lists)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Parameter access
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar trainable values."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Flat parameter / gradient vectors
    # ------------------------------------------------------------------ #
    def parameters_vector(self) -> np.ndarray:
        """Concatenate every parameter into one flat 1-D array (a copy).

        The layout is the depth-first :meth:`named_parameters` order, which
        is deterministic for a given architecture — the same order
        :meth:`load_parameters_vector`, :meth:`gradients_vector` and
        :meth:`load_gradients_vector` use, so a vector packed from one
        replica of a model can be unpacked into another.  This is the wire
        format of the data-parallel trainer (parameter broadcast / gradient
        return, see :mod:`repro.nn.parallel`).
        """
        return np.concatenate([p.data.reshape(-1) for p in self.parameters()])

    def load_parameters_vector(self, vector: np.ndarray) -> None:
        """Unpack a flat vector from :meth:`parameters_vector` into the parameters."""
        params = self.parameters()
        vector = np.asarray(vector)
        expected = sum(p.size for p in params)
        if vector.ndim != 1 or vector.size != expected:
            raise ValueError(
                f"expected a flat vector of {expected} values, got shape {vector.shape}")
        offset = 0
        for p in params:
            chunk = vector[offset:offset + p.size]
            p.data = np.asarray(chunk, dtype=p.data.dtype).reshape(p.data.shape).copy()
            offset += p.size

    def gradients_vector(self) -> np.ndarray:
        """Concatenate every parameter's gradient into one flat 1-D array.

        Parameters whose gradient is ``None`` (not touched by the last
        backward pass) contribute zeros, so the vector always has the same
        layout as :meth:`parameters_vector`.
        """
        chunks = []
        for p in self.parameters():
            if p.grad is None:
                chunks.append(np.zeros(p.size, dtype=p.data.dtype))
            else:
                chunks.append(np.asarray(p.grad).reshape(-1))
        return np.concatenate(chunks)

    def load_gradients_vector(self, vector: np.ndarray) -> None:
        """Set every parameter's ``grad`` from a flat vector (layout as above)."""
        params = self.parameters()
        vector = np.asarray(vector)
        expected = sum(p.size for p in params)
        if vector.ndim != 1 or vector.size != expected:
            raise ValueError(
                f"expected a flat vector of {expected} values, got shape {vector.shape}")
        offset = 0
        for p in params:
            chunk = vector[offset:offset + p.size]
            p.grad = np.asarray(chunk, dtype=p.data.dtype).reshape(p.data.shape).copy()
            offset += p.size

    # ------------------------------------------------------------------ #
    # State dict (serialisation)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its qualified name."""
        return {name: np.array(param.data, copy=True) for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from a dictionary produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            # Checkpoints may have been written at either precision; loading
            # casts to the parameter's own dtype so the model keeps the
            # precision it was constructed with.
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------ #
    # Train / eval mode
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. dropout)."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_repr = ", ".join(self._modules.keys())
        return f"{self.__class__.__name__}({child_repr})"
