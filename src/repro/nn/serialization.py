"""Saving and loading model parameters as ``.npz`` archives."""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

import numpy as np

from repro.nn.module import Module

__all__ = ["save_parameters", "load_parameters", "save_checkpoint", "load_checkpoint",
           "read_checkpoint_metadata"]


def save_parameters(module: Module, path: str) -> str:
    """Save every parameter of ``module`` to a compressed ``.npz`` file.

    Returns the path written (with the ``.npz`` suffix added if missing).
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    state = module.state_dict()
    # ``/`` is not a legal npz key separator on all platforms; keep dots.
    np.savez_compressed(path, **state)
    return path


def load_parameters(module: Module, path: str, strict: bool = True) -> Module:
    """Load parameters saved with :func:`save_parameters` into ``module``."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    if not os.path.exists(path):
        raise FileNotFoundError(f"no parameter file at '{path}'")
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    module.load_state_dict(state, strict=strict)
    return module


def save_checkpoint(module: Module, path: str, metadata: Optional[dict] = None) -> str:
    """Save parameters plus a JSON sidecar of training metadata."""
    written = save_parameters(module, path)
    if metadata is not None:
        sidecar = written[: -len(".npz")] + ".json"
        with open(sidecar, "w", encoding="utf-8") as handle:
            json.dump(metadata, handle, indent=2, sort_keys=True)
    return written


def read_checkpoint_metadata(path: str) -> dict:
    """Read a checkpoint's JSON metadata sidecar without touching weights.

    Useful to recover construction settings (e.g. the training dtype)
    before building the module the weights will be loaded into.  Returns
    an empty dictionary if no sidecar exists.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    sidecar = path[: -len(".npz")] + ".json"
    if os.path.exists(sidecar):
        with open(sidecar, "r", encoding="utf-8") as handle:
            return json.load(handle)
    return {}


def load_checkpoint(module: Module, path: str, strict: bool = True) -> dict:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Returns the metadata dictionary (empty if no sidecar exists).
    """
    load_parameters(module, path, strict=strict)
    return read_checkpoint_metadata(path)
