"""Recurrent cells (GRU, LSTM) and sequence-scan helpers.

RouteNet's message passing uses recurrent cells in two roles:

* as the *update functions* of link/node states (one step per message-passing
  iteration), and
* as the *path update*, which reads an ordered sequence of link (and, in the
  extended architecture, node) states along each path.

Both roles are covered by the cell classes here together with
:func:`run_rnn_over_sequence`, which scans a cell over a padded batch of
sequences with a mask.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.initializers import glorot_uniform, orthogonal, zeros_init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor, get_default_dtype, masked_where

__all__ = ["RNNCellBase", "GRUCell", "LSTMCell", "run_rnn_over_sequence"]


class RNNCellBase(Module):
    """Common interface for recurrent cells: ``new_state = cell(inputs, state)``."""

    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size

    @property
    def param_dtype(self) -> np.dtype:
        """The floating dtype of the cell's parameters (states follow it)."""
        for parameter in self.parameters():
            return parameter.data.dtype
        return get_default_dtype()

    def initial_state(self, batch_size: int) -> Tensor:
        """Return an all-zeros hidden state for ``batch_size`` sequences."""
        return Tensor(np.zeros((batch_size, self.hidden_size), dtype=self.param_dtype))

    def forward(self, inputs: Tensor, state: Tensor) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError


class GRUCell(RNNCellBase):
    """Gated recurrent unit cell (Cho et al., 2014).

    Follows the standard formulation::

        z = sigmoid(x Wz + h Uz + bz)      (update gate)
        r = sigmoid(x Wr + h Ur + br)      (reset gate)
        n = tanh(x Wn + (r * h) Un + bn)   (candidate)
        h' = (1 - z) * n + z * h
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(input_size, hidden_size)
        generator = rng if rng is not None else np.random.default_rng()
        # Input-to-hidden weights for the three gates, stacked for efficiency.
        self.weight_input = Parameter(
            glorot_uniform((input_size, 3 * hidden_size), rng=generator), name="weight_input")
        # Hidden-to-hidden weights.
        self.weight_hidden = Parameter(
            orthogonal((hidden_size, 3 * hidden_size), rng=generator), name="weight_hidden")
        self.bias = Parameter(zeros_init((3 * hidden_size,)), name="bias")

    def forward(self, inputs: Tensor, state: Tensor) -> Tensor:
        inputs = as_tensor(inputs)
        state = as_tensor(state)
        hidden = self.hidden_size
        gates_x = inputs.matmul(self.weight_input) + self.bias
        gates_h = state.matmul(self.weight_hidden)

        update_gate = (gates_x[:, :hidden] + gates_h[:, :hidden]).sigmoid()
        reset_gate = (gates_x[:, hidden:2 * hidden] + gates_h[:, hidden:2 * hidden]).sigmoid()
        candidate = (gates_x[:, 2 * hidden:] + reset_gate * gates_h[:, 2 * hidden:]).tanh()
        return (1.0 - update_gate) * candidate + update_gate * state


class LSTMCell(RNNCellBase):
    """Long short-term memory cell.

    The state is the concatenation ``[h, c]`` of the hidden and cell states so
    the interface matches :class:`GRUCell` (a single state tensor); use
    :meth:`split_state` to recover the two halves.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(input_size, hidden_size)
        generator = rng if rng is not None else np.random.default_rng()
        self.weight_input = Parameter(
            glorot_uniform((input_size, 4 * hidden_size), rng=generator), name="weight_input")
        self.weight_hidden = Parameter(
            orthogonal((hidden_size, 4 * hidden_size), rng=generator), name="weight_hidden")
        self.bias = Parameter(zeros_init((4 * hidden_size,)), name="bias")

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, 2 * self.hidden_size), dtype=self.param_dtype))

    @staticmethod
    def split_state(state: Tensor) -> Tuple[Tensor, Tensor]:
        """Split the packed ``[h, c]`` state into ``(h, c)``."""
        hidden = state.shape[-1] // 2
        return state[:, :hidden], state[:, hidden:]

    def forward(self, inputs: Tensor, state: Tensor) -> Tensor:
        inputs = as_tensor(inputs)
        state = as_tensor(state)
        hidden = self.hidden_size
        h_prev, c_prev = self.split_state(state)

        gates = inputs.matmul(self.weight_input) + h_prev.matmul(self.weight_hidden) + self.bias
        input_gate = gates[:, :hidden].sigmoid()
        forget_gate = gates[:, hidden:2 * hidden].sigmoid()
        output_gate = gates[:, 2 * hidden:3 * hidden].sigmoid()
        candidate = gates[:, 3 * hidden:].tanh()

        c_new = forget_gate * c_prev + input_gate * candidate
        h_new = output_gate * c_new.tanh()
        return F.concat([h_new, c_new], axis=1)

    def hidden_output(self, state: Tensor) -> Tensor:
        """Return the hidden half of the packed state (the cell's output)."""
        return self.split_state(state)[0]


def run_rnn_over_sequence(
    cell: RNNCellBase,
    sequence: Tensor,
    mask: np.ndarray,
    initial_state: Optional[Tensor] = None,
) -> Tuple[Tensor, Tensor]:
    """Scan ``cell`` over a padded batch of sequences.

    Parameters
    ----------
    cell:
        The recurrent cell to apply.
    sequence:
        Tensor of shape ``(batch, max_len, input_size)``.
    mask:
        Boolean/0-1 array of shape ``(batch, max_len)``; positions with mask 0
        leave the state unchanged (padding).
    initial_state:
        Optional initial state; defaults to zeros.

    Returns
    -------
    (outputs, final_state):
        ``outputs`` has shape ``(batch, max_len, state_size)`` holding the
        state after each step; ``final_state`` is the state after the last
        valid step of every sequence.
    """
    sequence = as_tensor(sequence)
    if sequence.ndim != 3:
        raise ValueError("sequence must have shape (batch, max_len, input_size)")
    batch, max_len, _ = sequence.shape
    mask = np.asarray(mask)
    if mask.shape != (batch, max_len):
        raise ValueError(f"mask shape {mask.shape} does not match sequence {(batch, max_len)}")

    state = initial_state if initial_state is not None else cell.initial_state(batch)
    valid = mask > 0
    fully_valid = valid.all(axis=0)
    outputs = []
    for step in range(max_len):
        step_input = sequence[:, step, :]
        new_state = cell(step_input, state)
        if fully_valid[step]:
            # No padding at this step: skip the masking select entirely.
            state = new_state
        else:
            # Fused masked update: one autograd node whose backward splits
            # the gradient between new and old state in a pooled buffer.
            state = masked_where(valid[:, step], new_state, state)
        outputs.append(state)
    stacked = F.stack(outputs, axis=1)
    return stacked, state
