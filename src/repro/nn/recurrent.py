"""Recurrent cells (GRU, LSTM) and sequence-scan helpers.

RouteNet's message passing uses recurrent cells in two roles:

* as the *update functions* of link/node states (one step per message-passing
  iteration), and
* as the *path update*, which reads an ordered sequence of link (and, in the
  extended architecture, node) states along each path.

Both roles are covered by the cell classes here together with
:func:`run_rnn_over_sequence`, which scans a cell over a padded batch of
sequences with a mask.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.initializers import glorot_uniform, orthogonal, zeros_init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import (
    _GRAD_BUFFER_POOL,
    Tensor,
    as_tensor,
    get_default_dtype,
    is_grad_enabled,
    make_multi_output,
    masked_where,
    no_grad,
)

__all__ = ["RNNCellBase", "GRUCell", "LSTMCell", "run_rnn_over_sequence",
           "ScanScatter", "scan_rnn"]


class RNNCellBase(Module):
    """Common interface for recurrent cells: ``new_state = cell(inputs, state)``."""

    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size

    @property
    def param_dtype(self) -> np.dtype:
        """The floating dtype of the cell's parameters (states follow it)."""
        for parameter in self.parameters():
            return parameter.data.dtype
        return get_default_dtype()

    def initial_state(self, batch_size: int) -> Tensor:
        """Return an all-zeros hidden state for ``batch_size`` sequences."""
        return Tensor(np.zeros((batch_size, self.hidden_size), dtype=self.param_dtype))

    def forward(self, inputs: Tensor, state: Tensor) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError


class GRUCell(RNNCellBase):
    """Gated recurrent unit cell (Cho et al., 2014).

    Follows the standard formulation::

        z = sigmoid(x Wz + h Uz + bz)      (update gate)
        r = sigmoid(x Wr + h Ur + br)      (reset gate)
        n = tanh(x Wn + (r * h) Un + bn)   (candidate)
        h' = (1 - z) * n + z * h
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(input_size, hidden_size)
        generator = rng if rng is not None else np.random.default_rng()
        # Input-to-hidden weights for the three gates, stacked for efficiency.
        self.weight_input = Parameter(
            glorot_uniform((input_size, 3 * hidden_size), rng=generator), name="weight_input")
        # Hidden-to-hidden weights.
        self.weight_hidden = Parameter(
            orthogonal((hidden_size, 3 * hidden_size), rng=generator), name="weight_hidden")
        self.bias = Parameter(zeros_init((3 * hidden_size,)), name="bias")

    def forward(self, inputs: Tensor, state: Tensor) -> Tensor:
        inputs = as_tensor(inputs)
        state = as_tensor(state)
        hidden = self.hidden_size
        gates_x = inputs.matmul(self.weight_input) + self.bias
        gates_h = state.matmul(self.weight_hidden)

        update_gate = (gates_x[:, :hidden] + gates_h[:, :hidden]).sigmoid()
        reset_gate = (gates_x[:, hidden:2 * hidden] + gates_h[:, hidden:2 * hidden]).sigmoid()
        candidate = (gates_x[:, 2 * hidden:] + reset_gate * gates_h[:, 2 * hidden:]).tanh()
        return (1.0 - update_gate) * candidate + update_gate * state


class LSTMCell(RNNCellBase):
    """Long short-term memory cell.

    The state is the concatenation ``[h, c]`` of the hidden and cell states so
    the interface matches :class:`GRUCell` (a single state tensor); use
    :meth:`split_state` to recover the two halves.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(input_size, hidden_size)
        generator = rng if rng is not None else np.random.default_rng()
        self.weight_input = Parameter(
            glorot_uniform((input_size, 4 * hidden_size), rng=generator), name="weight_input")
        self.weight_hidden = Parameter(
            orthogonal((hidden_size, 4 * hidden_size), rng=generator), name="weight_hidden")
        self.bias = Parameter(zeros_init((4 * hidden_size,)), name="bias")

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, 2 * self.hidden_size), dtype=self.param_dtype))

    @staticmethod
    def split_state(state: Tensor) -> Tuple[Tensor, Tensor]:
        """Split the packed ``[h, c]`` state into ``(h, c)``."""
        hidden = state.shape[-1] // 2
        return state[:, :hidden], state[:, hidden:]

    def forward(self, inputs: Tensor, state: Tensor) -> Tensor:
        inputs = as_tensor(inputs)
        state = as_tensor(state)
        hidden = self.hidden_size
        h_prev, c_prev = self.split_state(state)

        gates = inputs.matmul(self.weight_input) + h_prev.matmul(self.weight_hidden) + self.bias
        input_gate = gates[:, :hidden].sigmoid()
        forget_gate = gates[:, hidden:2 * hidden].sigmoid()
        output_gate = gates[:, 2 * hidden:3 * hidden].sigmoid()
        candidate = gates[:, 3 * hidden:].tanh()

        c_new = forget_gate * c_prev + input_gate * candidate
        h_new = output_gate * c_new.tanh()
        return F.concat([h_new, c_new], axis=1)

    def hidden_output(self, state: Tensor) -> Tensor:
        """Return the hidden half of the packed state (the cell's output)."""
        return self.split_state(state)[0]


def run_rnn_over_sequence(
    cell: RNNCellBase,
    sequence: Tensor,
    mask: np.ndarray,
    initial_state: Optional[Tensor] = None,
) -> Tuple[Tensor, Tensor]:
    """Scan ``cell`` over a padded batch of sequences.

    Parameters
    ----------
    cell:
        The recurrent cell to apply.
    sequence:
        Tensor of shape ``(batch, max_len, input_size)``.
    mask:
        Boolean/0-1 array of shape ``(batch, max_len)``; positions with mask 0
        leave the state unchanged (padding).
    initial_state:
        Optional initial state; defaults to zeros.

    Returns
    -------
    (outputs, final_state):
        ``outputs`` has shape ``(batch, max_len, state_size)`` holding the
        state after each step; ``final_state`` is the state after the last
        valid step of every sequence.
    """
    sequence = as_tensor(sequence)
    if sequence.ndim != 3:
        raise ValueError("sequence must have shape (batch, max_len, input_size)")
    batch, max_len, _ = sequence.shape
    mask = np.asarray(mask)
    if mask.shape != (batch, max_len):
        raise ValueError(f"mask shape {mask.shape} does not match sequence {(batch, max_len)}")

    state = initial_state if initial_state is not None else cell.initial_state(batch)
    valid = mask > 0
    fully_valid = valid.all(axis=0)
    outputs = []
    for step in range(max_len):
        step_input = sequence[:, step, :]
        new_state = cell(step_input, state)
        if fully_valid[step]:
            # No padding at this step: skip the masking select entirely.
            state = new_state
        else:
            # Fused masked update: one autograd node whose backward splits
            # the gradient between new and old state in a pooled buffer.
            state = masked_where(valid[:, step], new_state, state)
        outputs.append(state)
    stacked = F.stack(outputs, axis=1)
    return stacked, state


@dataclasses.dataclass
class ScanScatter:
    """Per-step output aggregation spec for :func:`scan_rnn`.

    At scan step ``t`` the state rows ``rows[t]`` (each a distinct path) are
    added into the accumulator rows ``segment_ids[t]`` — the streaming
    equivalent of stacking all per-step outputs and gather/segment-summing
    them afterwards.  ``rows[t] is None`` means step ``t`` emits nothing
    (e.g. the node positions of the interleaved extended-RouteNet sequence).
    """

    rows: List[Optional[np.ndarray]]
    segment_ids: List[Optional[np.ndarray]]
    num_segments: int


def scan_rnn(
    cell: RNNCellBase,
    sources: Sequence[Tensor],
    step_sources: np.ndarray,
    step_rows: np.ndarray,
    mask: np.ndarray,
    initial_state: Optional[Tensor] = None,
    scatter: Optional[ScanScatter] = None,
    compiled=None,
) -> Tuple[Optional[Tensor], Tensor]:
    """Streaming, checkpointed masked scan of ``cell`` fused with aggregation.

    Semantically equivalent to gathering the per-step inputs into a
    ``(num_paths, num_steps, dim)`` sequence, calling
    :func:`run_rnn_over_sequence` and gather/segment-summing the stacked
    outputs — but neither the gathered sequence, the stacked outputs nor any
    per-step intermediate survives in the autograd graph:

    * **forward** runs under ``no_grad``; step ``t`` gathers its input rows
      ``sources[step_sources[t]][step_rows[:, t]]`` on the fly, applies the
      cell, masks the update, and (when ``scatter`` is given) adds the
      states of the paths valid at ``t`` straight into the per-segment
      accumulator.  Only the carried state *before* each step is kept (one
      ``(num_paths, state_size)`` array per step — the checkpoints), so live
      memory is O(paths·state) per step instead of the O(paths·steps·state)
      graph of the stacked formulation;
    * **backward** re-runs each step in reverse from its checkpoint as a
      two-leaf subgraph (input rows + previous state), back-propagates the
      incoming state gradient plus the segment-gradient contributions of
      that step, accumulates parameter gradients, and scatter-adds the input
      gradient into the source tensors.

    Parameters
    ----------
    cell:
        The recurrent cell to scan.
    sources:
        State matrices the per-step inputs are gathered from (e.g.
        ``(link_states,)``, or ``(node_states, link_states)`` for the
        interleaved extended scan).
    step_sources:
        ``(num_steps,)`` index into ``sources`` per scan step.
    step_rows:
        ``(num_paths, num_steps)`` row index into the step's source.
    mask:
        ``(num_paths, num_steps)`` validity mask; invalid steps carry the
        previous state unchanged.
    initial_state:
        Optional initial state (defaults to the cell's zero state).
    scatter:
        Optional :class:`ScanScatter` routing each step's output rows into
        ``num_segments`` accumulators.
    compiled:
        Optional :class:`~repro.nn.scan_kernels.ScanKernelSpec` precompiled
        from the same ``(step_sources, step_rows, mask, scatter)`` via
        :func:`~repro.nn.scan_kernels.compile_scan_spec`.  When given and
        the cell has a compiled step kernel (GRU/LSTM), the scan runs
        through the raw-NumPy kernel executor instead of the interpreted
        per-step tape; cells without a kernel fall back to the interpreted
        scan transparently.

    Returns
    -------
    (aggregated, final_state):
        ``aggregated`` is the ``(num_segments, state_size)`` accumulator
        (``None`` when ``scatter`` is ``None``); ``final_state`` is the
        state after the last step.  Both are outputs of one joint autograd
        node, so either or both may feed the downstream graph.
    """
    step_rows = np.asarray(step_rows, dtype=np.int64)
    if step_rows.ndim != 2:
        raise ValueError("step_rows must have shape (num_paths, num_steps)")
    num_paths, num_steps = step_rows.shape
    step_sources = np.asarray(step_sources, dtype=np.int64)
    if step_sources.shape != (num_steps,):
        raise ValueError(f"step_sources must have shape ({num_steps},)")
    mask = np.asarray(mask)
    if mask.shape != (num_paths, num_steps):
        raise ValueError(f"mask shape {mask.shape} does not match {(num_paths, num_steps)}")
    if scatter is not None and (len(scatter.rows) != num_steps
                                or len(scatter.segment_ids) != num_steps):
        raise ValueError("scatter spec must have one entry per scan step")

    source_tensors = tuple(as_tensor(s) for s in sources)
    state_tensor = initial_state if initial_state is not None \
        else cell.initial_state(num_paths)

    if compiled is not None:
        from repro.nn.scan_kernels import compile_step_kernel, run_compiled_scan

        kernel = compile_step_kernel(cell)
        if kernel is not None:
            if (compiled.num_paths, compiled.num_steps) != (num_paths, num_steps):
                raise ValueError(
                    f"compiled spec is for shape "
                    f"{(compiled.num_paths, compiled.num_steps)}, scan has "
                    f"{(num_paths, num_steps)}")
            if compiled.has_scatter != (scatter is not None):
                raise ValueError(
                    "compiled spec and scatter argument disagree about output "
                    "aggregation")
            return run_compiled_scan(kernel, source_tensors, state_tensor,
                                     compiled, scatter)

    state = state_tensor.data
    state_size = state.shape[1]
    valid = mask > 0
    fully_valid = valid.all(axis=0)

    parameters = tuple(cell.parameters())
    parents = source_tensors + (state_tensor,) + parameters
    grad_needed = is_grad_enabled() and any(p.requires_grad for p in parents)

    # The checkpoints: carried state *before* each step, stored as raw
    # arrays (never mutated — every step produces fresh arrays).  Not
    # retained at all for inference, so ``no_grad`` evaluation streams with
    # O(paths·state) live memory.
    checkpoints: Optional[List[np.ndarray]] = [] if grad_needed else None
    aggregated = (np.zeros((scatter.num_segments, state_size), dtype=state.dtype)
                  if scatter is not None else None)

    with no_grad():
        for step in range(num_steps):
            if checkpoints is not None:
                checkpoints.append(state)
            rows = step_rows[:, step]
            inputs = source_tensors[step_sources[step]].data[rows]
            new_state = cell(Tensor(inputs), Tensor(state)).data
            if fully_valid[step]:
                state = new_state
            else:
                np.copyto(new_state, state, where=~valid[:, step][:, None])
                state = new_state
            if scatter is not None and scatter.rows[step] is not None:
                np.add.at(aggregated, scatter.segment_ids[step],
                          state[scatter.rows[step]])

    final_state = state

    if not grad_needed:
        if scatter is None:
            return None, Tensor(final_state)
        return Tensor(aggregated), Tensor(final_state)

    def joint_backward(grads: Tuple[Optional[np.ndarray], ...]) -> None:
        if scatter is None:
            aggregated_grad, final_grad = None, grads[0]
        else:
            aggregated_grad, final_grad = grads
        if final_grad is not None:
            state_grad = np.array(final_grad, dtype=final_state.dtype, copy=True)
        else:
            state_grad = np.zeros_like(final_state)

        for step in reversed(range(num_steps)):
            if (aggregated_grad is not None and scatter is not None
                    and scatter.rows[step] is not None):
                # Each valid path emits exactly one output row per step, so
                # the rows are unique and a fancy-index += is exact.
                state_grad[scatter.rows[step]] += \
                    aggregated_grad[scatter.segment_ids[step]]

            rows = step_rows[:, step]
            source = source_tensors[step_sources[step]]
            input_leaf = Tensor(source.data[rows], requires_grad=True)
            previous_leaf = Tensor(checkpoints[step], requires_grad=True)
            new_state = cell(input_leaf, previous_leaf)

            if fully_valid[step]:
                new_state.backward(state_grad)
                carried = None
            else:
                valid_column = valid[:, step][:, None]
                step_grad = _GRAD_BUFFER_POOL.take(state_grad.shape, state_grad.dtype)
                np.multiply(state_grad, valid_column, out=step_grad)
                new_state.backward(step_grad)
                _GRAD_BUFFER_POOL.give(step_grad)
                # The masked-out rows carry their gradient past this step.
                np.multiply(state_grad, ~valid_column, out=state_grad)
                carried = state_grad

            if previous_leaf.grad is not None:
                if carried is None:
                    state_grad = previous_leaf.grad
                else:
                    carried += previous_leaf.grad
                    state_grad = carried
            elif carried is None:  # pragma: no cover - cells always use state
                state_grad = np.zeros_like(state_grad)
            if input_leaf.grad is not None:
                source._scatter_accumulate(rows, input_leaf.grad)

        state_tensor._accumulate(state_grad)

    if scatter is None:
        (final_out,) = make_multi_output([final_state], parents, joint_backward)
        return None, final_out
    aggregated_out, final_out = make_multi_output(
        [aggregated, final_state], parents, joint_backward)
    return aggregated_out, final_out
