"""Gradient-descent optimisers and learning-rate schedules."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Momentum",
    "RMSProp",
    "Adam",
    "ConstantSchedule",
    "ExponentialDecay",
    "StepDecay",
    "clip_gradients_by_norm",
]


# ---------------------------------------------------------------------- #
# Learning-rate schedules
# ---------------------------------------------------------------------- #
class ConstantSchedule:
    """A constant learning rate."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.learning_rate = learning_rate

    def __call__(self, step: int) -> float:
        return self.learning_rate


class ExponentialDecay:
    """Learning rate ``lr * decay_rate ** (step / decay_steps)``."""

    def __init__(self, initial_rate: float, decay_steps: int, decay_rate: float) -> None:
        if initial_rate <= 0 or decay_steps <= 0 or not 0 < decay_rate <= 1:
            raise ValueError("invalid exponential decay configuration")
        self.initial_rate = initial_rate
        self.decay_steps = decay_steps
        self.decay_rate = decay_rate

    def __call__(self, step: int) -> float:
        return self.initial_rate * self.decay_rate ** (step / self.decay_steps)


class StepDecay:
    """Learning rate divided by ``factor`` every ``every`` steps."""

    def __init__(self, initial_rate: float, every: int, factor: float = 10.0) -> None:
        if initial_rate <= 0 or every <= 0 or factor <= 1:
            raise ValueError("invalid step decay configuration")
        self.initial_rate = initial_rate
        self.every = every
        self.factor = factor

    def __call__(self, step: int) -> float:
        return self.initial_rate / (self.factor ** (step // self.every))


def _as_schedule(learning_rate) -> "ConstantSchedule":
    if callable(learning_rate):
        return learning_rate
    return ConstantSchedule(float(learning_rate))


def clip_gradients_by_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm does not exceed ``max_norm``.

    Returns the norm before clipping (useful for logging exploding gradients).
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad = p.grad * scale
    return total


# ---------------------------------------------------------------------- #
# Optimisers
# ---------------------------------------------------------------------- #
class Optimizer:
    """Base class: tracks parameters, step count and learning-rate schedule."""

    def __init__(self, parameters: Iterable[Parameter], learning_rate=1e-3,
                 weight_decay: float = 0.0) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.schedule = _as_schedule(learning_rate)
        self.weight_decay = weight_decay
        self.step_count = 0

    @property
    def learning_rate(self) -> float:
        return self.schedule(self.step_count)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        self.step_count += 1
        lr = self.schedule(self.step_count)
        for index, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._update(index, p, grad, lr)

    def _update(self, index: int, param: Parameter, grad: np.ndarray, lr: float) -> None:  # pragma: no cover
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Return the full optimiser state: step count plus moment buffers.

        Subclasses declare their per-parameter buffers via
        :meth:`_buffer_names`; every buffer is copied, so mutating the
        returned dictionary cannot corrupt the optimiser.
        """
        state: Dict[str, object] = {"step_count": self.step_count}
        for name in self._buffer_names():
            state[name] = [np.array(buffer, copy=True)
                           for buffer in getattr(self, f"_{name}")]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state from :meth:`state_dict` output.

        Moment buffers are shape-checked against the current parameters —
        loading the state of an optimiser built over a different model (or a
        truncated legacy state that only carried ``step_count``) raises
        instead of silently resuming with zeroed moments, which would make
        e.g. Adam's bias correction ``1/(1 - beta**step_count)`` wrong for
        every freshly zeroed buffer.
        """
        self.step_count = int(state.get("step_count", 0))
        for name in self._buffer_names():
            if name not in state:
                raise KeyError(
                    f"optimizer state is missing the '{name}' buffers; "
                    "it was saved by an incompatible (or pre-fix) version")
            buffers = list(state[name])
            if len(buffers) != len(self.parameters):
                raise ValueError(
                    f"optimizer state has {len(buffers)} '{name}' buffers for "
                    f"{len(self.parameters)} parameters")
            restored = []
            for buffer, param in zip(buffers, self.parameters):
                array = np.asarray(buffer)
                if array.shape != param.data.shape:
                    raise ValueError(
                        f"'{name}' buffer shape {array.shape} does not match "
                        f"parameter shape {param.data.shape}")
                restored.append(array.astype(param.data.dtype, copy=True))
            setattr(self, f"_{name}", restored)

    def _buffer_names(self) -> tuple:
        """Names of per-parameter moment buffers (stored as ``_<name>`` lists)."""
        return ()


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def _update(self, index: int, param: Parameter, grad: np.ndarray, lr: float) -> None:
        param.data = param.data - lr * grad


class Momentum(Optimizer):
    """SGD with (optionally Nesterov) momentum."""

    def __init__(self, parameters, learning_rate=1e-2, momentum: float = 0.9,
                 nesterov: bool = False, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, learning_rate, weight_decay)
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _buffer_names(self) -> tuple:
        return ("velocity",)

    def _update(self, index: int, param: Parameter, grad: np.ndarray, lr: float) -> None:
        velocity = self.momentum * self._velocity[index] - lr * grad
        self._velocity[index] = velocity
        if self.nesterov:
            param.data = param.data + self.momentum * velocity - lr * grad
        else:
            param.data = param.data + velocity


class RMSProp(Optimizer):
    """RMSProp with exponential moving average of squared gradients."""

    def __init__(self, parameters, learning_rate=1e-3, rho: float = 0.9,
                 epsilon: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, learning_rate, weight_decay)
        self.rho = rho
        self.epsilon = epsilon
        self._mean_square = [np.zeros_like(p.data) for p in self.parameters]

    def _buffer_names(self) -> tuple:
        return ("mean_square",)

    def _update(self, index: int, param: Parameter, grad: np.ndarray, lr: float) -> None:
        self._mean_square[index] = (
            self.rho * self._mean_square[index] + (1.0 - self.rho) * grad ** 2
        )
        param.data = param.data - lr * grad / (np.sqrt(self._mean_square[index]) + self.epsilon)


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters, learning_rate=1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, learning_rate, weight_decay)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def _buffer_names(self) -> tuple:
        return ("first_moment", "second_moment")

    def _update(self, index: int, param: Parameter, grad: np.ndarray, lr: float) -> None:
        self._first_moment[index] = self.beta1 * self._first_moment[index] + (1 - self.beta1) * grad
        self._second_moment[index] = (
            self.beta2 * self._second_moment[index] + (1 - self.beta2) * grad ** 2
        )
        first_hat = self._first_moment[index] / (1 - self.beta1 ** self.step_count)
        second_hat = self._second_moment[index] / (1 - self.beta2 ** self.step_count)
        param.data = param.data - lr * first_hat / (np.sqrt(second_hat) + self.epsilon)
