"""Functional wrappers around :class:`repro.nn.tensor.Tensor` operations.

These helpers make model code read close to the reference TensorFlow
implementation of RouteNet (``tf.concat``, ``tf.math.unsorted_segment_sum``,
``tf.gather`` …) while staying within the NumPy autograd substrate.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.nn.tensor import (
    Tensor,
    as_tensor,
    concat,
    gather_segment_sum,
    get_default_dtype,
    masked_where,
    segment_mean,
    segment_sum,
    stack,
    where,
)

__all__ = [
    "concat",
    "stack",
    "where",
    "masked_where",
    "segment_sum",
    "segment_mean",
    "gather_segment_sum",
    "gather",
    "relu",
    "sigmoid",
    "tanh",
    "softplus",
    "exp",
    "log",
    "clip",
    "dropout",
    "leaky_relu",
    "elu",
    "selu",
    "softmax",
    "l2_norm",
    "one_hot",
]


def gather(data: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows from ``data`` (see :meth:`Tensor.gather`)."""
    return as_tensor(data).gather(indices)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def softplus(x: Tensor) -> Tensor:
    """Softplus activation ``log(1 + exp(x))``."""
    return as_tensor(x).softplus()


def exp(x: Tensor) -> Tensor:
    """Element-wise exponential."""
    return as_tensor(x).exp()


def log(x: Tensor) -> Tensor:
    """Element-wise natural logarithm."""
    return as_tensor(x).log()


def clip(x: Tensor, min_value: Optional[float] = None, max_value: Optional[float] = None) -> Tensor:
    """Clip values to ``[min_value, max_value]``."""
    return as_tensor(x).clip(min_value, max_value)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU activation."""
    x = as_tensor(x)
    return where(x.data > 0, x, x * negative_slope)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit."""
    x = as_tensor(x)
    return where(x.data > 0, x, (x.exp() - 1.0) * alpha)


def selu(x: Tensor) -> Tensor:
    """Scaled exponential linear unit (Klambauer et al., 2017 constants)."""
    alpha = 1.6732632423543772
    scale = 1.0507009873554805
    return elu(x, alpha=alpha) * scale


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - np.max(x.data, axis=axis, keepdims=True)
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def dropout(x: Tensor, rate: float, rng: Optional[np.random.Generator] = None,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero a fraction ``rate`` of entries during training."""
    if not training or rate <= 0.0:
        return as_tensor(x)
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must be in [0, 1)")
    generator = rng if rng is not None else np.random.default_rng()
    x = as_tensor(x)
    mask = (generator.random(x.shape) >= rate).astype(x.dtype) / (1.0 - rate)
    return x * mask


def l2_norm(tensors: Iterable[Tensor]) -> Tensor:
    """Sum of squared entries across a collection of tensors (for weight decay)."""
    total: Optional[Tensor] = None
    for t in tensors:
        term = (as_tensor(t) ** 2).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total


def one_hot(indices: Sequence[int], depth: int) -> Tensor:
    """Encode integer ``indices`` as one-hot rows of width ``depth``."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= depth):
        raise ValueError("index out of range for one-hot encoding")
    out = np.zeros((indices.shape[0], depth), dtype=get_default_dtype())
    out[np.arange(indices.shape[0]), indices] = 1.0
    return Tensor(out)
