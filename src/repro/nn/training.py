"""Generic training loop with history, callbacks and early stopping.

The :class:`Trainer` here is model-agnostic: it iterates over an arbitrary
iterable of training items, calls a user-supplied ``loss_fn(model, item)``
that returns a scalar :class:`~repro.nn.tensor.Tensor`, back-propagates and
steps the optimiser.  :mod:`repro.models.trainer` builds the RouteNet-specific
loop on top of it.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.nn.module import Module
from repro.nn.optimizers import Optimizer, clip_gradients_by_norm
from repro.nn.tensor import Tensor

__all__ = ["TrainingConfig", "History", "EarlyStopping", "Trainer"]


@dataclasses.dataclass
class TrainingConfig:
    """Hyper-parameters of the generic training loop."""

    epochs: int = 10
    shuffle: bool = True
    gradient_clip_norm: float = 0.0
    log_every: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.gradient_clip_norm < 0:
            raise ValueError("gradient_clip_norm must be non-negative")


class History:
    """Per-epoch record of training and validation losses.

    Besides the losses, each epoch may record two throughput figures (both
    optional, ``None`` when the loop does not measure them):
    ``samples_per_sec`` — trained scenarios per wall-clock second — and
    ``peak_live_batches`` — the largest number of merged batches that were
    simultaneously materialised.  Together they make streaming-vs-in-memory
    regressions visible straight from the history, without the benchmark
    suite: an in-memory epoch holds every batch live, a streamed epoch only
    a bounded prefetch window.
    """

    def __init__(self) -> None:
        self.epochs: List[int] = []
        self.train_loss: List[float] = []
        self.val_loss: List[Optional[float]] = []
        self.epoch_seconds: List[float] = []
        self.samples_per_sec: List[Optional[float]] = []
        self.peak_live_batches: List[Optional[int]] = []

    def record(self, epoch: int, train_loss: float, val_loss: Optional[float],
               seconds: float, samples_per_sec: Optional[float] = None,
               peak_live_batches: Optional[int] = None) -> None:
        self.epochs.append(epoch)
        self.train_loss.append(train_loss)
        self.val_loss.append(val_loss)
        self.epoch_seconds.append(seconds)
        self.samples_per_sec.append(samples_per_sec)
        self.peak_live_batches.append(peak_live_batches)

    @property
    def best_val_loss(self) -> Optional[float]:
        observed = [v for v in self.val_loss if v is not None]
        return min(observed) if observed else None

    @property
    def best_train_loss(self) -> float:
        return min(self.train_loss) if self.train_loss else float("nan")

    def as_dict(self) -> Dict[str, list]:
        return {
            "epochs": list(self.epochs),
            "train_loss": list(self.train_loss),
            "val_loss": list(self.val_loss),
            "epoch_seconds": list(self.epoch_seconds),
            "samples_per_sec": list(self.samples_per_sec),
            "peak_live_batches": list(self.peak_live_batches),
        }


class EarlyStopping:
    """Stop training when the monitored loss stops improving."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0) -> None:
        if patience <= 0:
            raise ValueError("patience must be positive")
        self.patience = patience
        self.min_delta = min_delta
        self.best: Optional[float] = None
        self.wait = 0
        self.stopped_epoch: Optional[int] = None

    def update(self, value: float, epoch: int) -> bool:
        """Record ``value``; return True when training should stop."""
        if self.best is None or value < self.best - self.min_delta:
            self.best = value
            self.wait = 0
            return False
        self.wait += 1
        if self.wait >= self.patience:
            self.stopped_epoch = epoch
            return True
        return False


class Trainer:
    """Minimal but complete training loop.

    Parameters
    ----------
    model:
        The module being optimised.
    optimizer:
        Any :class:`repro.nn.optimizers.Optimizer` over ``model.parameters()``.
    loss_fn:
        Callable ``loss_fn(model, item) -> Tensor`` returning a scalar loss for
        one training item (one sample, or one mini-batch — the trainer does
        not care).
    config:
        :class:`TrainingConfig` instance.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable[[Module, object], Tensor],
        config: Optional[TrainingConfig] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.config = config if config is not None else TrainingConfig()
        self.history = History()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ #
    def train_step(self, item) -> float:
        """Run one optimisation step on a single item and return its loss."""
        self.model.train()
        self.optimizer.zero_grad()
        loss = self.loss_fn(self.model, item)
        if not isinstance(loss, Tensor):
            raise TypeError("loss_fn must return a Tensor")
        loss.backward()
        if self.config.gradient_clip_norm > 0:
            clip_gradients_by_norm(self.model.parameters(), self.config.gradient_clip_norm)
        self.optimizer.step()
        return float(loss.item())

    def evaluate(self, items: Sequence) -> float:
        """Average loss over ``items`` without updating parameters.

        The model's train/eval mode is restored to whatever it was before
        the call (evaluating an eval-mode model must not flip it back to
        training mode behind the caller's back).
        """
        was_training = self.model.training
        self.model.eval()
        losses = []
        from repro.nn.tensor import no_grad

        try:
            with no_grad():
                for item in items:
                    losses.append(float(self.loss_fn(self.model, item).item()))
        finally:
            self.model.train(was_training)
        if not losses:
            raise ValueError("evaluate() requires at least one item")
        return float(np.mean(losses))

    def fit(
        self,
        train_items: Sequence,
        val_items: Optional[Sequence] = None,
        early_stopping: Optional[EarlyStopping] = None,
        callbacks: Optional[Iterable[Callable[[int, History], None]]] = None,
    ) -> History:
        """Train for ``config.epochs`` epochs (or until early stopping fires)."""
        train_items = list(train_items)
        if not train_items:
            raise ValueError("fit() requires at least one training item")
        callbacks = list(callbacks) if callbacks else []

        for epoch in range(1, self.config.epochs + 1):
            start = time.perf_counter()
            order = np.arange(len(train_items))
            if self.config.shuffle:
                self._rng.shuffle(order)
            epoch_losses = [self.train_step(train_items[i]) for i in order]
            train_loss = float(np.mean(epoch_losses))
            val_loss = self.evaluate(val_items) if val_items else None
            seconds = time.perf_counter() - start
            self.history.record(epoch, train_loss, val_loss, seconds)

            if self.config.log_every and epoch % self.config.log_every == 0:
                message = f"epoch {epoch:3d}  train={train_loss:.5f}"
                if val_loss is not None:
                    message += f"  val={val_loss:.5f}"
                print(message)

            for callback in callbacks:
                callback(epoch, self.history)

            if early_stopping is not None:
                monitored = val_loss if val_loss is not None else train_loss
                if early_stopping.update(monitored, epoch):
                    break
        return self.history
