"""A small, self-contained deep-learning framework built on NumPy.

This subpackage is the substrate the reproduction uses in place of
TensorFlow/PyTorch (which are not available offline).  It provides:

* :class:`repro.nn.tensor.Tensor` — reverse-mode automatic differentiation
  over NumPy arrays.
* Layers (:mod:`repro.nn.layers`) and recurrent cells
  (:mod:`repro.nn.recurrent`) sufficient to express RouteNet and the
  Extended RouteNet architectures (dense layers, GRU/LSTM cells).
* Optimisers (:mod:`repro.nn.optimizers`), losses (:mod:`repro.nn.losses`)
  and evaluation metrics (:mod:`repro.nn.metrics`).
* A :class:`repro.nn.training.Trainer` with callbacks, early stopping and
  training history, and parameter (de)serialisation helpers.

The API intentionally mirrors the shape of mainstream frameworks so that the
model code in :mod:`repro.models` reads like the reference TensorFlow
implementation of RouteNet.
"""

from repro.nn.tensor import (
    Tensor,
    default_dtype,
    gather_segment_sum,
    get_default_dtype,
    make_multi_output,
    masked_where,
    no_grad,
    ones,
    randn,
    resolve_dtype,
    set_default_dtype,
    tensor,
    zeros,
)
from repro.nn import functional
from repro.nn.module import Module, Parameter
from repro.nn.layers import Dense, Dropout, Embedding, LayerNorm, Sequential
from repro.nn.recurrent import GRUCell, LSTMCell, RNNCellBase, ScanScatter, scan_rnn
from repro.nn.optimizers import (
    SGD,
    Adam,
    Momentum,
    Optimizer,
    RMSProp,
    ConstantSchedule,
    ExponentialDecay,
    StepDecay,
)
from repro.nn.losses import (
    huber_loss,
    mae_loss,
    mape_loss,
    mse_loss,
    log_mse_loss,
)
from repro.nn.metrics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_relative_error,
    pearson_correlation,
    r2_score,
    relative_errors,
)
from repro.nn.initializers import (
    glorot_normal,
    glorot_uniform,
    he_normal,
    he_uniform,
    normal_init,
    zeros_init,
)
from repro.nn.parallel import (
    GradientWorkerPool,
    SerialGradientExecutor,
    make_gradient_executor,
    path_weighted_average,
)
from repro.nn.serialization import load_parameters, save_parameters
from repro.nn.training import EarlyStopping, History, Trainer, TrainingConfig

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "zeros",
    "ones",
    "randn",
    "functional",
    "Module",
    "Parameter",
    "Dense",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Sequential",
    "GRUCell",
    "LSTMCell",
    "RNNCellBase",
    "ScanScatter",
    "scan_rnn",
    "make_multi_output",
    "Optimizer",
    "SGD",
    "Momentum",
    "RMSProp",
    "Adam",
    "ConstantSchedule",
    "ExponentialDecay",
    "StepDecay",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "mape_loss",
    "log_mse_loss",
    "relative_errors",
    "mean_relative_error",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "r2_score",
    "pearson_correlation",
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "he_normal",
    "normal_init",
    "zeros_init",
    "GradientWorkerPool",
    "SerialGradientExecutor",
    "make_gradient_executor",
    "path_weighted_average",
    "save_parameters",
    "load_parameters",
    "Trainer",
    "TrainingConfig",
    "EarlyStopping",
    "History",
]
