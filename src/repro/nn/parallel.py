"""Multiprocess data-parallel gradient computation over merged batches.

The per-step Python loop — building the autograd graph, running the RNN
scan, the backward pass — is the training bottleneck once memory is under
control (see ROADMAP).  This module parallelises it across batches with a
persistent pool of worker *processes*: each worker holds a full model
replica, the parent broadcasts the current parameters, every worker runs
forward + backward on one merged batch and returns
``(flat_gradient, loss, num_paths)``, and the parent path-weight-averages
the gradients and takes a single optimiser step.

Synchronous data-parallel semantics
-----------------------------------
One optimiser step consumes a *group* of up to ``num_workers`` batches; the
group gradient is the **path-weighted average** of the per-batch gradients

``g = sum_i(num_paths_i * g_i) / sum_i(num_paths_i)``

— the same weighting :meth:`repro.models.trainer.RouteNetTrainer.evaluate_loss`
applies to losses, so the group gradient equals the gradient of the mean
per-path loss over all paths in the group, exactly as if the group had been
merged into one giant disjoint-union batch.  The update rule therefore
depends only on ``num_workers`` (the group size), not on which engine runs
the members: :class:`SerialGradientExecutor` executes the identical
semantics in-process, and the equivalence tests hold the two engines to
bit-identical parameter trajectories.

Double-buffered parameter broadcast
-----------------------------------
Parameters travel through a shared-memory ring of **two** flat buffers
allocated at pool start: per group the parent writes the current parameter
vector into the next slot (one memcpy, instead of pickling the vector once
per worker through a pipe) and each step message carries only the slot
index plus a batch reference.  Two slots mean the broadcast for group
``k+1`` never overwrites the buffer group ``k`` was read from, so the
parent may publish new parameters the moment its optimiser step finishes —
the mechanism behind the trainer's ``overlap`` mode, where the parent
submits the next group (:meth:`GradientWorkerPool.submit_group`) and only
then does its per-epoch bookkeeping, validation pass and checkpoint write
while the workers are already computing (:meth:`collect_group` picks the
results up later).  Overlap never changes *what* is computed — submitted
parameters are always the fully-updated post-step vector — so overlapped
and non-overlapped runs are bit-identical.

Batches reach workers one of two ways: :meth:`set_batches` uploads a list
once and steps reference batches by index (the in-memory trainer, whose
pre-merged batches are reused every epoch), or
:meth:`submit_group_payload` ships the merged batches inside the step
messages (the streaming trainer, whose batches exist only transiently).

Fault tolerance
---------------
The pool supervises its workers (see :mod:`repro.supervision`): a worker
that dies or exceeds its per-task timeout is reaped and an identical
replacement is spawned from the same pickled payload and shared parameter
ring, the batch cache is re-uploaded, and every message the dead worker
had not answered is re-sent in order.  Because the parameter slot an
in-flight group reads from is never overwritten while that group is
uncollected (the ring has two slots and at most one group is in flight),
the replacement recomputes exactly the same gradients — a recovered run
is **bit-identical** to a fault-free one.  Respawns draw on a bounded
restart budget so a crash-looping farm fails loudly instead of spinning.
Ordinary in-task exceptions are *not* retried: they re-raise the worker's
traceback in the parent, exactly as before (a deterministic Python error
would only fail again).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.losses import huber_loss, mse_loss
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.supervision import (
    RestartBudget,
    SupervisedWorker,
    SupervisionPolicy,
    WorkerDied,
    WorkerTimedOut,
)
from repro.testing.faults import fault_point

__all__ = [
    "GradientWorkerPool",
    "SerialGradientExecutor",
    "make_gradient_executor",
    "path_weighted_average",
]

#: Result of one worker task: (flat gradient, scalar loss, paths in batch).
GradientResult = Tuple[np.ndarray, float, int]


def path_weighted_average(vectors: Sequence[np.ndarray],
                          weights: Sequence[int]) -> np.ndarray:
    """Average flat gradient vectors weighted by their batch's path count.

    ``sum_i(w_i * v_i) / sum_i(w_i)`` with ``w_i`` the number of paths in
    batch ``i`` — the weighting that makes a group of batches equivalent to
    one merged batch containing all their paths (each per-batch loss is
    already the *mean* over that batch's paths, so recombining means needs
    the path counts back).  Matches the loss weighting of
    ``RouteNetTrainer.evaluate_loss``.

    A single-element group returns its vector unchanged (bit-exact with the
    one-batch-per-step serial path).  The accumulation preserves the input
    dtype: float32 gradients are averaged in float32.
    """
    if len(vectors) != len(weights):
        raise ValueError("one weight per gradient vector is required")
    if not vectors:
        raise ValueError("cannot average an empty group of gradients")
    if len(vectors) == 1:
        return np.asarray(vectors[0])
    total = float(sum(weights))
    accumulated = np.zeros_like(np.asarray(vectors[0]))
    for vector, weight in zip(vectors, weights):
        accumulated += np.asarray(vector) * (float(weight) / total)
    return accumulated


def _compute_gradient(model: Module, batch, loss_name: str) -> GradientResult:
    """Forward + backward on one batch; the single compute kernel every
    execution engine (worker process or serial executor) runs, so their
    results are bit-identical for identical parameters and batch."""
    model.zero_grad()
    predictions = model(batch)
    targets = Tensor(np.asarray(batch.targets, dtype=predictions.data.dtype))
    if loss_name == "huber":
        loss = huber_loss(predictions, targets)
    elif loss_name == "mse":
        loss = mse_loss(predictions, targets)
    else:
        raise ValueError(f"unknown loss '{loss_name}'")
    loss.backward()
    return model.gradients_vector(), float(loss.item()), int(batch.num_paths)


def _replicate(model: Module) -> Module:
    """A fresh replica via a pickle round-trip (bit-identical parameters)."""
    return pickle.loads(pickle.dumps(model))


def _worker_main(conn, rank: int, payload: bytes, param_buffer,
                 param_dtype: str, param_count: int) -> None:
    """Worker process loop: cache batches, answer gradient requests.

    Protocol (parent → worker):
      ``("batches", [TensorizedSample, ...])``  replace the cached shard;
      ``("step", slot, batch_index)``           read the parameters from
                                                shared-memory ``slot``,
                                                compute on a cached batch;
      ``("step_payload", slot, batch)``         same, on a shipped batch;
      ``("close",)``                            exit.
    Replies: ``("ok", ...)`` or ``("error", traceback_string)``.
    """
    try:
        model, loss_name = pickle.loads(payload)
    except Exception:  # noqa: BLE001 - report the failure instead of dying mute
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok",))
    item_size = np.dtype(param_dtype).itemsize

    def load_params(slot: int) -> None:
        # A read-only view into the shared slot; load_parameters_vector
        # copies per parameter, so nothing in the model aliases the buffer
        # once this returns (the parent is free to rewrite the other slot).
        view = np.frombuffer(param_buffer, dtype=param_dtype, count=param_count,
                             offset=slot * param_count * item_size)
        model.load_parameters_vector(view)

    batches: list = []
    steps_handled = 0
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batches":
                batches = list(message[1])
                conn.send(("ok", len(batches)))
            elif kind in ("step", "step_payload"):
                try:
                    _, slot, work = message
                    fault_point("pool.step.start", rank=rank,
                                step=steps_handled)
                    steps_handled += 1
                    load_params(slot)
                    batch = batches[work] if kind == "step" else work
                    result = _compute_gradient(model, batch, loss_name)
                    conn.send(("ok",) + result)
                except Exception:  # noqa: BLE001 - ship the traceback to the parent
                    conn.send(("error", traceback.format_exc()))
            elif kind == "close":
                break
            else:
                conn.send(("error", f"unknown message kind {kind!r}"))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _ExecutorBase:
    """Shared bookkeeping for both execution engines.

    Both engines expose the same two-phase interface: :meth:`submit_group`
    / :meth:`submit_group_payload` hand a group of work out (at most one
    group in flight), :meth:`collect_group` returns its results.  The
    one-shot :meth:`run_group` / :meth:`run_group_payload` wrappers keep
    the original synchronous call style.
    """

    def __init__(self) -> None:
        self._uploaded_ids: Optional[tuple] = None
        self._in_flight: Optional[int] = None

    def set_batches(self, batches: Sequence) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def ensure_batches(self, batches: Sequence) -> None:
        """Upload ``batches`` unless the identical list is already cached.

        Identity (not equality) is the right key: pre-merged static batches
        are the same objects every epoch, so the upload happens once per
        ``fit``; per-epoch re-merged batches are fresh objects and re-upload.
        """
        ids = tuple(id(batch) for batch in batches)
        if ids != self._uploaded_ids:
            self.set_batches(batches)
            self._uploaded_ids = ids

    # ------------------------------------------------------------------ #
    def _check_idle(self) -> None:
        if self._in_flight is not None:
            raise RuntimeError(
                "a group is already in flight; collect_group() it first")

    def submit_group(self, flat_params: np.ndarray,
                     indices: Sequence[int]) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def submit_group_payload(self, flat_params: np.ndarray,
                             batches: Sequence) -> None:  # pragma: no cover
        raise NotImplementedError

    def collect_group(self) -> List[GradientResult]:  # pragma: no cover - abstract
        raise NotImplementedError

    def run_group(self, flat_params: np.ndarray,
                  indices: Sequence[int]) -> List[GradientResult]:
        """Synchronous submit + collect over cached-batch indices."""
        self.submit_group(flat_params, indices)
        return self.collect_group()

    def run_group_payload(self, flat_params: np.ndarray,
                          batches: Sequence) -> List[GradientResult]:
        """Synchronous submit + collect over shipped batches."""
        self.submit_group_payload(flat_params, batches)
        return self.collect_group()

    def close(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SerialGradientExecutor(_ExecutorBase):
    """In-process engine with the exact semantics of :class:`GradientWorkerPool`.

    Runs every group member sequentially on a pickle-round-tripped replica —
    no processes, no IPC — so ``num_workers > 1`` training can be executed
    (and debugged, and tested for bit-exact equivalence) on a single core.
    ``submit_group`` merely records the work; the compute happens at
    :meth:`collect_group`, which makes the engine a semantics twin of the
    pool under the trainer's overlap mode too (no wall-clock overlap, same
    parameter trajectory).
    """

    def __init__(self, model: Module, num_workers: int = 1, loss: str = "mse") -> None:
        super().__init__()
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers
        self._loss_name = loss
        self._replica = _replicate(model)
        self._batches: list = []
        self._pending = None

    def set_batches(self, batches: Sequence) -> None:
        self._batches = list(batches)

    def submit_group(self, flat_params: np.ndarray,
                     indices: Sequence[int]) -> None:
        self._check_idle()
        self._pending = ("indices", list(indices), np.asarray(flat_params))
        self._in_flight = len(self._pending[1])

    def submit_group_payload(self, flat_params: np.ndarray,
                             batches: Sequence) -> None:
        self._check_idle()
        self._pending = ("payload", list(batches), np.asarray(flat_params))
        self._in_flight = len(self._pending[1])

    def collect_group(self) -> List[GradientResult]:
        if self._pending is None:
            raise RuntimeError("no group in flight")
        kind, members, flat_params = self._pending
        self._pending = None
        self._in_flight = None
        results = []
        for member in members:
            self._replica.load_parameters_vector(flat_params)
            batch = self._batches[member] if kind == "indices" else member
            results.append(_compute_gradient(self._replica, batch,
                                             self._loss_name))
        return results

    def close(self) -> None:
        self._batches = []
        self._pending = None
        self._in_flight = None


class GradientWorkerPool(_ExecutorBase):
    """A persistent pool of worker processes computing per-batch gradients.

    Each worker is started once with a pickled replica of ``model`` and kept
    alive for the executor's lifetime; a group then costs one shared-memory
    parameter publish plus one small step message per member, and one flat
    gradient back per member.  Workers cache an uploaded batch list (steps
    reference indices into it), or receive streaming batches inline via
    :meth:`submit_group_payload`.

    Parameters
    ----------
    model:
        The module whose replicas the workers hold.  Must be picklable
        (every model in :mod:`repro.models` is).
    num_workers:
        Number of worker processes (≥ 1).
    loss:
        ``"mse"`` or ``"huber"`` — must match the trainer's loss.
    start_method:
        ``multiprocessing`` start method; default ``"fork"`` where available
        (near-instant worker start) falling back to ``"spawn"``.
    supervision:
        The fault-tolerance policy (see the module docstring).  ``None``
        uses the defaults: no task timeout, a restart budget of 8.
    task_timeout:
        Convenience override for ``supervision.task_timeout`` — seconds one
        gradient task may run before its worker is presumed hung, killed
        and respawned.  ``None`` (default) disables the timeout.
    """

    def __init__(self, model: Module, num_workers: int = 1, loss: str = "mse",
                 start_method: Optional[str] = None,
                 supervision: Optional[SupervisionPolicy] = None,
                 task_timeout: Optional[float] = None) -> None:
        super().__init__()
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers
        if supervision is None:
            supervision = SupervisionPolicy()
        if task_timeout is not None:
            supervision = SupervisionPolicy(
                task_timeout=task_timeout,
                max_retries=supervision.max_retries,
                max_restarts=supervision.max_restarts,
                poll_interval=supervision.poll_interval)
        self.supervision = supervision
        self._restart_budget = RestartBudget(supervision.max_restarts)
        if start_method is None:
            available = mp.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._context = mp.get_context(start_method)
        self._payload = pickle.dumps((model, loss))
        # The double-buffered broadcast ring: two flat parameter slots in
        # shared memory, written alternately (see the module docstring).
        template = model.parameters_vector()
        self._param_dtype = template.dtype
        self._param_count = int(template.size)
        slot_bytes = max(1, self._param_count * self._param_dtype.itemsize)
        self._param_buffer = self._context.RawArray("b", 2 * slot_bytes)
        self._next_slot = 0
        #: Messages sent to each worker whose reply has not yet arrived,
        #: in send order — exactly what must be re-dispatched after a
        #: respawn ("batches" uploads are re-sent from _last_batches
        #: instead, so they are not tracked here).
        self._outstanding: Dict[int, List[tuple]] = {}
        self._last_batches: Optional[list] = None
        self._workers: List[SupervisedWorker] = []
        try:
            # Start-up failures propagate (the trainer degrades to the
            # serial backend); the restart budget only covers later faults.
            self._workers = [SupervisedWorker(rank, self._spawn_worker)
                             for rank in range(num_workers)]
            self._outstanding = {rank: [] for rank in range(num_workers)}
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    def _spawn_worker(self, rank: int):
        """Start worker ``rank`` and complete its ready handshake."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, rank, self._payload, self._param_buffer,
                  self._param_dtype.str, self._param_count),
            daemon=True)
        process.start()
        child_conn.close()
        try:
            reply = parent_conn.recv()
        except (EOFError, OSError) as error:
            raise RuntimeError(
                f"gradient worker {rank} died during start-up "
                f"({error!r})") from error
        if reply[0] == "error":
            raise RuntimeError(
                f"gradient worker {rank} failed to start:\n{reply[1]}")
        return process, parent_conn

    def _recover(self, rank: int, reason: str) -> None:
        """Replace a dead/hung worker and re-dispatch its unanswered work.

        The replacement is started from the same pickled payload and the
        same shared parameter ring; the batch cache is re-uploaded and the
        rank's outstanding messages are re-sent in their original order —
        and since the ring slot those messages reference is never rewritten
        while their group is in flight, the recomputed gradients are
        bit-identical to what the dead worker would have produced.
        """
        worker = self._workers[rank]
        while True:
            self._restart_budget.spend(reason)
            worker.respawn()
            try:
                if self._last_batches is not None:
                    worker.send(("batches", self._last_batches))
                    reply = worker.recv_within(
                        self.supervision.deadline(),
                        self.supervision.poll_interval)
                    if reply[0] == "error":  # pragma: no cover - upload bug
                        raise RuntimeError(
                            f"gradient worker {rank} rejected its batch "
                            f"re-upload after a respawn:\n{reply[1]}")
                for message in self._outstanding[rank]:
                    worker.send(message)
                return
            except (WorkerDied, WorkerTimedOut) as error:
                reason = f"respawned worker {rank} failed again: {error}"

    def _expect_ok(self, rank: int, tasks_queued: int = 1):
        """Receive one reply from ``rank``, recovering from farm faults.

        Returns the worker's ``("ok", ...)`` tuple; an in-task ``("error",
        traceback)`` reply raises (deterministic failures are not retried).
        Worker death or a task timeout triggers :meth:`_recover` and the
        receive is retried against the replacement.
        """
        while True:
            worker = self._workers[rank]
            try:
                reply = worker.recv_within(
                    self.supervision.deadline(tasks_queued),
                    self.supervision.poll_interval)
            except (WorkerDied, WorkerTimedOut) as error:
                self._recover(rank, str(error))
                continue
            if self._outstanding[rank]:
                self._outstanding[rank].pop(0)
            if reply[0] == "error":
                raise RuntimeError(
                    f"gradient worker {rank} failed:\n{reply[1]}")
            if reply[0] != "ok":  # pragma: no cover - protocol violation
                raise RuntimeError(
                    f"unexpected reply from worker {rank}: {reply[0]!r}")
            return reply

    def _send_tracked(self, rank: int, message: tuple) -> None:
        """Send a step message, recovering if the worker is already dead."""
        while True:
            try:
                self._workers[rank].send(message)
            except WorkerDied as error:
                self._recover(rank, str(error))
                continue
            self._outstanding[rank].append(message)
            return

    # ------------------------------------------------------------------ #
    def set_batches(self, batches: Sequence) -> None:
        """Broadcast the batch list to every worker (replacing its cache)."""
        self._last_batches = list(batches)
        acknowledged = set()
        for rank in range(self.num_workers):
            try:
                self._workers[rank].send(("batches", self._last_batches))
            except WorkerDied as error:
                # Recovery re-uploads the cache and consumes the ack itself.
                self._recover(rank, str(error))
                acknowledged.add(rank)
        for rank in range(self.num_workers):
            if rank in acknowledged:
                continue
            worker = self._workers[rank]
            try:
                reply = worker.recv_within(self.supervision.deadline(),
                                           self.supervision.poll_interval)
            except (WorkerDied, WorkerTimedOut) as error:
                self._recover(rank, str(error))
                continue
            if reply[0] == "error":  # pragma: no cover - upload bug
                raise RuntimeError(
                    f"gradient worker {rank} rejected its batch upload:\n"
                    f"{reply[1]}")

    def _publish_params(self, flat_params: np.ndarray) -> int:
        """Write the parameter vector into the next ring slot; return it."""
        flat = np.asarray(flat_params, dtype=self._param_dtype).reshape(-1)
        if flat.size != self._param_count:
            raise ValueError(
                f"expected a flat vector of {self._param_count} parameters, "
                f"got {flat.size}")
        slot = self._next_slot
        self._next_slot = 1 - slot
        view = np.frombuffer(self._param_buffer, dtype=self._param_dtype,
                             count=self._param_count,
                             offset=slot * self._param_count * self._param_dtype.itemsize)
        view[:] = flat
        return slot

    def _submit(self, flat_params: np.ndarray, kind: str, members: list) -> None:
        self._check_idle()
        slot = self._publish_params(flat_params)
        for position, member in enumerate(members):
            self._send_tracked(position % self.num_workers, (kind, slot, member))
        self._in_flight = len(members)

    def submit_group(self, flat_params: np.ndarray,
                     indices: Sequence[int]) -> None:
        """Dispatch a group of cached-batch indices (round-robin) and return
        immediately; :meth:`collect_group` gathers the gradients.  The
        parameters are published to the shared ring *now*, so the caller may
        keep mutating its own model afterwards."""
        self._submit(flat_params, "step", [int(i) for i in indices])

    def submit_group_payload(self, flat_params: np.ndarray,
                             batches: Sequence) -> None:
        """Dispatch a group of batches shipped inside the step messages —
        the streaming-trainer path, where batches are transient and never
        uploaded as a cached list."""
        self._submit(flat_params, "step_payload", list(batches))

    def collect_group(self) -> List[GradientResult]:
        """Gather the in-flight group's results, in submission order
        regardless of which worker finishes first, so downstream averaging
        is deterministic."""
        if self._in_flight is None:
            raise RuntimeError("no group in flight")
        count = self._in_flight
        self._in_flight = None
        results: List[GradientResult] = []
        for position in range(count):
            rank = position % self.num_workers
            # The rank's whole unanswered backlog shares one deadline — the
            # reply being waited on may legitimately be queued behind the
            # rank's other still-outstanding tasks.
            reply = self._expect_ok(
                rank, tasks_queued=max(1, len(self._outstanding[rank])))
            results.append((reply[1], reply[2], reply[3]))
        return results

    @property
    def restarts(self) -> int:
        """Total worker respawns this pool has performed (telemetry)."""
        return self._restart_budget.spent

    def close(self) -> None:
        """Shut the workers down (best effort, safe to call repeatedly)."""
        for worker in self._workers:
            worker.close(farewell=("close",))
        self._workers = []
        self._outstanding = {}

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass


def make_gradient_executor(model: Module, num_workers: int, loss: str = "mse",
                           backend: str = "process",
                           start_method: Optional[str] = None,
                           task_timeout: Optional[float] = None):
    """Build the gradient execution engine for data-parallel training.

    ``backend="process"`` returns a :class:`GradientWorkerPool`;
    ``backend="serial"`` returns a :class:`SerialGradientExecutor` with
    identical update semantics (useful on single-core machines and for the
    bit-exact process-vs-serial equivalence tests).  ``task_timeout``
    bounds one gradient task's wall time on the process backend (a hung
    worker is killed and respawned); the serial backend ignores it.
    """
    if backend == "process":
        return GradientWorkerPool(model, num_workers, loss=loss,
                                  start_method=start_method,
                                  task_timeout=task_timeout)
    if backend == "serial":
        return SerialGradientExecutor(model, num_workers, loss=loss)
    raise ValueError(f"unknown parallel backend '{backend}' (use 'process' or 'serial')")
