"""Weight initialisation schemes used by the layers in :mod:`repro.nn`."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.tensor import DTypeLike, resolve_dtype

__all__ = [
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "he_normal",
    "orthogonal",
    "normal_init",
    "uniform_init",
    "zeros_init",
    "ones_init",
]


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


def _cast(values: np.ndarray, dtype: DTypeLike) -> np.ndarray:
    """Cast sampled values to the requested (or default) dtype, C-contiguous.

    Slicing tricks (e.g. the transpose in :func:`orthogonal`) can leave
    F-ordered arrays behind; parameters are stored C-contiguous so matmuls
    and flat views behave predictably.
    """
    return np.ascontiguousarray(values, dtype=resolve_dtype(dtype))


def glorot_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
                   dtype: DTypeLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (good default for tanh/sigmoid nets)."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(_rng(rng).uniform(-limit, limit, size=shape), dtype)


def glorot_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
                  dtype: DTypeLike = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _cast(_rng(rng).normal(0.0, std, size=shape), dtype)


def he_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
               dtype: DTypeLike = None) -> np.ndarray:
    """He uniform initialisation (good default for ReLU nets)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return _cast(_rng(rng).uniform(-limit, limit, size=shape), dtype)


def he_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
              dtype: DTypeLike = None) -> np.ndarray:
    """He normal initialisation."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return _cast(_rng(rng).normal(0.0, std, size=shape), dtype)


def orthogonal(shape: Tuple[int, ...], gain: float = 1.0,
               rng: Optional[np.random.Generator] = None,
               dtype: DTypeLike = None) -> np.ndarray:
    """Orthogonal initialisation (recommended for recurrent weight matrices)."""
    if len(shape) < 2:
        raise ValueError("orthogonal initialisation requires at least 2 dimensions")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = _rng(rng).normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    q = q[:rows, :cols] if rows >= cols else q.T[:rows, :cols]
    return _cast(gain * q.reshape(shape), dtype)


def normal_init(shape: Tuple[int, ...], std: float = 0.05,
                rng: Optional[np.random.Generator] = None,
                dtype: DTypeLike = None) -> np.ndarray:
    """Gaussian initialisation with standard deviation ``std``."""
    return _cast(_rng(rng).normal(0.0, std, size=shape), dtype)


def uniform_init(shape: Tuple[int, ...], limit: float = 0.05,
                 rng: Optional[np.random.Generator] = None,
                 dtype: DTypeLike = None) -> np.ndarray:
    """Uniform initialisation in ``[-limit, limit]``."""
    return _cast(_rng(rng).uniform(-limit, limit, size=shape), dtype)


def zeros_init(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
               dtype: DTypeLike = None) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape, dtype=resolve_dtype(dtype))


def ones_init(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
              dtype: DTypeLike = None) -> np.ndarray:
    """All-ones initialisation (used for normalisation gains)."""
    return np.ones(shape, dtype=resolve_dtype(dtype))
