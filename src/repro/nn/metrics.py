"""Evaluation metrics operating on plain NumPy arrays (no gradients).

The central quantity of the paper's evaluation (Fig. 2) is the *relative
error* of the delay prediction for every source-destination path, whose
cumulative distribution function is then plotted.  :func:`relative_errors`
and :func:`cumulative_distribution` implement exactly that pipeline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "relative_errors",
    "absolute_relative_errors",
    "mean_relative_error",
    "median_relative_error",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "root_mean_squared_error",
    "r2_score",
    "pearson_correlation",
    "cumulative_distribution",
    "error_quantiles",
]


def _to_arrays(predictions, targets) -> Tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(getattr(predictions, "data", predictions), dtype=np.float64).ravel()
    targets = np.asarray(getattr(targets, "data", targets), dtype=np.float64).ravel()
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same number of elements")
    if predictions.size == 0:
        raise ValueError("metrics require at least one element")
    return predictions, targets


def relative_errors(predictions, targets, epsilon: float = 1e-12) -> np.ndarray:
    """Signed relative error ``(prediction - target) / target`` per element."""
    predictions, targets = _to_arrays(predictions, targets)
    return (predictions - targets) / np.maximum(np.abs(targets), epsilon)


def absolute_relative_errors(predictions, targets, epsilon: float = 1e-12) -> np.ndarray:
    """Absolute relative error per element."""
    return np.abs(relative_errors(predictions, targets, epsilon))


def mean_relative_error(predictions, targets) -> float:
    """Mean absolute relative error (a single-number summary of Fig. 2)."""
    return float(absolute_relative_errors(predictions, targets).mean())


def median_relative_error(predictions, targets) -> float:
    """Median absolute relative error."""
    return float(np.median(absolute_relative_errors(predictions, targets)))


def mean_absolute_error(predictions, targets) -> float:
    """Mean absolute error."""
    predictions, targets = _to_arrays(predictions, targets)
    return float(np.abs(predictions - targets).mean())


def mean_absolute_percentage_error(predictions, targets) -> float:
    """MAPE in percent."""
    return 100.0 * mean_relative_error(predictions, targets)


def root_mean_squared_error(predictions, targets) -> float:
    """Root mean squared error."""
    predictions, targets = _to_arrays(predictions, targets)
    return float(np.sqrt(((predictions - targets) ** 2).mean()))


def r2_score(predictions, targets) -> float:
    """Coefficient of determination."""
    predictions, targets = _to_arrays(predictions, targets)
    residual = ((targets - predictions) ** 2).sum()
    total = ((targets - targets.mean()) ** 2).sum()
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return float(1.0 - residual / total)


def pearson_correlation(predictions, targets) -> float:
    """Pearson correlation coefficient between predictions and targets."""
    predictions, targets = _to_arrays(predictions, targets)
    if predictions.std() == 0.0 or targets.std() == 0.0:
        return 0.0
    return float(np.corrcoef(predictions, targets)[0, 1])


def cumulative_distribution(values, num_points: int = 200) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``values`` evaluated at ``num_points`` locations.

    Returns ``(x, F(x))`` suitable for plotting or tabulation, matching the
    presentation of Fig. 2 in the paper.
    """
    values = np.sort(np.asarray(values, dtype=np.float64).ravel())
    if values.size == 0:
        raise ValueError("cannot compute the CDF of an empty array")
    xs = np.linspace(values[0], values[-1], num_points)
    cdf = np.searchsorted(values, xs, side="right") / values.size
    return xs, cdf


def error_quantiles(values, quantiles=(0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99)) -> dict:
    """Return the requested quantiles of an error distribution as a dict."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("cannot compute quantiles of an empty array")
    return {f"p{int(q * 100)}": float(np.quantile(values, q)) for q in quantiles}
