"""Compiled step kernels for the streaming RNN scan.

The interpreted :func:`repro.nn.recurrent.scan_rnn` re-enters the autograd
tape at every hop: each step gathers its input rows, builds a small Tensor
subgraph through the cell, and scatters outputs with ``np.add.at``.  For the
known cells (GRU/LSTM) nothing in that subgraph is dynamic — the whole scan
is a fixed pipeline of BLAS calls and index moves once the (topology, bucket)
is known.  This module compiles that pipeline:

* :func:`compile_scan_spec` turns the per-step index arrays of a
  :class:`~repro.models.message_passing.ScanPlan` into a
  :class:`ScanKernelSpec` — per-step contiguous row indices, invalid-row
  lists, and sort/offset arrays that let every scatter run as
  ``np.add.reduceat`` over presorted segments instead of ``np.add.at``.
  Specs are built once per (topology, bucket) and memoised on the plan.
* :func:`compile_step_kernel` wraps a :class:`~repro.nn.recurrent.GRUCell`
  or :class:`~repro.nn.recurrent.LSTMCell` in a step kernel exposing the
  cell maths as raw-NumPy forward and closed-form VJP routines that write
  into caller-provided buffers.
* :func:`run_compiled_scan` executes the spec: the input projection
  ``source @ W_in + bias`` is hoisted out of the step loop (one BLAS call
  per source per scan, amortised over every hop that reads it), each step is
  a ``take``-into-buffer + fused cell step + masked restore, and backward
  re-derives each step's gates from the carried-state checkpoint without
  ever building a Tensor graph.  Input gradients accumulate into a
  per-source projection-gradient matrix and are folded into the weight,
  bias and source gradients with one matmul each at the end of the scan.

Cells other than GRU/LSTM fall back to the interpreted scan transparently
(:func:`compile_step_kernel` returns ``None`` for them).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.tensor import (
    _GRAD_BUFFER_POOL,
    Tensor,
    is_grad_enabled,
    make_multi_output,
)

__all__ = [
    "StepPlan",
    "ScanKernelSpec",
    "compile_scan_spec",
    "compile_step_kernel",
    "run_compiled_scan",
    "GRUStepKernel",
    "LSTMStepKernel",
]


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    # Same branch-free stable formulation as Tensor.sigmoid, so the compiled
    # path reproduces the interpreted scan to rounding error.
    decay = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + decay), decay / (1.0 + decay))


# ---------------------------------------------------------------------------
# Step kernels: raw-NumPy cell maths with closed-form VJPs.
# ---------------------------------------------------------------------------


class GRUStepKernel:
    """Raw-NumPy GRU step over a pre-projected input.

    ``gx`` rows are ``x @ W_in + bias`` (three gates stacked); the kernel
    only adds the recurrent contribution, so the per-step BLAS cost is the
    single ``state @ W_hh`` that the recurrence genuinely requires.
    """

    def __init__(self, cell) -> None:
        self.cell = cell
        self.hidden = cell.hidden_size
        self.weight_input = cell.weight_input
        self.weight_hidden = cell.weight_hidden
        self.bias = cell.bias
        self.gate_width = 3 * cell.hidden_size
        self.state_width = cell.hidden_size
        self._dgh_scratch: Optional[np.ndarray] = None

    def project(self, source: np.ndarray) -> np.ndarray:
        return source @ self.weight_input.data + self.bias.data

    def step(self, gx: np.ndarray, state: np.ndarray, out: np.ndarray) -> np.ndarray:
        hidden = self.hidden
        gh = state @ self.weight_hidden.data
        update = _stable_sigmoid(gx[:, :hidden] + gh[:, :hidden])
        reset = _stable_sigmoid(gx[:, hidden:2 * hidden] + gh[:, hidden:2 * hidden])
        candidate = np.tanh(gx[:, 2 * hidden:] + reset * gh[:, 2 * hidden:])
        np.subtract(1.0, update, out=out)
        out *= candidate
        out += update * state
        return out

    def step_backward(self, gx: np.ndarray, state: np.ndarray, d_new: np.ndarray,
                      dgx_out: np.ndarray, d_prev_out: np.ndarray,
                      weight_hidden_grad: np.ndarray) -> None:
        hidden = self.hidden
        weight_hidden = self.weight_hidden.data
        gh = state @ weight_hidden
        gh_candidate = gh[:, 2 * hidden:]
        update = _stable_sigmoid(gx[:, :hidden] + gh[:, :hidden])
        reset = _stable_sigmoid(gx[:, hidden:2 * hidden] + gh[:, hidden:2 * hidden])
        candidate = np.tanh(gx[:, 2 * hidden:] + reset * gh_candidate)

        d_update = dgx_out[:, :hidden]
        d_reset = dgx_out[:, hidden:2 * hidden]
        d_candidate = dgx_out[:, 2 * hidden:]

        # Pre-activation gate gradients, written straight into the dgx view.
        np.multiply(d_new, 1.0 - update, out=d_candidate)
        d_candidate *= 1.0 - candidate * candidate
        np.multiply(d_candidate, gh_candidate, out=d_reset)
        d_reset *= reset * (1.0 - reset)
        np.multiply(d_new, state - candidate, out=d_update)
        d_update *= update * (1.0 - update)

        # The recurrent gate grads differ from dgx only in the candidate
        # block (reset-scaled), so build them in a reused scratch array.
        dgh = self._dgh_scratch
        if dgh is None or dgh.shape != dgx_out.shape or dgh.dtype != dgx_out.dtype:
            dgh = self._dgh_scratch = np.empty_like(dgx_out)
        dgh[:, :2 * hidden] = dgx_out[:, :2 * hidden]
        np.multiply(d_candidate, reset, out=dgh[:, 2 * hidden:])

        np.matmul(dgh, weight_hidden.T, out=d_prev_out)
        d_prev_out += d_new * update
        weight_hidden_grad += state.T @ dgh


class LSTMStepKernel:
    """Raw-NumPy LSTM step over a pre-projected input (packed ``[h, c]`` state)."""

    def __init__(self, cell) -> None:
        self.cell = cell
        self.hidden = cell.hidden_size
        self.weight_input = cell.weight_input
        self.weight_hidden = cell.weight_hidden
        self.bias = cell.bias
        self.gate_width = 4 * cell.hidden_size
        self.state_width = 2 * cell.hidden_size

    def project(self, source: np.ndarray) -> np.ndarray:
        return source @ self.weight_input.data + self.bias.data

    def _gates(self, gx: np.ndarray, state: np.ndarray):
        hidden = self.hidden
        h_prev = state[:, :hidden]
        gates = gx + h_prev @ self.weight_hidden.data
        input_gate = _stable_sigmoid(gates[:, :hidden])
        forget_gate = _stable_sigmoid(gates[:, hidden:2 * hidden])
        output_gate = _stable_sigmoid(gates[:, 2 * hidden:3 * hidden])
        candidate = np.tanh(gates[:, 3 * hidden:])
        return input_gate, forget_gate, output_gate, candidate

    def step(self, gx: np.ndarray, state: np.ndarray, out: np.ndarray) -> np.ndarray:
        hidden = self.hidden
        c_prev = state[:, hidden:]
        input_gate, forget_gate, output_gate, candidate = self._gates(gx, state)
        h_out = out[:, :hidden]
        c_out = out[:, hidden:]
        np.multiply(forget_gate, c_prev, out=c_out)
        c_out += input_gate * candidate
        np.tanh(c_out, out=h_out)
        h_out *= output_gate
        return out

    def step_backward(self, gx: np.ndarray, state: np.ndarray, d_new: np.ndarray,
                      dgx_out: np.ndarray, d_prev_out: np.ndarray,
                      weight_hidden_grad: np.ndarray) -> None:
        hidden = self.hidden
        weight_hidden = self.weight_hidden.data
        h_prev = state[:, :hidden]
        c_prev = state[:, hidden:]
        input_gate, forget_gate, output_gate, candidate = self._gates(gx, state)
        c_new = forget_gate * c_prev + input_gate * candidate
        tanh_c = np.tanh(c_new)

        d_hidden = d_new[:, :hidden]
        d_cell_ext = d_new[:, hidden:]
        d_cell = d_cell_ext + d_hidden * output_gate * (1.0 - tanh_c * tanh_c)

        d_input = dgx_out[:, :hidden]
        d_forget = dgx_out[:, hidden:2 * hidden]
        d_output = dgx_out[:, 2 * hidden:3 * hidden]
        d_candidate = dgx_out[:, 3 * hidden:]
        np.multiply(d_cell, candidate, out=d_input)
        d_input *= input_gate * (1.0 - input_gate)
        np.multiply(d_cell, c_prev, out=d_forget)
        d_forget *= forget_gate * (1.0 - forget_gate)
        np.multiply(d_hidden, tanh_c, out=d_output)
        d_output *= output_gate * (1.0 - output_gate)
        np.multiply(d_cell, input_gate, out=d_candidate)
        d_candidate *= 1.0 - candidate * candidate

        # The LSTM's input and recurrent paths share the same pre-activation
        # gates, so dgx doubles as the recurrent gate gradient.
        np.matmul(dgx_out, weight_hidden.T, out=d_prev_out[:, :hidden])
        np.multiply(d_cell, forget_gate, out=d_prev_out[:, hidden:])
        weight_hidden_grad += h_prev.T @ dgx_out


def compile_step_kernel(cell):
    """Return a step kernel for ``cell``, or ``None`` if it has no compiled form."""
    from repro.nn import recurrent

    if type(cell) is recurrent.GRUCell:
        return GRUStepKernel(cell)
    if type(cell) is recurrent.LSTMCell:
        return LSTMStepKernel(cell)
    return None


# ---------------------------------------------------------------------------
# Scan specs: precompiled per-step index/offset arrays.
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class StepPlan:
    """Precompiled index arrays for one scan step.

    ``in_perm``/``in_starts``/``in_entities`` sort the step's source rows by
    entity so the input-gradient scatter runs as ``np.add.reduceat`` over
    contiguous runs; the ``emit_*`` arrays do the same for the forward
    output scatter (``emit_unique_segments`` are unique, so the follow-up
    fancy ``+=`` is exact).  A step whose mask column is entirely invalid is
    a no-op for both passes and carries ``valid_count == 0`` with every
    index array empty/``None``.
    """

    source: int
    rows: np.ndarray
    valid_count: int
    invalid_rows: Optional[np.ndarray]
    valid_column: Optional[np.ndarray]
    in_perm: Optional[np.ndarray]
    in_starts: Optional[np.ndarray]
    in_entities: Optional[np.ndarray]
    emit_rows: Optional[np.ndarray] = None
    emit_segments: Optional[np.ndarray] = None
    emit_sorted_rows: Optional[np.ndarray] = None
    emit_starts: Optional[np.ndarray] = None
    emit_unique_segments: Optional[np.ndarray] = None


@dataclasses.dataclass
class ScanKernelSpec:
    """Compiled form of a scan plan: one :class:`StepPlan` per step."""

    num_paths: int
    num_steps: int
    has_scatter: bool
    steps: List[StepPlan]
    used_sources: Tuple[int, ...]


def compile_scan_spec(step_sources: np.ndarray, step_rows: np.ndarray,
                      mask: np.ndarray, scatter=None) -> ScanKernelSpec:
    """Precompile the index arrays of a scan into a :class:`ScanKernelSpec`.

    Built once per (topology, bucket) and reused for every forward/backward
    over that batch shape; all sorting and uniqueness analysis happens here
    rather than inside the step loop.
    """
    step_rows = np.asarray(step_rows, dtype=np.int64)
    if step_rows.ndim != 2:
        raise ValueError("step_rows must have shape (num_paths, num_steps)")
    num_paths, num_steps = step_rows.shape
    step_sources = np.asarray(step_sources, dtype=np.int64)
    valid = np.asarray(mask) > 0
    if valid.shape != (num_paths, num_steps):
        raise ValueError(f"mask shape {valid.shape} does not match {(num_paths, num_steps)}")

    steps: List[StepPlan] = []
    used = set()
    for step in range(num_steps):
        source = int(step_sources[step])
        column = valid[:, step]
        valid_count = int(column.sum())
        if valid_count == 0:
            steps.append(StepPlan(
                source=source, rows=np.zeros(0, dtype=np.int64), valid_count=0,
                invalid_rows=None, valid_column=None,
                in_perm=None, in_starts=None, in_entities=None))
            continue

        rows = np.ascontiguousarray(step_rows[:, step])
        in_perm = np.argsort(rows, kind="stable")
        sorted_rows = rows[in_perm]
        in_entities, in_starts = np.unique(sorted_rows, return_index=True)

        fully_valid = valid_count == num_paths
        invalid_rows = None if fully_valid else np.flatnonzero(~column)
        valid_column = None if fully_valid else np.ascontiguousarray(column[:, None])

        plan = StepPlan(
            source=source, rows=rows, valid_count=valid_count,
            invalid_rows=invalid_rows, valid_column=valid_column,
            in_perm=in_perm, in_starts=in_starts, in_entities=in_entities)

        if scatter is not None and scatter.rows[step] is not None \
                and len(scatter.rows[step]) > 0:
            emit_rows = np.asarray(scatter.rows[step], dtype=np.int64)
            emit_segments = np.asarray(scatter.segment_ids[step], dtype=np.int64)
            emit_perm = np.argsort(emit_segments, kind="stable")
            sorted_segments = emit_segments[emit_perm]
            unique_segments, emit_starts = np.unique(sorted_segments, return_index=True)
            plan.emit_rows = emit_rows
            plan.emit_segments = emit_segments
            plan.emit_sorted_rows = emit_rows[emit_perm]
            plan.emit_starts = emit_starts
            plan.emit_unique_segments = unique_segments

        used.add(source)
        steps.append(plan)

    return ScanKernelSpec(
        num_paths=num_paths, num_steps=num_steps,
        has_scatter=scatter is not None, steps=steps,
        used_sources=tuple(sorted(used)))


# ---------------------------------------------------------------------------
# Executor.
# ---------------------------------------------------------------------------


def run_compiled_scan(
    kernel,
    source_tensors: Sequence[Tensor],
    state_tensor: Tensor,
    spec: ScanKernelSpec,
    scatter,
) -> Tuple[Optional[Tensor], Tensor]:
    """Execute a compiled scan spec; mirrors :func:`scan_rnn`'s contract.

    Forward never touches the autograd tape: projections are hoisted to one
    BLAS call per source, each step is a ``take`` into a reused gate buffer
    plus the kernel's fused step, and emission uses presorted
    ``np.add.reduceat``.  Backward walks the carried-state checkpoints in
    reverse through the kernel's closed-form VJPs, accumulating input
    gradients into per-source projection-gradient matrices that are folded
    into the weight/bias/source gradients once per scan.
    """
    num_paths = spec.num_paths
    state = state_tensor.data
    initial_array = state
    state_size = state.shape[1]
    dtype = state.dtype

    parameters = tuple(kernel.cell.parameters())
    parents = tuple(source_tensors) + (state_tensor,) + parameters
    grad_needed = is_grad_enabled() and any(p.requires_grad for p in parents)

    projections = {s: kernel.project(source_tensors[s].data) for s in spec.used_sources}
    gx = np.empty((num_paths, kernel.gate_width), dtype=dtype)
    aggregated = (np.zeros((scatter.num_segments, state_size), dtype=dtype)
                  if scatter is not None else None)

    checkpoints: Optional[List[np.ndarray]] = [] if grad_needed else None
    spare: Optional[np.ndarray] = None
    for plan in spec.steps:
        if plan.valid_count == 0:
            # Nothing advances: carry the state array itself as the
            # checkpoint (backward skips the step symmetrically).
            if checkpoints is not None:
                checkpoints.append(state)
            continue
        if grad_needed:
            # Checkpoints must persist until backward — every step needs a
            # fresh output array.
            checkpoints.append(state)
            out = np.empty_like(state)
        elif spare is not None:
            out = spare
            spare = None
        else:
            out = np.empty_like(state)
        np.take(projections[plan.source], plan.rows, axis=0, out=gx)
        kernel.step(gx, state, out)
        if plan.invalid_rows is not None:
            out[plan.invalid_rows] = state[plan.invalid_rows]
        if not grad_needed and state is not initial_array:
            # Inference double-buffers: the consumed state becomes the next
            # step's output buffer (the caller's initial state is never
            # recycled).
            spare = state
        state = out
        if aggregated is not None and plan.emit_starts is not None:
            sums = np.add.reduceat(state[plan.emit_sorted_rows], plan.emit_starts,
                                   axis=0)
            aggregated[plan.emit_unique_segments] += sums

    final_state = state

    if not grad_needed:
        if scatter is None:
            return None, Tensor(final_state)
        return Tensor(aggregated), Tensor(final_state)

    weight_input = kernel.weight_input
    weight_hidden = kernel.weight_hidden
    bias = kernel.bias

    def joint_backward(grads: Tuple[Optional[np.ndarray], ...]) -> None:
        if scatter is None:
            aggregated_grad, final_grad = None, grads[0]
        else:
            aggregated_grad, final_grad = grads
        if final_grad is not None:
            state_grad = np.array(final_grad, dtype=dtype, copy=True)
        else:
            state_grad = np.zeros_like(final_state)

        d_prev = np.empty_like(state_grad)
        dgx = np.empty((num_paths, kernel.gate_width), dtype=dtype)
        dgx_sorted = np.empty_like(dgx)
        projection_grads = {s: np.zeros_like(projections[s])
                            for s in spec.used_sources}
        weight_hidden_grad = np.zeros_like(weight_hidden.data)

        for plan, checkpoint in zip(reversed(spec.steps), reversed(checkpoints)):
            if plan.valid_count == 0:
                continue
            if aggregated_grad is not None and plan.emit_rows is not None:
                # Each valid path emits exactly one row per step, so the
                # rows are unique and a fancy-index += is exact.
                state_grad[plan.emit_rows] += aggregated_grad[plan.emit_segments]

            np.take(projections[plan.source], plan.rows, axis=0, out=gx)
            if plan.invalid_rows is None:
                d_new = state_grad
            else:
                d_new = _GRAD_BUFFER_POOL.take(state_grad.shape, state_grad.dtype)
                np.multiply(state_grad, plan.valid_column, out=d_new)
            kernel.step_backward(gx, checkpoint, d_new, dgx, d_prev,
                                 weight_hidden_grad)
            if plan.invalid_rows is not None:
                _GRAD_BUFFER_POOL.give(d_new)
                # Masked-out rows carry their gradient past this step.
                d_prev[plan.invalid_rows] += state_grad[plan.invalid_rows]

            np.take(dgx, plan.in_perm, axis=0, out=dgx_sorted)
            projection_grads[plan.source][plan.in_entities] += \
                np.add.reduceat(dgx_sorted, plan.in_starts, axis=0)

            state_grad, d_prev = d_prev, state_grad

        state_tensor._accumulate(state_grad)
        for s in spec.used_sources:
            projection_grad = projection_grads[s]
            source = source_tensors[s]
            if weight_input.requires_grad:
                weight_input._accumulate(source.data.T @ projection_grad)
            if bias.requires_grad:
                bias._accumulate(projection_grad.sum(axis=0))
            if source.requires_grad:
                source._accumulate(projection_grad @ weight_input.data.T)
        if weight_hidden.requires_grad:
            weight_hidden._accumulate(weight_hidden_grad)

    if scatter is None:
        (final_out,) = make_multi_output([final_state], parents, joint_backward)
        return None, final_out
    aggregated_out, final_out = make_multi_output(
        [aggregated, final_state], parents, joint_backward)
    return aggregated_out, final_out
