"""Index bookkeeping and gather/scatter helpers for RouteNet message passing.

The models operate on one :class:`~repro.datasets.tensorize.TensorizedSample`
at a time.  This module precomputes the flat index arrays used every
message-passing iteration:

* for the **path update**, padded matrices of link / node indices per path
  plus the validity mask (already provided by the tensorised sample);
* for the **link update**, the flat list of (path, position) entries at
  which each link appears, so the per-position outputs of the path RNN can
  be segment-summed into per-link aggregated messages;
* for the **node update** (extended model), the flat list of (path, node)
  incidences so final path states can be summed per node.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

from repro.datasets.tensorize import TensorizedSample
from repro.nn.recurrent import ScanScatter
from repro.nn.scan_kernels import ScanKernelSpec, compile_scan_spec
from repro.nn.tensor import DTypeLike, Tensor, gather_segment_sum, resolve_dtype

__all__ = ["MessagePassingIndex", "build_index", "initial_state", "aggregate_positional_messages",
           "aggregate_path_states_per_node", "ScanPlan", "build_scan_plan"]


@dataclasses.dataclass
class MessagePassingIndex:
    """Precomputed index arrays for one tensorised sample."""

    #: (num_entries,) path id of every valid (path, position) pair.
    entry_path_ids: np.ndarray
    #: (num_entries,) position of the entry inside its path.
    entry_positions: np.ndarray
    #: (num_entries,) link traversed at that hop.
    entry_link_ids: np.ndarray
    #: (num_entries,) node whose queue the packet waits in at that hop.
    entry_node_ids: np.ndarray
    num_paths: int
    num_links: int
    num_nodes: int
    #: Memoised :class:`ScanPlan` per layout ("link" / "interleaved"), filled
    #: lazily by :func:`build_scan_plan` — the plan depends only on routing
    #: structure, so all message-passing iterations and epochs share it.
    _scan_plans: Dict[str, "ScanPlan"] = dataclasses.field(
        default_factory=dict, repr=False, compare=False)


def build_index(sample: TensorizedSample) -> MessagePassingIndex:
    """Flatten the padded sequences of a sample into valid (path, hop) entries.

    The result is memoised on the sample (``sample._index_cache``): the index
    depends only on the sample's routing structure, which is immutable after
    tensorisation, so repeated forward passes over the same sample — one per
    epoch during training, or one per model in a comparison — reuse it
    instead of re-flattening the padded sequences every step.
    """
    if sample._index_cache is not None:
        return sample._index_cache
    path_ids, positions = np.nonzero(sample.sequence_mask > 0)
    index = MessagePassingIndex(
        entry_path_ids=path_ids.astype(np.int64),
        entry_positions=positions.astype(np.int64),
        entry_link_ids=sample.link_sequences[path_ids, positions].astype(np.int64),
        entry_node_ids=sample.node_sequences[path_ids, positions].astype(np.int64),
        num_paths=sample.num_paths,
        num_links=sample.num_links,
        num_nodes=sample.num_nodes,
    )
    sample._index_cache = index
    return index


def initial_state(features: np.ndarray, state_dim: int, dtype: DTypeLike = None) -> Tensor:
    """Embed raw features into a fixed-size state by zero padding.

    This mirrors the reference implementation: the first feature columns of
    each state carry the known attributes (capacity, queue size, traffic) and
    the remaining dimensions start at zero for the message passing to fill.
    ``dtype`` pins the state precision (models pass their configured dtype so
    float64 features entering a float32 model are cast on the way in).
    """
    dtype = resolve_dtype(dtype)
    features = np.asarray(features, dtype=dtype)
    if features.ndim != 2:
        raise ValueError("features must be 2-D (entities, feature_dim)")
    num_entities, feature_dim = features.shape
    if feature_dim > state_dim:
        raise ValueError(
            f"feature dimension {feature_dim} exceeds the state size {state_dim}")
    state = np.zeros((num_entities, state_dim), dtype=dtype)
    state[:, :feature_dim] = features
    return Tensor(state)


def aggregate_positional_messages(path_rnn_outputs: Tensor, index: MessagePassingIndex,
                                  target: str) -> Tensor:
    """Sum the path-RNN outputs at every hop into per-link or per-node messages.

    ``path_rnn_outputs`` has shape (num_paths, max_len, dim); the output of
    hop ``(p, t)`` is routed to the link (or node) that path ``p`` traverses
    at position ``t`` and summed per target entity, exactly like
    ``tf.math.unsorted_segment_sum`` in the reference implementation.
    """
    if target == "link":
        segment_ids = index.entry_link_ids
        num_segments = index.num_links
    elif target == "node":
        segment_ids = index.entry_node_ids
        num_segments = index.num_nodes
    else:
        raise ValueError("target must be 'link' or 'node'")
    # Fused gather + segment-sum: one autograd node, no intermediate
    # (num_entries, dim) tensor (or gradient buffer) in the graph.
    return gather_segment_sum(
        path_rnn_outputs,
        (index.entry_path_ids, index.entry_positions),
        segment_ids,
        num_segments,
    )


@dataclasses.dataclass
class ScanPlan:
    """Everything :func:`repro.nn.recurrent.scan_rnn` needs for one sample.

    ``step_sources``/``step_rows``/``mask`` describe the per-step input
    gathers (which source matrix, which rows, which paths are valid), and
    ``scatter`` routes each step's outputs into the per-link accumulators —
    replacing the stacked ``(num_paths, num_steps, dim)`` sequence, the
    stacked outputs and the post-hoc gather/segment-sum of the stacked
    formulation.
    """

    step_sources: np.ndarray
    step_rows: np.ndarray
    mask: np.ndarray
    scatter: ScanScatter
    #: Memoised compiled kernel spec (filled lazily by :meth:`compiled`).
    _compiled: ScanKernelSpec = dataclasses.field(
        default=None, repr=False, compare=False)

    def compiled(self) -> ScanKernelSpec:
        """The precompiled kernel spec of this plan (built once, memoised).

        The spec depends only on the plan's index arrays, which are immutable
        after construction, so every message-passing iteration and epoch over
        the same (topology, bucket) batch shares one spec.
        """
        if self._compiled is None:
            self._compiled = compile_scan_spec(
                self.step_sources, self.step_rows, self.mask, self.scatter)
        return self._compiled


def _per_position_link_scatter(index: MessagePassingIndex, num_steps: int,
                               stride: int, offset: int) -> ScanScatter:
    """Split the flat (path, position, link) entries into per-step groups.

    Entry at path position ``p`` becomes an output emission at scan step
    ``p * stride + offset`` — stride 1/offset 0 for the plain link sequence,
    stride 2/offset 1 for the interleaved node-link sequence where link
    outputs appear at odd steps.
    """
    rows = [None] * num_steps
    segment_ids = [None] * num_steps
    order = np.argsort(index.entry_positions, kind="stable")
    positions = index.entry_positions[order]
    path_ids = index.entry_path_ids[order]
    link_ids = index.entry_link_ids[order]
    unique_positions, starts = np.unique(positions, return_index=True)
    ends = np.append(starts[1:], positions.size)
    for position, start, stop in zip(unique_positions, starts, ends):
        step = int(position) * stride + offset
        rows[step] = path_ids[start:stop]
        segment_ids[step] = link_ids[start:stop]
    return ScanScatter(rows=rows, segment_ids=segment_ids,
                       num_segments=index.num_links)


def build_scan_plan(sample: TensorizedSample, index: MessagePassingIndex,
                    interleaved: bool = False) -> ScanPlan:
    """Build (and memoise) the streaming-scan plan for one sample.

    ``interleaved=False`` describes the original RouteNet path update (the
    scan reads one link state per hop); ``interleaved=True`` the extended
    model's ``node1-link1-node2-link2-…`` sequence, where even steps gather
    from the node states (source 0) and odd steps from the link states
    (source 1), and only the odd (link) steps emit aggregated messages.
    """
    key = "interleaved" if interleaved else "link"
    cached = index._scan_plans.get(key)
    if cached is not None:
        return cached
    max_len = sample.max_path_length
    if not interleaved:
        plan = ScanPlan(
            step_sources=np.zeros(max_len, dtype=np.int64),
            step_rows=sample.link_sequences,
            mask=sample.sequence_mask,
            scatter=_per_position_link_scatter(index, max_len, stride=1, offset=0),
        )
    else:
        step_rows = np.empty((sample.num_paths, 2 * max_len), dtype=np.int64)
        step_rows[:, 0::2] = sample.node_sequences
        step_rows[:, 1::2] = sample.link_sequences
        plan = ScanPlan(
            step_sources=np.tile(np.array([0, 1], dtype=np.int64), max_len),
            step_rows=step_rows,
            mask=np.repeat(sample.sequence_mask, 2, axis=1),
            scatter=_per_position_link_scatter(index, 2 * max_len, stride=2, offset=1),
        )
    index._scan_plans[key] = plan
    return plan


def aggregate_path_states_per_node(path_states: Tensor, index: MessagePassingIndex) -> Tensor:
    """Element-wise sum of the states of all paths crossing each node.

    This is the aggregation the paper describes for the node update: "first
    performing an element-wise summation of all the path states associated
    to the node".  A path is associated with a node when one of its hops
    waits in that node's output queue.
    """
    # A path may cross a node once at most (paths are simple), so summing over
    # hop entries is the same as summing over distinct (path, node) pairs.
    return gather_segment_sum(
        path_states, index.entry_path_ids, index.entry_node_ids, index.num_nodes)
