"""The original RouteNet architecture (link + path entities).

Implements the message passing of Rusek et al. (SOSR 2019), which the paper
uses as the reference baseline:

1. every path reads the sequence of states of the links it traverses with a
   recurrent unit (``RNN_P``), starting from the path's current state;
2. every link aggregates (sums) the recurrent outputs produced at the hops
   where it appears, and updates its state through ``RNN_L``;
3. after ``T`` iterations a readout network maps the final path states to
   per-path performance estimates (delay).

The link capacity is encoded in the initial link state and the per-path
traffic volume in the initial path state.  Queue sizes are *not* visible to
this model — that is precisely the limitation the extended architecture
removes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.tensorize import TensorizedSample
from repro.models.config import RouteNetConfig
from repro.models.message_passing import (
    MessagePassingIndex,
    aggregate_positional_messages,
    build_index,
    build_scan_plan,
    initial_state,
)
from repro.models.readout import ReadoutMLP
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.recurrent import GRUCell, run_rnn_over_sequence, scan_rnn
from repro.nn.tensor import Tensor, default_dtype, resolve_dtype

__all__ = ["RouteNet"]


class RouteNet(Module):
    """Original RouteNet: link and path entities only."""

    def __init__(self, config: Optional[RouteNetConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else RouteNetConfig()
        #: Resolved floating precision of parameters and hidden states.
        self.dtype = resolve_dtype(self.config.dtype)
        rng = np.random.default_rng(self.config.seed)
        with default_dtype(self.dtype):
            # RNN_P: reads link states along the path, carrying the path state.
            self.path_update = GRUCell(self.config.link_state_dim,
                                       self.config.path_state_dim, rng=rng)
            # RNN_L: updates a link state from the aggregated path messages.
            self.link_update = GRUCell(self.config.path_state_dim,
                                       self.config.link_state_dim, rng=rng)
            self.readout = ReadoutMLP(self.config.path_state_dim,
                                      hidden_sizes=self.config.readout_hidden_sizes,
                                      activation=self.config.readout_activation,
                                      output_positive=self.config.output_positive,
                                      rng=rng)

    # ------------------------------------------------------------------ #
    def forward(self, sample: TensorizedSample) -> Tensor:
        """Predict (normalised) per-path delays for one sample."""
        index = build_index(sample)
        link_states = initial_state(sample.link_features, self.config.link_state_dim,
                                    dtype=self.dtype)
        path_states = initial_state(sample.path_features, self.config.path_state_dim,
                                    dtype=self.dtype)

        for _ in range(self.config.message_passing_iterations):
            path_states, link_states = self._message_passing_step(
                sample, index, path_states, link_states)

        return self.readout(path_states)

    # ------------------------------------------------------------------ #
    def _message_passing_step(self, sample: TensorizedSample, index: MessagePassingIndex,
                              path_states: Tensor, link_states: Tensor):
        if self.config.scan_mode in ("stream", "compiled"):
            # Streaming checkpointed scan: gathers each hop's link state on
            # the fly and scatters every step's output straight into the
            # per-link accumulators — neither the gathered sequence nor the
            # stacked outputs ever exist.  In "compiled" mode the scan runs
            # through the plan's precompiled step-kernel spec instead of the
            # interpreted per-step tape.
            plan = build_scan_plan(sample, index)
            compiled = plan.compiled() if self.config.scan_mode == "compiled" else None
            link_messages, new_path_states = scan_rnn(
                self.path_update, (link_states,), plan.step_sources,
                plan.step_rows, plan.mask, initial_state=path_states,
                scatter=plan.scatter, compiled=compiled)
        else:
            # Stacked formulation: scan RNN_P over the gathered per-path
            # sequence of link states, then segment-sum the stacked outputs.
            sequence = self._gather_link_sequence(sample, link_states)
            outputs, new_path_states = run_rnn_over_sequence(
                self.path_update, sequence, sample.sequence_mask,
                initial_state=path_states)
            link_messages = aggregate_positional_messages(outputs, index, target="link")

        # Link update: feed the aggregated messages to RNN_L with the link
        # state as hidden state.
        new_link_states = self.link_update(link_messages, link_states)
        return new_path_states, new_link_states

    def _gather_link_sequence(self, sample: TensorizedSample, link_states: Tensor) -> Tensor:
        # One fancy-index gather builds the whole (num_paths, max_len, dim)
        # sequence; padded positions read link 0 but are masked out by the
        # RNN scan, exactly as with the former per-position loop.
        return link_states.gather(sample.link_sequences)

    # ------------------------------------------------------------------ #
    def predict(self, sample: TensorizedSample) -> np.ndarray:
        """Inference helper returning a NumPy array (no autograd graph)."""
        from repro.nn.tensor import no_grad

        was_training = self.training
        self.eval()
        try:
            with no_grad():
                predictions = self.forward(sample)
        finally:
            self.train(was_training)
        return predictions.data.copy()
