"""The readout function: a feed-forward network applied to each path state."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers import MLP
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["ReadoutMLP"]


class ReadoutMLP(Module):
    """Maps final path states to scalar per-path predictions (delay).

    As in both the original and the extended RouteNet, the readout is a
    small fully connected network applied independently to every path state;
    its weights are shared across paths and learned jointly with the message
    passing functions.
    """

    def __init__(self, path_state_dim: int, hidden_sizes: Sequence[int] = (32, 16),
                 activation: str = "relu", output_positive: bool = False,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        output_activation = "softplus" if output_positive else None
        self.network = MLP(path_state_dim, list(hidden_sizes), 1,
                           hidden_activation=activation,
                           output_activation=output_activation,
                           rng=rng)

    def forward(self, path_states: Tensor) -> Tensor:
        """Return per-path predictions with shape (num_paths,)."""
        return self.network(path_states).squeeze(-1)
