"""Hyper-parameters shared by the RouteNet family of models."""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.nn.tensor import resolve_dtype

__all__ = ["RouteNetConfig"]


@dataclasses.dataclass
class RouteNetConfig:
    """Architecture hyper-parameters.

    Attributes
    ----------
    link_state_dim / path_state_dim / node_state_dim:
        Sizes of the hidden state vectors of each entity.  The reference
        implementation uses 32/32; the node state was introduced by the
        paper and defaults to the same size.
    message_passing_iterations:
        Number of rounds ``T`` of the iterative message passing.
    readout_hidden_sizes:
        Hidden layer widths of the readout feed-forward network.
    readout_activation:
        Hidden activation of the readout network.
    output_positive:
        When True the readout ends in a softplus so predicted (normalised)
        delays can still take any positive value after denormalisation;
        set to False to allow unconstrained outputs (the default, since the
        regression targets are z-scored).
    dtype:
        Floating precision of parameters and hidden states: ``"float32"``,
        ``"float64"`` or ``None`` (use the process default, see
        :func:`repro.nn.tensor.set_default_dtype`).  float32 halves the
        memory footprint of the backward pass on large merged batches.
    scan_mode:
        How the path RNN scans its sequences: ``"compiled"`` (default) runs
        the streaming scan through precompiled per-(topology, bucket) step
        kernels — the input projection hoisted out of the step loop, each
        hop a fused raw-NumPy step over presorted index arrays, backward via
        closed-form VJPs instead of a per-step tape; ``"stream"`` is the
        interpreted checkpointed streaming scan (same O(paths·dim) live
        memory, per-step autograd subgraphs); ``"stacked"`` keeps the
        original formulation that materialises the gathered sequence and the
        stacked per-step outputs in the autograd graph (useful for gradcheck
        cross-validation against the streaming paths).
    seed:
        Seed for weight initialisation.
    """

    link_state_dim: int = 16
    path_state_dim: int = 16
    node_state_dim: int = 16
    message_passing_iterations: int = 4
    readout_hidden_sizes: Sequence[int] = (32, 16)
    readout_activation: str = "relu"
    output_positive: bool = False
    dtype: Optional[str] = None
    scan_mode: str = "compiled"
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.link_state_dim, self.path_state_dim, self.node_state_dim) < 1:
            raise ValueError("state dimensions must be positive")
        if self.message_passing_iterations < 1:
            raise ValueError("message_passing_iterations must be at least 1")
        if any(h < 1 for h in self.readout_hidden_sizes):
            raise ValueError("readout hidden sizes must be positive")
        if self.scan_mode not in ("compiled", "stream", "stacked"):
            raise ValueError("scan_mode must be 'compiled', 'stream' or 'stacked'")
        resolve_dtype(self.dtype)  # raises on anything but float32/float64/None
