"""The paper's contribution: RouteNet and its node-entity extension.

* :class:`~repro.models.routenet.RouteNet` — the original architecture
  (Rusek et al., SOSR 2019): link and path entities, iterative message
  passing, per-path readout.
* :class:`~repro.models.extended.ExtendedRouteNet` — the paper's extension:
  a node entity whose state encodes per-device features (queue size), a node
  update RNN fed with the summed states of the paths crossing each node, and
  a path update that reads the interleaved node/link sequence
  (node1-link1-node2-link2-…).
* :class:`~repro.models.trainer.RouteNetTrainer` — supervised training of
  either model on datasets of :class:`~repro.datasets.sample.Sample`.
"""

from repro.models.config import RouteNetConfig
from repro.models.routenet import RouteNet
from repro.models.extended import ExtendedRouteNet
from repro.models.readout import ReadoutMLP
from repro.models.trainer import RouteNetTrainer, TrainerConfig, evaluate_model

__all__ = [
    "RouteNetConfig",
    "RouteNet",
    "ExtendedRouteNet",
    "ReadoutMLP",
    "RouteNetTrainer",
    "TrainerConfig",
    "evaluate_model",
]
