"""Supervised training and evaluation of RouteNet-family models on datasets."""

from __future__ import annotations

import copy
import dataclasses
import json
import os
import time
import warnings
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.batching import make_batches
from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.prefetch import BatchPrefetcher
from repro.datasets.sample import Sample
from repro.datasets.sharded import ShardedDatasetReader, is_sharded_store
from repro.datasets.tensorize import TensorizedSample, tensorize_sample
from repro.nn import metrics as nn_metrics
from repro.nn.losses import huber_loss, mse_loss
from repro.nn.module import Module
from repro.nn.optimizers import Adam, clip_gradients_by_norm
from repro.nn.parallel import make_gradient_executor, path_weighted_average
from repro.nn.tensor import DTypeLike, Tensor, no_grad, resolve_dtype
from repro.nn.training import EarlyStopping, History

__all__ = ["TrainerConfig", "RouteNetTrainer", "evaluate_model"]


@dataclasses.dataclass
class TrainerConfig:
    """Hyper-parameters of RouteNet training.

    ``target`` selects which per-path metric the model regresses:
    ``"delay"`` (the paper's Fig. 2 experiment), ``"jitter"`` or ``"loss"``.

    ``dtype`` selects the floating precision the samples are tensorised at
    ("float32", "float64" or ``None`` for the process default).  It should
    match the model's :attr:`~repro.models.config.RouteNetConfig.dtype`;
    float32 roughly halves the memory traffic of backward on large merged
    batches.

    ``batch_size`` controls mini-batching: each optimisation step merges that
    many scenarios into one disjoint-union graph (see
    :mod:`repro.datasets.batching`), amortising the per-step Python and
    autograd overhead — the same trick the reference TensorFlow
    implementation plays with ``tf.data`` batching.  ``1`` keeps the
    historical one-scenario-per-step optimisation (identical parameter
    updates and shuffling to the unbatched trainer); note that the epoch
    losses recorded in ``History`` are now always weighted by each item's
    path count, so on datasets with unequal path counts per scenario the
    *reported* loss is the per-path mean rather than the per-scenario mean.

    ``bucket_by_length`` (default on, only meaningful with
    ``batch_size > 1``) groups scenarios of similar maximum path length into
    the same merged batch, the ``tf.data`` bucketing trick of the reference
    implementation: padded tails shrink, so the RNN scan's no-masking fast
    path dominates.  Because bucketing fixes batch membership, the batches
    are merged (and their message-passing indices built) **once** before the
    first epoch; ``shuffle`` then only permutes the order the pre-merged
    batches are visited in.  Turn it off to recover the per-epoch
    shuffle-and-merge of arbitrary scenario mixes.

    ``num_workers`` turns on synchronous data-parallel training (see
    :mod:`repro.nn.parallel`): each optimisation step consumes a *group* of
    up to ``num_workers`` batches whose gradients are computed concurrently
    on model replicas and path-weight-averaged before a single optimiser
    step.  ``1`` (the default) keeps the historical one-batch-per-step
    serial loop.  Note the group size is part of the update semantics: a
    ``num_workers=4`` run takes 4x fewer, smoother optimiser steps per
    epoch than a serial run over the same batches (exactly like increasing
    the world size of distributed data-parallel training).

    ``parallel_backend`` selects the execution engine for
    ``num_workers > 1``: ``"process"`` (default) runs a persistent
    multiprocessing worker pool; ``"serial"`` executes the identical grouped
    semantics in-process — same parameter trajectory bit for bit — which is
    useful on single-core machines and for determinism tests.  When the
    process pool cannot start at all, ``fit`` degrades to the serial
    backend with a warning instead of failing the run; a worker that dies
    or hangs *mid-run* is respawned by the pool itself and its work
    re-dispatched bit-identically (see :mod:`repro.supervision`).
    ``task_timeout`` bounds one gradient task's wall time on the process
    backend — a worker exceeding it is presumed hung, killed and
    respawned; ``None`` (default) disables the bound.

    ``overlap`` (with ``num_workers > 1``) turns on double-buffered
    pipelining: after the optimiser step for group ``k`` the parent
    immediately broadcasts the updated parameters and puts group ``k+1`` on
    the workers, then does its own bookkeeping — loss accounting, and at
    epoch boundaries the validation pass and the checkpoint write — while
    the workers compute.  Overlap changes *when* the parent works, never
    *what* is computed: every broadcast carries fully-updated parameters,
    so overlapped and non-overlapped runs (and the ``serial`` twin) produce
    bit-identical parameter trajectories.  Ignored when ``num_workers == 1``.

    ``prefetch_depth`` and ``stream_window`` shape the out-of-core path
    (``fit(dataset_path=...)`` over a sharded store): a background thread
    reads, tensorises and merges batches up to ``prefetch_depth`` ahead,
    bucketing/shuffling within windows of ``stream_window`` batches, so an
    epoch holds O(stream_window · batch_size) tensorised samples plus
    O(prefetch_depth) merged batches instead of the whole dataset.  When a
    single window covers the dataset (``stream_window >= ceil(n /
    batch_size)``) the streamed run is bit-identical to the in-memory one;
    smaller windows bound memory and bucket/shuffle per window instead.
    """

    epochs: int = 20
    learning_rate: float = 0.001
    loss: str = "mse"
    target: str = "delay"
    gradient_clip_norm: float = 1.0
    shuffle: bool = True
    batch_size: int = 1
    bucket_by_length: bool = True
    dtype: Optional[str] = None
    early_stopping_patience: Optional[int] = None
    num_workers: int = 1
    parallel_backend: str = "process"
    task_timeout: Optional[float] = None
    overlap: bool = False
    prefetch_depth: int = 2
    stream_window: int = 64
    seed: int = 0
    log_every: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if self.loss not in ("mse", "huber"):
            raise ValueError("loss must be 'mse' or 'huber'")
        if self.target not in ("delay", "jitter", "loss"):
            raise ValueError("target must be 'delay', 'jitter' or 'loss'")
        if self.gradient_clip_norm < 0:
            raise ValueError("gradient_clip_norm must be non-negative")
        if self.early_stopping_patience is not None and self.early_stopping_patience < 1:
            # 0 used to silently disable early stopping while EarlyStopping
            # itself rejects patience <= 0; make the contract explicit:
            # None disables, any integer >= 1 enables.
            raise ValueError("early_stopping_patience must be None or at least 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.parallel_backend not in ("process", "serial"):
            raise ValueError("parallel_backend must be 'process' or 'serial'")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be at least 1")
        if self.stream_window < 1:
            raise ValueError("stream_window must be at least 1")
        resolve_dtype(self.dtype)  # raises on anything but float32/float64/None


class _MemoryEpoch:
    """One epoch over in-memory (possibly pre-merged) batches.

    ``items`` is the batch list, ``order`` the visiting order; every batch
    is live for the whole fit, which is exactly what ``peak_live_batches``
    reports (the number the streaming path exists to shrink).
    """

    def __init__(self, items: Sequence[TensorizedSample], order: np.ndarray) -> None:
        self.items = items
        self.order = order

    def serial_batches(self) -> Iterator[TensorizedSample]:
        return (self.items[int(i)] for i in self.order)

    def group_works(self, group_size: int) -> Iterator[tuple]:
        for start in range(0, len(self.order), group_size):
            yield ("indices", [int(i) for i in self.order[start:start + group_size]])

    def peak_live_batches(self) -> int:
        return len(self.items)

    def close(self) -> None:
        pass


class _StreamingEpoch:
    """One epoch streamed through a :class:`BatchPrefetcher`."""

    def __init__(self, prefetcher: BatchPrefetcher) -> None:
        self.prefetcher = prefetcher

    def serial_batches(self) -> Iterator[TensorizedSample]:
        return iter(self.prefetcher)

    def group_works(self, group_size: int) -> Iterator[tuple]:
        group: List[TensorizedSample] = []
        for batch in self.prefetcher:
            group.append(batch)
            if len(group) == group_size:
                yield ("payload", group)
                group = []
        if group:
            yield ("payload", group)

    def peak_live_batches(self) -> int:
        return self.prefetcher.peak_live_batches

    def close(self) -> None:
        self.prefetcher.close()


class RouteNetTrainer:
    """Trains a RouteNet-family model on lists of :class:`Sample` objects.

    The trainer owns the :class:`FeatureNormalizer` (fitted on the training
    set) and the tensorisation step, so user code deals only with samples.
    """

    def __init__(self, model: Module, config: Optional[TrainerConfig] = None,
                 normalizer: Optional[FeatureNormalizer] = None) -> None:
        self.model = model
        self.config = config if config is not None else TrainerConfig()
        self.normalizer = normalizer
        self.optimizer = Adam(model.parameters(), learning_rate=self.config.learning_rate)
        self.history = History()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ #
    def _loss(self, predictions: Tensor, targets: np.ndarray) -> Tensor:
        # Targets join the graph at the predictions' precision so a float32
        # model is not silently promoted back to float64 by the loss.
        target_tensor = Tensor(np.asarray(targets, dtype=predictions.data.dtype))
        if self.config.loss == "huber":
            return huber_loss(predictions, target_tensor)
        return mse_loss(predictions, target_tensor)

    def prepare(self, samples: Sequence[Sample]) -> List[TensorizedSample]:
        """Tensorise samples with the trainer's normaliser (fitting it if needed).

        Tensorisations are memoised on the normaliser, so repeated calls
        over the same samples (``fit`` invoked twice, validation sets,
        post-training evaluation) reuse the cached arrays.
        """
        if self.normalizer is None:
            self.normalizer = FeatureNormalizer().fit(samples)
        return [self.normalizer.tensorize(sample, target=self.config.target,
                                          dtype=self.config.dtype)
                for sample in samples]

    # ------------------------------------------------------------------ #
    def train_step(self, sample: TensorizedSample) -> float:
        """One optimisation step on a single (tensorised) sample."""
        self.optimizer.zero_grad()
        predictions = self.model(sample)
        loss = self._loss(predictions, sample.targets)
        loss.backward()
        if self.config.gradient_clip_norm > 0:
            clip_gradients_by_norm(self.model.parameters(), self.config.gradient_clip_norm)
        self.optimizer.step()
        return float(loss.item())

    def evaluate_loss(self, samples: Sequence[TensorizedSample]) -> float:
        """Per-path average loss over tensorised samples, without updates.

        Each item's loss is weighted by its ``num_paths``, so the result is
        the mean over *paths* regardless of how the paths are grouped into
        items — evaluating merged batches of unequal sizes gives the same
        number as evaluating the constituent samples one by one.
        """
        if not samples:
            raise ValueError("evaluate_loss needs at least one sample")
        total = 0.0
        weight = 0
        with no_grad():
            for sample in samples:
                predictions = self.model(sample)
                loss = float(self._loss(predictions, sample.targets).item())
                total += loss * sample.num_paths
                weight += sample.num_paths
        return total / weight

    def _epoch_plan(self, train_items: Sequence[TensorizedSample],
                    static_batches: Optional[List[TensorizedSample]],
                    ) -> Tuple[List[TensorizedSample], np.ndarray]:
        """One epoch's training items and the order to visit them in.

        Returns ``(items, order)`` where ``items`` is the (possibly merged)
        batch list and ``order`` indexes into it.  With pre-merged static
        batches (bucketing, or ``shuffle=False``) and with ``batch_size ==
        1`` the *same* item objects are reused every epoch — their memoised
        message-passing indices survive, and the data-parallel executor
        uploads them to the workers only once; unbucketed shuffled batch
        sizes > 1 re-merge fresh disjoint-union batches each epoch.
        """
        if static_batches is not None:
            if self.config.shuffle:
                return static_batches, self._rng.permutation(len(static_batches))
            return static_batches, np.arange(len(static_batches))
        if self.config.batch_size == 1:
            order = np.arange(len(train_items))
            if self.config.shuffle:
                self._rng.shuffle(order)
            return list(train_items), order
        batches = make_batches(train_items, self.config.batch_size,
                               rng=self._rng if self.config.shuffle else None)
        return batches, np.arange(len(batches))

    def _submit_group_work(self, executor, work: tuple) -> None:
        """Broadcast the current parameters and put one group on the executor.

        ``work`` is ``("indices", [int, ...])`` for uploaded in-memory
        batches or ``("payload", [TensorizedSample, ...])`` for streamed
        batches shipped inside the step messages.
        """
        kind, members = work
        flat_params = self.model.parameters_vector()
        if kind == "indices":
            executor.submit_group(flat_params, members)
        else:
            executor.submit_group_payload(flat_params, members)

    def _collect_and_apply(self, executor) -> Tuple[List[float], List[int]]:
        """Gather the in-flight group's gradients and take the optimiser step.

        The group gradient is the **path-weighted average**
        ``sum_i(num_paths_i * g_i) / sum_i(num_paths_i)`` — the same
        weighting :meth:`evaluate_loss` applies to losses, so the update
        equals the gradient of the mean per-path loss over every path in
        the group, exactly as if the group had been merged into one giant
        batch.  Gradient clipping and the optimiser step then run on the
        averaged gradient, once per group.

        Returns the per-batch losses and path counts (for epoch-loss
        weighting, identical to the serial bookkeeping).
        """
        results = executor.collect_group()
        gradient = path_weighted_average([r[0] for r in results],
                                         [r[2] for r in results])
        self.model.load_gradients_vector(gradient)
        if self.config.gradient_clip_norm > 0:
            clip_gradients_by_norm(self.model.parameters(), self.config.gradient_clip_norm)
        self.optimizer.step()
        return [r[1] for r in results], [r[2] for r in results]

    def train_step_group(self, executor, indices: Sequence[int]) -> Tuple[List[float], List[int]]:
        """One synchronous data-parallel optimisation step over a group of
        uploaded batches (see :meth:`_collect_and_apply` for the update
        semantics)."""
        self._submit_group_work(executor, ("indices", list(indices)))
        return self._collect_and_apply(executor)

    def fit(self, train_samples: Optional[Sequence[Sample]] = None,
            val_samples: Optional[Sequence[Sample]] = None,
            checkpoint_path: Optional[str] = None,
            dataset_path: Optional[str] = None) -> History:
        """Train for ``config.epochs`` *additional* epochs; return the history.

        Training data comes from exactly one of two sources:

        * ``train_samples`` — the in-memory path: every sample is tensorised
          up front and (with fixed batch membership) pre-merged once.
        * ``dataset_path`` — the **out-of-core** path: the path of a sharded
          dataset store (see :mod:`repro.datasets.sharded`), streamed one
          epoch at a time through a :class:`~repro.datasets.prefetch.
          BatchPrefetcher` so only ``config.stream_window`` batches' worth of
          tensorised samples plus ``config.prefetch_depth`` merged batches
          are ever live.  The trainer's normaliser comes from the store's
          manifest (or, failing that, one streaming fit pass).  With
          ``stream_window`` covering the whole dataset the streamed run is
          bit-identical to the in-memory one.

        ``checkpoint_path`` (optional) makes the run interruption-safe: a
        full checkpoint (see :meth:`save_checkpoint`) is rewritten after
        every epoch, so a killed run can be resumed from its last completed
        epoch with :meth:`load_checkpoint`.

        On a fresh trainer this trains epochs ``1..epochs`` exactly as
        before.  On a trainer restored with :meth:`load_checkpoint` (or one
        that already trained), epoch numbering continues where the recorded
        history left off, so a run that checkpoints after ``k`` epochs and
        resumes for ``N - k`` produces the same history (and, with identical
        data and config, bit-identical parameters) as an uninterrupted
        ``N``-epoch run.  Early stopping state is *not* carried across fits
        — each call starts a fresh patience window.

        With ``config.num_workers > 1`` the epoch's batches are processed in
        data-parallel groups (see :meth:`_collect_and_apply`); the executor —
        a multiprocessing worker pool, or its in-process serial twin — lives
        for the duration of this call.  ``config.overlap`` additionally
        pipelines the groups: the parent submits group ``k+1`` the moment
        its optimiser step for group ``k`` is done (double-buffered
        parameter broadcast), and at epoch boundaries puts the next epoch's
        first group on the workers *before* running validation and writing
        the checkpoint — all without changing a single update (see
        :class:`TrainerConfig`).

        Every epoch records ``samples_per_sec`` and ``peak_live_batches``
        into the history, so streaming-vs-in-memory throughput and memory
        regressions show up without the benchmark suite.
        """
        if (train_samples is None) == (dataset_path is None):
            raise ValueError(
                "fit() needs exactly one data source: train_samples (in-memory) "
                "or dataset_path (streamed from a sharded store)")
        reader = None
        train_items = None
        static_batches = None
        if dataset_path is not None:
            if not is_sharded_store(dataset_path):
                raise ValueError(
                    f"'{dataset_path}' is not a sharded dataset store; "
                    "out-of-core training streams shards — write one with "
                    "save_dataset(..., shards=N) or a ShardedDatasetWriter, "
                    "or load_dataset() it and pass train_samples instead")
            reader = ShardedDatasetReader(dataset_path)
            samples_per_epoch = len(reader)
            if samples_per_epoch == 0:
                raise ValueError(f"dataset store '{dataset_path}' is empty")
            if self.normalizer is None:
                # Prefer the store's recorded statistics; otherwise fit by
                # streaming over the store once (O(1) samples live).
                self.normalizer = (reader.normalizer
                                   or FeatureNormalizer().fit(reader))
        else:
            train_items = self.prepare(train_samples)
            samples_per_epoch = len(train_items)
            # When batch membership is fixed across epochs — bucketing pins
            # it to the length ordering, and shuffle=False to the input
            # order — the disjoint-union merge (and the memoised
            # message-passing index / scan plan built on it) happens once
            # here, and epochs only permute the visiting order of the
            # pre-merged batches.
            if self.config.batch_size > 1 and (self.config.bucket_by_length
                                               or not self.config.shuffle):
                static_batches = make_batches(train_items, self.config.batch_size,
                                              bucket_by_length=self.config.bucket_by_length)
        val_items = self.prepare(val_samples) if val_samples else None
        if val_items and self.config.batch_size > 1:
            # Merge validation scenarios once; the weighted evaluate_loss
            # makes the batched value identical to the per-sample one.
            val_items = make_batches(val_items, self.config.batch_size,
                                     bucket_by_length=self.config.bucket_by_length)
        stopper = (EarlyStopping(patience=self.config.early_stopping_patience, min_delta=1e-6)
                   if self.config.early_stopping_patience else None)

        executor = None
        if self.config.num_workers > 1:
            try:
                executor = make_gradient_executor(
                    self.model, self.config.num_workers,
                    loss=self.config.loss,
                    backend=self.config.parallel_backend,
                    task_timeout=self.config.task_timeout)
            except Exception as error:  # noqa: BLE001 - degrade, don't die
                # Pool start-up failure (fork refused, pipe limits, a worker
                # crashing in its handshake).  The serial backend computes
                # the identical parameter trajectory, just without the
                # wall-clock win — strictly better than failing the run.
                warnings.warn(
                    f"gradient worker pool failed to start ({error}); "
                    "falling back to the serial backend (identical results, "
                    "no parallel speed-up)", RuntimeWarning, stacklevel=2)
                executor = make_gradient_executor(
                    self.model, self.config.num_workers,
                    loss=self.config.loss, backend="serial")
        overlap = self.config.overlap and executor is not None

        def make_epoch():
            if reader is not None:
                prefetcher = BatchPrefetcher(
                    iter(reader), self.normalizer, self.config.batch_size,
                    target=self.config.target, dtype=self.config.dtype,
                    # Mirror _epoch_plan: at batch_size 1 the in-memory path
                    # never buckets (there is no padding to shrink), so the
                    # streamed path must not either or the visit order — and
                    # with it the parameter trajectory — would diverge.
                    bucket_by_length=(self.config.bucket_by_length
                                      and self.config.batch_size > 1),
                    window_batches=self.config.stream_window,
                    rng=self._rng if self.config.shuffle else None,
                    prefetch_depth=self.config.prefetch_depth)
                return _StreamingEpoch(prefetcher)
            items, order = self._epoch_plan(train_items, static_batches)
            if executor is not None:
                executor.ensure_batches(items)
            return _MemoryEpoch(items, order)

        start_epoch = self.history.epochs[-1] if self.history.epochs else 0
        last_epoch = start_epoch + self.config.epochs
        pending = False   # one submitted-but-uncollected group (overlap mode)
        carried = None    # next epoch planned ahead at an overlap boundary
        current = None
        try:
            for epoch in range(start_epoch + 1, last_epoch + 1):
                start = time.perf_counter()
                if carried is not None:
                    current, works, losses, weights = carried
                    carried = None
                else:
                    current = make_epoch()
                    works = (iter(current.group_works(self.config.num_workers))
                             if executor is not None else None)
                    losses, weights = [], []
                if executor is None:
                    for batch in current.serial_batches():
                        losses.append(self.train_step(batch))
                        weights.append(batch.num_paths)
                else:
                    for work in works:
                        if overlap:
                            if pending:
                                got_losses, got_weights = self._collect_and_apply(executor)
                                losses.extend(got_losses)
                                weights.extend(got_weights)
                            self._submit_group_work(executor, work)
                            pending = True
                        else:
                            self._submit_group_work(executor, work)
                            got_losses, got_weights = self._collect_and_apply(executor)
                            losses.extend(got_losses)
                            weights.extend(got_weights)
                    if pending:
                        got_losses, got_weights = self._collect_and_apply(executor)
                        losses.extend(got_losses)
                        weights.extend(got_weights)
                        pending = False
                current.close()  # streaming: joins the finished producer
                peak_live = current.peak_live_batches()
                train_loss = float(np.average(
                    np.asarray(losses),
                    weights=np.asarray(weights, dtype=np.float64)))

                # Overlap boundary: snapshot the RNG state the checkpoint
                # must carry (the next epoch's plan consumes a draw that a
                # resumed run will re-consume when *it* plans that epoch),
                # then put the next epoch's first group on the workers so
                # they compute through the validation pass and checkpoint
                # write below.
                rng_snapshot = None
                if overlap and epoch < last_epoch:
                    rng_snapshot = copy.deepcopy(self._rng.bit_generator.state)
                    next_epoch = make_epoch()
                    next_works = iter(next_epoch.group_works(self.config.num_workers))
                    first = next(next_works, None)
                    if first is not None:
                        self._submit_group_work(executor, first)
                        pending = True
                    carried = (next_epoch, next_works, [], [])
                val_loss = self.evaluate_loss(val_items) if val_items else None
                seconds = time.perf_counter() - start
                self.history.record(
                    epoch, train_loss, val_loss, seconds,
                    samples_per_sec=(samples_per_epoch / seconds
                                     if seconds > 0 else None),
                    peak_live_batches=peak_live)
                if checkpoint_path is not None:
                    self.save_checkpoint(checkpoint_path, rng_state=rng_snapshot)

                if self.config.log_every and epoch % self.config.log_every == 0:
                    message = f"epoch {epoch:3d}  train={train_loss:.5f}"
                    if val_loss is not None:
                        message += f"  val={val_loss:.5f}"
                    print(message)

                if stopper is not None:
                    monitored = val_loss if val_loss is not None else train_loss
                    if stopper.update(monitored, epoch):
                        # A pre-submitted next-epoch group may be in flight:
                        # collect and *discard* it (no optimiser step), so a
                        # stopped overlapped run ends with exactly the
                        # parameters of the non-overlapped one.
                        if pending:
                            executor.collect_group()
                            pending = False
                        break
        finally:
            if pending:
                try:
                    executor.collect_group()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass
            if current is not None:
                current.close()
            if carried is not None:
                carried[0].close()
            if executor is not None:
                executor.close()
        return self.history

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def save_checkpoint(self, path: str, rng_state: Optional[dict] = None) -> str:
        """Write a full training checkpoint so a resumed run is *exact*.

        The checkpoint round-trips everything a bit-identical resume needs:
        model weights, the complete optimiser state (step count **and**
        moment buffers — Adam resumed with zeroed moments would apply its
        ``1/(1 - beta**step)`` bias correction to the wrong statistics),
        the fitted normaliser, the recorded history and the trainer's RNG
        state (so epoch shuffling continues the same stream).

        ``rng_state`` overrides the recorded RNG state: ``fit``'s overlap
        mode plans the *next* epoch (consuming a shuffle draw) before it
        writes the epoch's checkpoint, so it passes the state captured just
        before that planning — a resumed run then re-draws the plan and
        follows the uninterrupted trajectory bit for bit.

        Format: a compressed ``.npz`` holding the arrays (``model.<name>``
        weights and ``optim.<buffer>.<i>`` optimiser moments) **and** the
        scalar state as an embedded JSON string (key ``meta.json``), so the
        archive's write-then-rename is the single atomic commit point — a
        crash between two file writes can never leave weights from one
        checkpoint paired with metadata from another.  A ``.json`` sidecar
        with the same metadata is still written afterwards as a
        human-readable mirror (and for pre-existing tooling), but loading
        never requires it.  Returns the ``.npz`` path written.
        """
        arrays: Dict[str, np.ndarray] = {
            f"model.{name}": value for name, value in self.model.state_dict().items()}
        optimizer_state = self.optimizer.state_dict()
        optimizer_meta: Dict[str, object] = {
            "class": type(self.optimizer).__name__,
            "step_count": int(optimizer_state.pop("step_count")),
            "buffers": {},
        }
        for key, buffers in optimizer_state.items():
            buffers = list(buffers)
            optimizer_meta["buffers"][key] = len(buffers)
            for index, buffer in enumerate(buffers):
                arrays[f"optim.{key}.{index:05d}"] = buffer
        metadata = {
            "format_version": 1,
            "model_class": type(self.model).__name__,
            "trainer_config": dataclasses.asdict(self.config),
            "optimizer": optimizer_meta,
            "normalizer": (self.normalizer.to_dict()
                           if self.normalizer is not None and self.normalizer.fitted
                           else None),
            "history": self.history.as_dict(),
            "rng_state": (rng_state if rng_state is not None
                          else self._rng.bit_generator.state),
        }
        # Embedding the metadata in the archive (a 0-d unicode array) makes
        # the npz rename below the checkpoint's single commit point.
        arrays["meta.json"] = np.array(json.dumps(metadata, sort_keys=True))
        if not path.endswith(".npz"):
            path = path + ".npz"
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        # Write-then-rename so a run killed mid-save (the very interruption
        # scenario checkpoints exist for) never leaves a truncated archive
        # where the previous good checkpoint used to be.
        temporary = path + ".tmp.npz"  # .npz suffix keeps savez from renaming it
        np.savez_compressed(temporary, **arrays)
        os.replace(temporary, path)
        sidecar = path[: -len(".npz")] + ".json"
        with open(sidecar + ".tmp", "w", encoding="utf-8") as handle:
            json.dump(metadata, handle, indent=2, sort_keys=True)
        os.replace(sidecar + ".tmp", sidecar)
        return path

    def load_checkpoint(self, path: str) -> dict:
        """Restore a checkpoint written by :meth:`save_checkpoint`.

        The trainer must have been constructed over the same model
        architecture and optimiser type; weights, optimiser moments
        (shape-checked against the current parameters), normaliser, history
        and RNG state are all restored, after which :meth:`fit` on the same
        data and config continues the interrupted run bit-exactly (epoch
        numbering picks up where the restored history ends).  Returns the
        checkpoint's metadata dictionary.
        """
        if not path.endswith(".npz"):
            path = path + ".npz"
        if not os.path.exists(path):
            raise FileNotFoundError(f"no trainer checkpoint at '{path}'")
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        if "meta.json" in arrays:
            metadata = json.loads(str(arrays.pop("meta.json")))
        else:
            # Checkpoints written before the metadata was embedded in the
            # archive keep their scalar state only in the sidecar.
            sidecar = path[: -len(".npz")] + ".json"
            if not os.path.exists(sidecar):
                raise FileNotFoundError(
                    f"checkpoint '{path}' predates embedded metadata and its "
                    ".json sidecar is missing")
            with open(sidecar, "r", encoding="utf-8") as handle:
                metadata = json.load(handle)
        if metadata.get("model_class") != type(self.model).__name__:
            raise ValueError(
                f"checkpoint was written for model '{metadata.get('model_class')}', "
                f"cannot load into '{type(self.model).__name__}'")
        optimizer_meta = metadata["optimizer"]
        if optimizer_meta["class"] != type(self.optimizer).__name__:
            raise ValueError(
                f"checkpoint was written for optimizer '{optimizer_meta['class']}', "
                f"cannot load into '{type(self.optimizer).__name__}'")
        # Settings that silently change what is being optimised must match;
        # epochs (each fit trains that many *more*), learning_rate (a
        # deliberate fine-tuning knob; the schedule is re-derived from it),
        # parallel_backend and overlap (bit-identical engines),
        # prefetch_depth (a queue bound), seed (the restored RNG state
        # supersedes it) and log_every are free to differ.  stream_window
        # must match because it decides streamed batch membership.
        saved_config = metadata.get("trainer_config", {})
        mismatched = {
            field: (saved_config[field], getattr(self.config, field))
            for field in ("loss", "target", "dtype", "batch_size",
                          "bucket_by_length", "shuffle", "gradient_clip_norm",
                          "num_workers", "stream_window")
            if field in saved_config and saved_config[field] != getattr(self.config, field)
        }
        if mismatched:
            details = ", ".join(f"{field}: saved={saved!r} current={current!r}"
                                for field, (saved, current) in sorted(mismatched.items()))
            raise ValueError(
                f"checkpoint was written with a different training setup ({details}); "
                "resuming under it would silently optimise a different objective")
        model_state = {key[len("model."):]: value for key, value in arrays.items()
                       if key.startswith("model.")}
        self.model.load_state_dict(model_state)
        optimizer_state: Dict[str, object] = {
            "step_count": int(optimizer_meta["step_count"])}
        for key, count in optimizer_meta["buffers"].items():
            optimizer_state[key] = [arrays[f"optim.{key}.{index:05d}"]
                                    for index in range(int(count))]
        self.optimizer.load_state_dict(optimizer_state)
        if metadata.get("normalizer") is not None:
            self.normalizer = FeatureNormalizer.from_dict(metadata["normalizer"])
        self.history = History()
        recorded = metadata.get("history", {})
        epoch_count = len(recorded.get("epochs", []))
        # Throughput columns are absent from pre-PR-5 checkpoints.
        recorded_sps = recorded.get("samples_per_sec") or [None] * epoch_count
        recorded_peaks = recorded.get("peak_live_batches") or [None] * epoch_count
        for epoch, train_loss, val_loss, seconds, sps, peak in zip(
                recorded.get("epochs", []), recorded.get("train_loss", []),
                recorded.get("val_loss", []), recorded.get("epoch_seconds", []),
                recorded_sps, recorded_peaks):
            self.history.record(int(epoch), float(train_loss),
                                None if val_loss is None else float(val_loss),
                                float(seconds),
                                samples_per_sec=None if sps is None else float(sps),
                                peak_live_batches=None if peak is None else int(peak))
        if metadata.get("rng_state") is not None:
            self._rng.bit_generator.state = metadata["rng_state"]
        return metadata

    # ------------------------------------------------------------------ #
    def predict_metric(self, sample: Sample) -> np.ndarray:
        """Predict the trainer's target metric (denormalised) for one sample."""
        if self.normalizer is None:
            raise RuntimeError("trainer has no normalizer; call fit() or prepare() first")
        # Deliberately not memoised: prediction is the streaming path (one
        # fresh sample per call), where caching would only accumulate
        # tensorisations that are never revisited.
        tensorized = tensorize_sample(sample, self.normalizer, target=self.config.target,
                                      dtype=self.config.dtype)
        normalised = self.model.predict(tensorized)
        return self.normalizer.denormalize(self.config.target, normalised)

    def predict_delays(self, sample: Sample) -> np.ndarray:
        """Predict *denormalised* per-path delays (seconds) for one sample.

        Only valid when the trainer's target is ``"delay"``.
        """
        if self.config.target != "delay":
            raise RuntimeError("predict_delays() requires a delay-target trainer; "
                               "use predict_metric() instead")
        return self.predict_metric(sample)


def evaluate_model(model: Module, samples: Sequence[Sample],
                   normalizer: FeatureNormalizer, target: str = "delay",
                   dtype: DTypeLike = None) -> Dict[str, object]:
    """Evaluate a trained model on samples, reporting paper-style metrics.

    Returns a dictionary with the concatenated per-path relative errors
    (``relative_errors``), their mean/median, MAPE, RMSE and Pearson
    correlation on the denormalised values of ``target`` (delay by default).

    Tensorisations are reused from the normaliser's memo cache when the
    same samples were already tensorised (by a trainer or a previous
    evaluation at the same ``target``/``dtype``); metric arithmetic is
    always float64 regardless of the model precision.
    """
    if not samples:
        raise ValueError("evaluation needs at least one sample")
    all_predictions: List[np.ndarray] = []
    all_targets: List[np.ndarray] = []
    for sample in samples:
        tensorized = normalizer.tensorize(sample, target=target, dtype=dtype)
        normalised = model.predict(tensorized)
        all_predictions.append(normalizer.denormalize(target, normalised))
        all_targets.append(tensorized.raw_targets)
    predictions = np.concatenate(all_predictions)
    targets = np.concatenate(all_targets)
    errors = nn_metrics.relative_errors(predictions, targets)
    return {
        "relative_errors": errors,
        "mean_relative_error": float(np.abs(errors).mean()),
        "median_relative_error": float(np.median(np.abs(errors))),
        "mape_percent": nn_metrics.mean_absolute_percentage_error(predictions, targets),
        "rmse": nn_metrics.root_mean_squared_error(predictions, targets),
        "pearson": nn_metrics.pearson_correlation(predictions, targets),
        "num_paths": int(predictions.size),
    }
