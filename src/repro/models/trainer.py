"""Supervised training and evaluation of RouteNet-family models on datasets."""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.batching import make_batches
from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.sample import Sample
from repro.datasets.tensorize import TensorizedSample, tensorize_sample
from repro.nn import metrics as nn_metrics
from repro.nn.losses import huber_loss, mse_loss
from repro.nn.module import Module
from repro.nn.optimizers import Adam, clip_gradients_by_norm
from repro.nn.tensor import DTypeLike, Tensor, no_grad, resolve_dtype
from repro.nn.training import EarlyStopping, History

__all__ = ["TrainerConfig", "RouteNetTrainer", "evaluate_model"]


@dataclasses.dataclass
class TrainerConfig:
    """Hyper-parameters of RouteNet training.

    ``target`` selects which per-path metric the model regresses:
    ``"delay"`` (the paper's Fig. 2 experiment), ``"jitter"`` or ``"loss"``.

    ``dtype`` selects the floating precision the samples are tensorised at
    ("float32", "float64" or ``None`` for the process default).  It should
    match the model's :attr:`~repro.models.config.RouteNetConfig.dtype`;
    float32 roughly halves the memory traffic of backward on large merged
    batches.

    ``batch_size`` controls mini-batching: each optimisation step merges that
    many scenarios into one disjoint-union graph (see
    :mod:`repro.datasets.batching`), amortising the per-step Python and
    autograd overhead — the same trick the reference TensorFlow
    implementation plays with ``tf.data`` batching.  ``1`` keeps the
    historical one-scenario-per-step optimisation (identical parameter
    updates and shuffling to the unbatched trainer); note that the epoch
    losses recorded in ``History`` are now always weighted by each item's
    path count, so on datasets with unequal path counts per scenario the
    *reported* loss is the per-path mean rather than the per-scenario mean.

    ``bucket_by_length`` (default on, only meaningful with
    ``batch_size > 1``) groups scenarios of similar maximum path length into
    the same merged batch, the ``tf.data`` bucketing trick of the reference
    implementation: padded tails shrink, so the RNN scan's no-masking fast
    path dominates.  Because bucketing fixes batch membership, the batches
    are merged (and their message-passing indices built) **once** before the
    first epoch; ``shuffle`` then only permutes the order the pre-merged
    batches are visited in.  Turn it off to recover the per-epoch
    shuffle-and-merge of arbitrary scenario mixes.
    """

    epochs: int = 20
    learning_rate: float = 0.001
    loss: str = "mse"
    target: str = "delay"
    gradient_clip_norm: float = 1.0
    shuffle: bool = True
    batch_size: int = 1
    bucket_by_length: bool = True
    dtype: Optional[str] = None
    early_stopping_patience: Optional[int] = None
    seed: int = 0
    log_every: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if self.loss not in ("mse", "huber"):
            raise ValueError("loss must be 'mse' or 'huber'")
        if self.target not in ("delay", "jitter", "loss"):
            raise ValueError("target must be 'delay', 'jitter' or 'loss'")
        resolve_dtype(self.dtype)  # raises on anything but float32/float64/None


class RouteNetTrainer:
    """Trains a RouteNet-family model on lists of :class:`Sample` objects.

    The trainer owns the :class:`FeatureNormalizer` (fitted on the training
    set) and the tensorisation step, so user code deals only with samples.
    """

    def __init__(self, model: Module, config: Optional[TrainerConfig] = None,
                 normalizer: Optional[FeatureNormalizer] = None) -> None:
        self.model = model
        self.config = config if config is not None else TrainerConfig()
        self.normalizer = normalizer
        self.optimizer = Adam(model.parameters(), learning_rate=self.config.learning_rate)
        self.history = History()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ #
    def _loss(self, predictions: Tensor, targets: np.ndarray) -> Tensor:
        # Targets join the graph at the predictions' precision so a float32
        # model is not silently promoted back to float64 by the loss.
        target_tensor = Tensor(np.asarray(targets, dtype=predictions.data.dtype))
        if self.config.loss == "huber":
            return huber_loss(predictions, target_tensor)
        return mse_loss(predictions, target_tensor)

    def prepare(self, samples: Sequence[Sample]) -> List[TensorizedSample]:
        """Tensorise samples with the trainer's normaliser (fitting it if needed).

        Tensorisations are memoised on the normaliser, so repeated calls
        over the same samples (``fit`` invoked twice, validation sets,
        post-training evaluation) reuse the cached arrays.
        """
        if self.normalizer is None:
            self.normalizer = FeatureNormalizer().fit(samples)
        return [self.normalizer.tensorize(sample, target=self.config.target,
                                          dtype=self.config.dtype)
                for sample in samples]

    # ------------------------------------------------------------------ #
    def train_step(self, sample: TensorizedSample) -> float:
        """One optimisation step on a single (tensorised) sample."""
        self.optimizer.zero_grad()
        predictions = self.model(sample)
        loss = self._loss(predictions, sample.targets)
        loss.backward()
        if self.config.gradient_clip_norm > 0:
            clip_gradients_by_norm(self.model.parameters(), self.config.gradient_clip_norm)
        self.optimizer.step()
        return float(loss.item())

    def evaluate_loss(self, samples: Sequence[TensorizedSample]) -> float:
        """Per-path average loss over tensorised samples, without updates.

        Each item's loss is weighted by its ``num_paths``, so the result is
        the mean over *paths* regardless of how the paths are grouped into
        items — evaluating merged batches of unequal sizes gives the same
        number as evaluating the constituent samples one by one.
        """
        if not samples:
            raise ValueError("evaluate_loss needs at least one sample")
        total = 0.0
        weight = 0
        with no_grad():
            for sample in samples:
                predictions = self.model(sample)
                loss = float(self._loss(predictions, sample.targets).item())
                total += loss * sample.num_paths
                weight += sample.num_paths
        return total / weight

    def _epoch_batches(self, train_items: Sequence[TensorizedSample]) -> List[TensorizedSample]:
        """The (possibly merged) training items for one epoch, in step order.

        With ``batch_size == 1`` the cached per-sample tensorisations are
        reused directly (only the order is shuffled), so their memoised
        message-passing indices survive across epochs; larger (unbucketed)
        batch sizes shuffle-and-merge fresh disjoint-union batches each
        epoch.  Bucketed batching never reaches this method — its batches
        are pre-merged once in :meth:`fit`.
        """
        if self.config.batch_size == 1:
            order = np.arange(len(train_items))
            if self.config.shuffle:
                self._rng.shuffle(order)
            return [train_items[i] for i in order]
        return make_batches(train_items, self.config.batch_size,
                            rng=self._rng if self.config.shuffle else None)

    def fit(self, train_samples: Sequence[Sample],
            val_samples: Optional[Sequence[Sample]] = None) -> History:
        """Train for ``config.epochs`` epochs and return the loss history."""
        train_items = self.prepare(train_samples)
        val_items = self.prepare(val_samples) if val_samples else None
        if val_items and self.config.batch_size > 1:
            # Merge validation scenarios once; the weighted evaluate_loss
            # makes the batched value identical to the per-sample one.
            val_items = make_batches(val_items, self.config.batch_size,
                                     bucket_by_length=self.config.bucket_by_length)
        stopper = (EarlyStopping(patience=self.config.early_stopping_patience, min_delta=1e-6)
                   if self.config.early_stopping_patience else None)
        # When batch membership is fixed across epochs — bucketing pins it
        # to the length ordering, and shuffle=False to the input order — the
        # disjoint-union merge (and the memoised message-passing index /
        # scan plan built on it) happens once here, and epochs only permute
        # the visiting order of the pre-merged batches.
        static_batches = None
        if self.config.batch_size > 1 and (self.config.bucket_by_length
                                           or not self.config.shuffle):
            static_batches = make_batches(train_items, self.config.batch_size,
                                          bucket_by_length=self.config.bucket_by_length)

        for epoch in range(1, self.config.epochs + 1):
            start = time.perf_counter()
            if static_batches is not None:
                batches = static_batches
                if self.config.shuffle:
                    order = self._rng.permutation(len(static_batches))
                    batches = [static_batches[i] for i in order]
            else:
                batches = self._epoch_batches(train_items)
            step_losses = np.array([self.train_step(batch) for batch in batches])
            step_weights = np.array([batch.num_paths for batch in batches], dtype=np.float64)
            train_loss = float(np.average(step_losses, weights=step_weights))
            val_loss = self.evaluate_loss(val_items) if val_items else None
            self.history.record(epoch, train_loss, val_loss, time.perf_counter() - start)

            if self.config.log_every and epoch % self.config.log_every == 0:
                message = f"epoch {epoch:3d}  train={train_loss:.5f}"
                if val_loss is not None:
                    message += f"  val={val_loss:.5f}"
                print(message)

            if stopper is not None:
                monitored = val_loss if val_loss is not None else train_loss
                if stopper.update(monitored, epoch):
                    break
        return self.history

    # ------------------------------------------------------------------ #
    def predict_metric(self, sample: Sample) -> np.ndarray:
        """Predict the trainer's target metric (denormalised) for one sample."""
        if self.normalizer is None:
            raise RuntimeError("trainer has no normalizer; call fit() or prepare() first")
        # Deliberately not memoised: prediction is the streaming path (one
        # fresh sample per call), where caching would only accumulate
        # tensorisations that are never revisited.
        tensorized = tensorize_sample(sample, self.normalizer, target=self.config.target,
                                      dtype=self.config.dtype)
        normalised = self.model.predict(tensorized)
        return self.normalizer.denormalize(self.config.target, normalised)

    def predict_delays(self, sample: Sample) -> np.ndarray:
        """Predict *denormalised* per-path delays (seconds) for one sample.

        Only valid when the trainer's target is ``"delay"``.
        """
        if self.config.target != "delay":
            raise RuntimeError("predict_delays() requires a delay-target trainer; "
                               "use predict_metric() instead")
        return self.predict_metric(sample)


def evaluate_model(model: Module, samples: Sequence[Sample],
                   normalizer: FeatureNormalizer, target: str = "delay",
                   dtype: DTypeLike = None) -> Dict[str, object]:
    """Evaluate a trained model on samples, reporting paper-style metrics.

    Returns a dictionary with the concatenated per-path relative errors
    (``relative_errors``), their mean/median, MAPE, RMSE and Pearson
    correlation on the denormalised values of ``target`` (delay by default).

    Tensorisations are reused from the normaliser's memo cache when the
    same samples were already tensorised (by a trainer or a previous
    evaluation at the same ``target``/``dtype``); metric arithmetic is
    always float64 regardless of the model precision.
    """
    if not samples:
        raise ValueError("evaluation needs at least one sample")
    all_predictions: List[np.ndarray] = []
    all_targets: List[np.ndarray] = []
    for sample in samples:
        tensorized = normalizer.tensorize(sample, target=target, dtype=dtype)
        normalised = model.predict(tensorized)
        all_predictions.append(normalizer.denormalize(target, normalised))
        all_targets.append(tensorized.raw_targets)
    predictions = np.concatenate(all_predictions)
    targets = np.concatenate(all_targets)
    errors = nn_metrics.relative_errors(predictions, targets)
    return {
        "relative_errors": errors,
        "mean_relative_error": float(np.abs(errors).mean()),
        "median_relative_error": float(np.median(np.abs(errors))),
        "mape_percent": nn_metrics.mean_absolute_percentage_error(predictions, targets),
        "rmse": nn_metrics.root_mean_squared_error(predictions, targets),
        "pearson": nn_metrics.pearson_correlation(predictions, targets),
        "num_paths": int(predictions.size),
    }
