"""The paper's contribution: Extended RouteNet with a node entity.

Three changes relative to the original architecture (Section 2 of the
paper):

1. **Node states.**  Every forwarding device gets a hidden state whose first
   components encode its features — here the (normalised) queue size.
2. **Node update (``RNN_N``).**  Each node receives the element-wise sum of
   the states of all the paths that traverse it, and updates its state with
   a recurrent unit.
3. **Interleaved path update (``RNN_P``).**  Instead of reading only link
   states, the path RNN reads the interleaved sequence
   ``node1 - link1 - node2 - link2 - …`` where ``node_i`` is the device
   whose output queue the packet occupies before traversing ``link_i``.

The link update (``RNN_L``) and the readout are unchanged, so any accuracy
difference against :class:`~repro.models.routenet.RouteNet` is attributable
to the node entity — the comparison Fig. 2 of the paper reports.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets.tensorize import TensorizedSample
from repro.models.config import RouteNetConfig
from repro.models.message_passing import (
    MessagePassingIndex,
    aggregate_path_states_per_node,
    build_index,
    build_scan_plan,
    initial_state,
)
from repro.models.readout import ReadoutMLP
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.recurrent import GRUCell, run_rnn_over_sequence, scan_rnn
from repro.nn.tensor import Tensor, default_dtype, gather_segment_sum, resolve_dtype

__all__ = ["ExtendedRouteNet"]


class ExtendedRouteNet(Module):
    """RouteNet extended with a node entity carrying per-device features."""

    def __init__(self, config: Optional[RouteNetConfig] = None,
                 use_node_features: bool = True) -> None:
        super().__init__()
        self.config = config if config is not None else RouteNetConfig()
        if self.config.link_state_dim != self.config.node_state_dim:
            raise ValueError(
                "the interleaved path update requires link_state_dim == node_state_dim")
        #: When False, queue-size features are zeroed out before entering the
        #: node states — the ablation used to show the accuracy gain comes
        #: from the node feature itself, not merely from extra parameters.
        self.use_node_features = use_node_features
        #: Resolved floating precision of parameters and hidden states.
        self.dtype = resolve_dtype(self.config.dtype)
        rng = np.random.default_rng(self.config.seed)

        element_dim = self.config.link_state_dim
        with default_dtype(self.dtype):
            # RNN_P reads the interleaved node/link sequence.
            self.path_update = GRUCell(element_dim, self.config.path_state_dim, rng=rng)
            # RNN_L updates link states from aggregated path messages.
            self.link_update = GRUCell(self.config.path_state_dim,
                                       self.config.link_state_dim, rng=rng)
            # RNN_N updates node states from the summed states of crossing paths.
            self.node_update = GRUCell(self.config.path_state_dim,
                                       self.config.node_state_dim, rng=rng)
            self.readout = ReadoutMLP(self.config.path_state_dim,
                                      hidden_sizes=self.config.readout_hidden_sizes,
                                      activation=self.config.readout_activation,
                                      output_positive=self.config.output_positive,
                                      rng=rng)

    # ------------------------------------------------------------------ #
    def forward(self, sample: TensorizedSample) -> Tensor:
        """Predict (normalised) per-path delays for one sample."""
        index = build_index(sample)
        link_states = initial_state(sample.link_features, self.config.link_state_dim,
                                    dtype=self.dtype)
        node_features = sample.node_features
        if not self.use_node_features:
            node_features = np.zeros_like(node_features)
        node_states = initial_state(node_features, self.config.node_state_dim,
                                    dtype=self.dtype)
        path_states = initial_state(sample.path_features, self.config.path_state_dim,
                                    dtype=self.dtype)

        for _ in range(self.config.message_passing_iterations):
            path_states, link_states, node_states = self._message_passing_step(
                sample, index, path_states, link_states, node_states)

        return self.readout(path_states)

    # ------------------------------------------------------------------ #
    def _message_passing_step(
        self,
        sample: TensorizedSample,
        index: MessagePassingIndex,
        path_states: Tensor,
        link_states: Tensor,
        node_states: Tensor,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        if self.config.scan_mode in ("stream", "compiled"):
            # Streaming checkpointed scan over the interleaved node/link
            # sequence: even steps gather node states, odd steps link states,
            # and only the odd (link) steps scatter their outputs into the
            # per-link accumulators — the interleaved sequence and the
            # stacked outputs never materialise.  "compiled" runs it through
            # the plan's precompiled step-kernel spec.
            plan = build_scan_plan(sample, index, interleaved=True)
            compiled = plan.compiled() if self.config.scan_mode == "compiled" else None
            link_messages, new_path_states = scan_rnn(
                self.path_update, (node_states, link_states), plan.step_sources,
                plan.step_rows, plan.mask, initial_state=path_states,
                scatter=plan.scatter, compiled=compiled)
        else:
            # Stacked formulation over the gathered interleaved sequence.
            sequence, mask = self._gather_interleaved_sequence(
                sample, link_states, node_states)
            outputs, new_path_states = run_rnn_over_sequence(
                self.path_update, sequence, mask, initial_state=path_states)

            # Link update: the message to a link is the RNN output right after
            # reading that link (odd positions of the interleaved sequence).
            # Fused gather + segment-sum keeps the (num_entries, dim) selection
            # out of the autograd graph.
            link_positions = index.entry_positions * 2 + 1
            link_messages = gather_segment_sum(
                outputs,
                (index.entry_path_ids, link_positions),
                index.entry_link_ids,
                index.num_links,
            )
        new_link_states = self.link_update(link_messages, link_states)

        # Node update: element-wise sum of the states of the paths crossing
        # each node, fed to RNN_N with the node state as hidden state.
        node_messages = aggregate_path_states_per_node(new_path_states, index)
        new_node_states = self.node_update(node_messages, node_states)

        return new_path_states, new_link_states, new_node_states

    def _gather_interleaved_sequence(self, sample: TensorizedSample, link_states: Tensor,
                                     node_states: Tensor) -> Tuple[Tensor, np.ndarray]:
        # Two fancy-index gathers build the per-hop node and link states in
        # one shot; stacking them on a new axis and flattening it interleaves
        # the hops as node1-link1-node2-link2-… (row-major order).
        node_part = node_states.gather(sample.node_sequences)
        link_part = link_states.gather(sample.link_sequences)
        num_paths, max_len = sample.link_sequences.shape
        sequence = F.stack([node_part, link_part], axis=2).reshape(
            num_paths, 2 * max_len, link_part.shape[-1])
        mask = np.repeat(sample.sequence_mask, 2, axis=1)
        return sequence, mask

    # ------------------------------------------------------------------ #
    def predict(self, sample: TensorizedSample) -> np.ndarray:
        """Inference helper returning a NumPy array (no autograd graph)."""
        from repro.nn.tensor import no_grad

        was_training = self.training
        self.eval()
        try:
            with no_grad():
                predictions = self.forward(sample)
        finally:
            self.train(was_training)
        return predictions.data.copy()
