"""Cumulative distribution functions of prediction errors (Fig. 2 of the paper)."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["ErrorCDF", "compare_cdfs"]


@dataclasses.dataclass
class ErrorCDF:
    """The empirical CDF of a set of (signed) relative errors."""

    label: str
    errors: np.ndarray

    def __post_init__(self) -> None:
        self.errors = np.sort(np.asarray(self.errors, dtype=np.float64).ravel())
        if self.errors.size == 0:
            raise ValueError("an error CDF needs at least one observation")

    # ------------------------------------------------------------------ #
    def evaluate(self, x: float) -> float:
        """Fraction of errors <= x."""
        return float(np.searchsorted(self.errors, x, side="right") / self.errors.size)

    def quantile(self, q: float) -> float:
        """The q-quantile of the error distribution."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        return float(np.quantile(self.errors, q))

    def absolute_quantile(self, q: float) -> float:
        """The q-quantile of |error| — e.g. q=0.9 gives the 90th-percentile error."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        return float(np.quantile(np.abs(self.errors), q))

    def mean_absolute_error(self) -> float:
        """Mean absolute relative error."""
        return float(np.abs(self.errors).mean())

    def fraction_within(self, threshold: float) -> float:
        """Fraction of predictions whose |relative error| is below ``threshold``."""
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        return float((np.abs(self.errors) <= threshold).mean())

    def curve(self, num_points: int = 100) -> Dict[str, np.ndarray]:
        """Sampled (x, F(x)) arrays for plotting/tabulating the CDF."""
        xs = np.linspace(self.errors[0], self.errors[-1], num_points)
        ys = np.searchsorted(self.errors, xs, side="right") / self.errors.size
        return {"x": xs, "cdf": ys}


def compare_cdfs(cdfs: Sequence[ErrorCDF], thresholds: Sequence[float] = (0.05, 0.1, 0.2, 0.5)
                 ) -> List[Dict[str, float]]:
    """Summarise several error CDFs side by side.

    Returns one dictionary per CDF with its label, mean/median absolute
    error, 90th/95th percentile absolute error and the fraction of paths
    predicted within each threshold — the quantities one reads off Fig. 2.
    """
    if not cdfs:
        raise ValueError("need at least one CDF to compare")
    rows = []
    for cdf in cdfs:
        row: Dict[str, float] = {
            "label": cdf.label,
            "mean_abs_error": cdf.mean_absolute_error(),
            "median_abs_error": cdf.absolute_quantile(0.5),
            "p90_abs_error": cdf.absolute_quantile(0.9),
            "p95_abs_error": cdf.absolute_quantile(0.95),
        }
        for threshold in thresholds:
            row[f"within_{int(threshold * 100)}pct"] = cdf.fraction_within(threshold)
        rows.append(row)
    return rows
