"""Plain-text tables for benchmark output (no plotting dependencies)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.evaluation.cdf import ErrorCDF, compare_cdfs

__all__ = ["format_metrics_table", "format_cdf_table"]


def format_metrics_table(rows: Sequence[Dict[str, object]], float_format: str = "{:.4f}"
                         ) -> str:
    """Render a list of metric dictionaries as an aligned text table.

    The first key of the first row is used as the label column; numeric
    values are formatted with ``float_format``.
    """
    if not rows:
        raise ValueError("cannot format an empty table")
    columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    return "\n".join(lines)


def format_cdf_table(cdfs: Sequence[ErrorCDF], num_points: int = 11) -> str:
    """Tabulate several error CDFs over a shared grid of |relative error| values.

    This is the textual equivalent of Fig. 2: each column is one model /
    topology combination, each row reports the fraction of paths whose
    absolute relative error is below the grid value.
    """
    if not cdfs:
        raise ValueError("need at least one CDF")
    upper = max(cdf.absolute_quantile(1.0) for cdf in cdfs)
    grid = np.linspace(0.0, max(upper, 1e-6), num_points)
    rows: List[Dict[str, object]] = []
    for x in grid:
        row: Dict[str, object] = {"abs_rel_error<=": float(x)}
        for cdf in cdfs:
            row[cdf.label] = cdf.fraction_within(float(x))
        rows.append(row)
    summary = compare_cdfs(cdfs)
    table = format_metrics_table(rows, float_format="{:.3f}")
    summary_table = format_metrics_table(summary, float_format="{:.3f}")
    return table + "\n\nSummary:\n" + summary_table
