"""Evaluation helpers: relative-error CDFs and textual comparison reports."""

from repro.evaluation.cdf import ErrorCDF, compare_cdfs
from repro.evaluation.report import format_cdf_table, format_metrics_table

__all__ = ["ErrorCDF", "compare_cdfs", "format_cdf_table", "format_metrics_table"]
