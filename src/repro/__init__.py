"""Reproduction of "Towards more realistic network models based on Graph
Neural Networks" (Badia-Sampera et al., CoNEXT 2019).

The package is organised as the paper's system plus every substrate it
depends on:

* :mod:`repro.nn` — NumPy autograd deep-learning framework (TensorFlow
  substitute).
* :mod:`repro.topology`, :mod:`repro.routing`, :mod:`repro.traffic` —
  network description substrates (NSFNET / GEANT2 topologies, routing
  schemes, traffic matrices).
* :mod:`repro.simulator` — packet-level discrete-event simulator (OMNeT++
  substitute) for ground-truth delays.
* :mod:`repro.baselines` — queueing-theory analytic models.
* :mod:`repro.datasets` — sample schema, generators, tensorisation, storage.
* :mod:`repro.models` — the original RouteNet and the paper's Extended
  RouteNet with a node entity, plus training utilities.
* :mod:`repro.evaluation` — relative-error CDFs and comparison reports
  (Fig. 2 of the paper).

Quickstart::

    from repro import quick_experiment
    report = quick_experiment()        # trains both models on a tiny dataset
    print(report)
"""

from repro.version import __version__

from repro import analysis, baselines, datasets, evaluation, models, nn, routing, simulator, topology, traffic
from repro.datasets import DatasetConfig, Sample, generate_dataset, train_val_test_split
from repro.models import ExtendedRouteNet, RouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.pipeline import ExperimentResult, quick_experiment, run_fig2_experiment
from repro.topology import geant2_topology, nsfnet_topology

__all__ = [
    "__version__",
    "analysis",
    "nn",
    "topology",
    "routing",
    "traffic",
    "simulator",
    "baselines",
    "datasets",
    "models",
    "evaluation",
    "Sample",
    "DatasetConfig",
    "generate_dataset",
    "train_val_test_split",
    "RouteNet",
    "ExtendedRouteNet",
    "RouteNetConfig",
    "RouteNetTrainer",
    "TrainerConfig",
    "nsfnet_topology",
    "geant2_topology",
    "ExperimentResult",
    "quick_experiment",
    "run_fig2_experiment",
]
