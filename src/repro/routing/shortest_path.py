"""Routing-scheme constructors: shortest path, weighted variants, k-SP mixtures."""

from __future__ import annotations

from itertools import islice
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.routing.scheme import RoutingScheme
from repro.topology.graph import Topology

__all__ = [
    "shortest_path_routing",
    "weighted_shortest_path_routing",
    "k_shortest_paths",
    "random_variation_routing",
]


def shortest_path_routing(topology: Topology,
                          pairs: Optional[List[Tuple[int, int]]] = None) -> RoutingScheme:
    """Hop-count shortest-path routing for every (or the given) pairs.

    Ties are broken deterministically by preferring lexicographically smaller
    paths so that two calls with the same topology yield the same scheme.
    """
    return weighted_shortest_path_routing(topology, weight=None, pairs=pairs)


def weighted_shortest_path_routing(topology: Topology, weight: Optional[str] = None,
                                   pairs: Optional[List[Tuple[int, int]]] = None
                                   ) -> RoutingScheme:
    """Shortest-path routing under a link weight.

    ``weight`` is ``None`` (hop count), ``"delay"`` or ``"inverse_capacity"``
    as accepted by :meth:`repro.topology.graph.Topology.shortest_path`.
    """
    selected_pairs = list(pairs) if pairs is not None else list(topology.pairs())
    paths: Dict[Tuple[int, int], List[int]] = {}
    for source, destination in selected_pairs:
        candidates = topology.all_shortest_paths(source, destination, weight=weight)
        paths[(source, destination)] = min(candidates)
    return RoutingScheme(topology, paths)


def k_shortest_paths(topology: Topology, source: int, destination: int,
                     k: int) -> List[List[int]]:
    """The ``k`` shortest simple paths (by hop count) between two nodes."""
    if k < 1:
        raise ValueError("k must be at least 1")
    graph = topology.to_networkx()
    generator = nx.shortest_simple_paths(graph, int(source), int(destination))
    return [list(path) for path in islice(generator, k)]


def random_variation_routing(topology: Topology, k: int = 3,
                             rng: Optional[np.random.Generator] = None,
                             pairs: Optional[List[Tuple[int, int]]] = None
                             ) -> RoutingScheme:
    """Routing that picks, per pair, one of its ``k`` shortest paths at random.

    The paper's datasets include "diverse ... routing schemes"; this
    constructor provides that diversity while keeping every path close to
    shortest.  With ``rng`` fixed the scheme is reproducible.
    """
    generator = rng if rng is not None else np.random.default_rng()
    selected_pairs = list(pairs) if pairs is not None else list(topology.pairs())
    paths: Dict[Tuple[int, int], List[int]] = {}
    for source, destination in selected_pairs:
        candidates = k_shortest_paths(topology, source, destination, k)
        choice = int(generator.integers(0, len(candidates)))
        paths[(source, destination)] = candidates[choice]
    return RoutingScheme(topology, paths)
