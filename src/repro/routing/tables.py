"""Alternative routing representations: routing matrices and next-hop tables."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.routing.scheme import RoutingScheme

__all__ = ["routing_matrix", "next_hop_tables"]


def routing_matrix(scheme: RoutingScheme) -> np.ndarray:
    """Binary matrix ``R[p, l] = 1`` when path ``p`` traverses link ``l``.

    Rows follow :meth:`RoutingScheme.pairs` order; columns follow the
    topology's link-index order.  This is the classic "routing matrix" input
    of analytic network models and is also handy for vectorised utilisation
    computations.
    """
    num_paths = scheme.num_paths
    num_links = scheme.topology.num_links
    matrix = np.zeros((num_paths, num_links), dtype=np.int8)
    for row, link_path in enumerate(scheme.link_paths()):
        matrix[row, link_path] = 1
    return matrix


def next_hop_tables(scheme: RoutingScheme) -> Dict[int, Dict[int, int]]:
    """Per-node forwarding tables ``table[node][destination] -> next hop``.

    This is the representation the packet-level simulator consumes: a packet
    at ``node`` destined to ``destination`` is forwarded to
    ``table[node][destination]``.  Raises ``ValueError`` when two paths
    through the same node towards the same destination disagree on the next
    hop (the scheme would not be realisable with destination-based
    forwarding); such schemes must be simulated with per-flow forwarding
    instead.
    """
    tables: Dict[int, Dict[int, int]] = {node: {} for node in scheme.topology.nodes()}
    for (source, destination), path in scheme.items():
        for position, node in enumerate(path[:-1]):
            next_hop = path[position + 1]
            existing: Optional[int] = tables[node].get(destination)
            if existing is not None and existing != next_hop:
                raise ValueError(
                    f"conflicting next hops at node {node} towards {destination}: "
                    f"{existing} vs {next_hop}")
            tables[node][destination] = next_hop
    return tables
