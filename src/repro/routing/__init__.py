"""Routing substrate: source-destination routing schemes over a topology.

RouteNet consumes routing as the set of paths followed by every
source-destination pair.  A :class:`~repro.routing.scheme.RoutingScheme`
stores exactly that and knows how to express each path as the sequence of
link indices (original RouteNet) or the interleaved node/link sequence
(Extended RouteNet).
"""

from repro.routing.scheme import RoutingScheme
from repro.routing.shortest_path import (
    k_shortest_paths,
    random_variation_routing,
    shortest_path_routing,
    weighted_shortest_path_routing,
)
from repro.routing.tables import next_hop_tables, routing_matrix

__all__ = [
    "RoutingScheme",
    "shortest_path_routing",
    "weighted_shortest_path_routing",
    "random_variation_routing",
    "k_shortest_paths",
    "routing_matrix",
    "next_hop_tables",
]
