"""The :class:`RoutingScheme` container: one path per source-destination pair."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.topology.graph import Topology

__all__ = ["RoutingScheme"]

PathKey = Tuple[int, int]


class RoutingScheme:
    """A mapping from (source, destination) pairs to node paths.

    The scheme is validated against a topology: every consecutive pair of
    nodes in a path must be joined by a directed link, the path must start at
    the source and end at the destination, and it must not revisit nodes.
    ``validate=False`` skips that per-hop validation — strictly for paths
    that were *already* validated by a scheme instance and round-tripped
    through trusted storage (the binary shard codec), where re-walking every
    hop would dominate the decode cost.
    """

    def __init__(self, topology: Topology, paths: Dict[PathKey, Sequence[int]],
                 validate: bool = True) -> None:
        self.topology = topology
        self._paths: Dict[PathKey, List[int]] = {}
        if validate:
            for (source, destination), path in paths.items():
                self._validate_path(int(source), int(destination), list(path))
                self._paths[(int(source), int(destination))] = [int(n) for n in path]
        else:
            for (source, destination), path in paths.items():
                self._paths[(int(source), int(destination))] = list(path)

    def _validate_path(self, source: int, destination: int, path: List[int]) -> None:
        if source == destination:
            raise ValueError("routing entries must join distinct endpoints")
        if len(path) < 2:
            raise ValueError(f"path for ({source},{destination}) is too short: {path}")
        if path[0] != source or path[-1] != destination:
            raise ValueError(
                f"path for ({source},{destination}) must start/end at the endpoints, got {path}")
        if len(set(path)) != len(path):
            raise ValueError(f"path for ({source},{destination}) revisits a node: {path}")
        for u, v in zip(path[:-1], path[1:]):
            if not self.topology.has_link(u, v):
                raise ValueError(
                    f"path for ({source},{destination}) uses a missing link {u}->{v}")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def num_paths(self) -> int:
        return len(self._paths)

    def pairs(self) -> List[PathKey]:
        """The (source, destination) pairs in deterministic (sorted) order."""
        return sorted(self._paths.keys())

    def path(self, source: int, destination: int) -> List[int]:
        """Node path for one pair."""
        try:
            return list(self._paths[(int(source), int(destination))])
        except KeyError as error:
            raise KeyError(f"no route for pair ({source}, {destination})") from error

    def has_path(self, source: int, destination: int) -> bool:
        return (int(source), int(destination)) in self._paths

    def items(self) -> Iterator[Tuple[PathKey, List[int]]]:
        """Iterate ``((source, destination), node_path)`` in sorted pair order."""
        for pair in self.pairs():
            yield pair, list(self._paths[pair])

    # ------------------------------------------------------------------ #
    # Views used by the models and the simulator
    # ------------------------------------------------------------------ #
    def link_path(self, source: int, destination: int) -> List[int]:
        """The path of one pair expressed as link indices."""
        return self.topology.path_links(self.path(source, destination))

    def link_paths(self) -> List[List[int]]:
        """Link-index paths for every pair, in :meth:`pairs` order."""
        return [self.link_path(source, destination) for source, destination in self.pairs()]

    def node_paths(self) -> List[List[int]]:
        """Node paths for every pair, in :meth:`pairs` order."""
        return [self.path(source, destination) for source, destination in self.pairs()]

    def next_hop(self, current: int, destination: int) -> Optional[int]:
        """Next hop from ``current`` towards ``destination``.

        Forwarding follows the pre-computed end-to-end paths: ``current``
        must be on the path of some pair ending at ``destination``.  Returns
        ``None`` when no path through ``current`` reaches ``destination``.
        """
        for (source, dest), path in self._paths.items():
            if dest != destination:
                continue
            if current in path[:-1]:
                return path[path.index(current) + 1]
        return None

    def average_path_length(self) -> float:
        """Mean number of links per path."""
        if not self._paths:
            raise ValueError("routing scheme is empty")
        return sum(len(p) - 1 for p in self._paths.values()) / len(self._paths)

    def links_used(self) -> List[int]:
        """Sorted list of link indices used by at least one path."""
        used = set()
        for path in self._paths.values():
            used.update(self.topology.path_links(path))
        return sorted(used)

    def paths_through_link(self, link_index: int) -> List[PathKey]:
        """Pairs whose path traverses the given link."""
        result = []
        for pair in self.pairs():
            if link_index in self.topology.path_links(self._paths[pair]):
                result.append(pair)
        return result

    def paths_through_node(self, node: int) -> List[PathKey]:
        """Pairs whose path traverses (or terminates at) the given node."""
        return [pair for pair in self.pairs() if node in self._paths[pair]]

    def to_dict(self) -> Dict:
        """JSON-serialisable representation."""
        return {
            "paths": [
                {"source": s, "destination": d, "path": list(self._paths[(s, d)])}
                for s, d in self.pairs()
            ]
        }

    @classmethod
    def from_dict(cls, topology: Topology, payload: Dict) -> "RoutingScheme":
        """Rebuild a scheme from :meth:`to_dict` output."""
        paths = {(entry["source"], entry["destination"]): entry["path"]
                 for entry in payload["paths"]}
        return cls(topology, paths)

    def __repr__(self) -> str:
        return f"RoutingScheme(paths={self.num_paths}, topology='{self.topology.name}')"
