"""Measurement: per-flow delay/jitter/loss and per-link utilisation statistics."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["FlowStats", "LinkStats", "SimulationResult", "FlowRecorder"]


@dataclasses.dataclass
class FlowStats:
    """Aggregated measurements of one source-destination flow."""

    flow: Tuple[int, int]
    packets_sent: int
    packets_delivered: int
    packets_dropped: int
    average_delay: float
    jitter: float
    p95_delay: float
    min_delay: float
    max_delay: float

    @property
    def loss_ratio(self) -> float:
        """Fraction of generated packets that never reached the destination."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.packets_sent


@dataclasses.dataclass
class LinkStats:
    """Aggregated measurements of one directed link."""

    link_index: int
    source: int
    target: int
    utilization: float
    packets_sent: int
    queue_drops: int
    average_queue_occupancy: float
    max_queue_occupancy: int


@dataclasses.dataclass
class SimulationResult:
    """Everything a simulation run reports.

    ``flow_stats`` is keyed by ``(source, destination)``; ``link_stats`` by
    link index.  ``duration`` is the measured interval (excluding warm-up).
    """

    duration: float
    warmup: float
    flow_stats: Dict[Tuple[int, int], FlowStats]
    link_stats: Dict[int, LinkStats]
    total_packets_generated: int
    total_packets_delivered: int
    total_packets_dropped: int
    #: Discrete events the engine executed to produce this result — the
    #: simulator's cost unit (events/sec is the tracked generation metric).
    events_processed: int = 0

    def delays_vector(self, pair_order: List[Tuple[int, int]]) -> np.ndarray:
        """Average delays arranged in ``pair_order`` (NaN for absent flows)."""
        values = []
        for pair in pair_order:
            stats = self.flow_stats.get(pair)
            values.append(stats.average_delay if stats is not None else math.nan)
        return np.array(values, dtype=np.float64)

    def loss_vector(self, pair_order: List[Tuple[int, int]]) -> np.ndarray:
        """Loss ratios arranged in ``pair_order`` (NaN for absent flows)."""
        values = []
        for pair in pair_order:
            stats = self.flow_stats.get(pair)
            values.append(stats.loss_ratio if stats is not None else math.nan)
        return np.array(values, dtype=np.float64)

    @property
    def overall_loss_ratio(self) -> float:
        if self.total_packets_generated == 0:
            return 0.0
        return self.total_packets_dropped / self.total_packets_generated


class FlowRecorder:
    """Accumulates per-packet observations for one flow during measurement."""

    def __init__(self, flow: Tuple[int, int]) -> None:
        self.flow = flow
        self.delays: List[float] = []
        self.packets_sent = 0
        self.packets_dropped = 0
        self._last_delay: Optional[float] = None
        self._jitter_accumulator = 0.0
        self._jitter_samples = 0

    def record_sent(self) -> None:
        self.packets_sent += 1

    def record_dropped(self) -> None:
        self.packets_dropped += 1

    def record_delivery(self, delay: float) -> None:
        self.delays.append(delay)
        if self._last_delay is not None:
            # Jitter as mean absolute delay variation (RFC 3550 flavoured).
            self._jitter_accumulator += abs(delay - self._last_delay)
            self._jitter_samples += 1
        self._last_delay = delay

    def finalize(self) -> Optional[FlowStats]:
        """Build :class:`FlowStats`; returns ``None`` if nothing was delivered."""
        if not self.delays:
            if self.packets_sent == 0:
                return None
            return FlowStats(
                flow=self.flow,
                packets_sent=self.packets_sent,
                packets_delivered=0,
                packets_dropped=self.packets_dropped,
                average_delay=math.nan,
                jitter=math.nan,
                p95_delay=math.nan,
                min_delay=math.nan,
                max_delay=math.nan,
            )
        delays = np.asarray(self.delays)
        jitter = (self._jitter_accumulator / self._jitter_samples
                  if self._jitter_samples else 0.0)
        return FlowStats(
            flow=self.flow,
            packets_sent=self.packets_sent,
            packets_delivered=len(self.delays),
            packets_dropped=self.packets_dropped,
            average_delay=float(delays.mean()),
            jitter=float(jitter),
            p95_delay=float(np.percentile(delays, 95)),
            min_delay=float(delays.min()),
            max_delay=float(delays.max()),
        )
