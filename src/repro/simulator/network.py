"""Assembling a full network simulation from topology + routing + traffic.

:func:`simulate_network` is the substitute for "run the OMNeT++ scenario":
it builds routers, links and traffic sources, runs the discrete-event engine
for a warm-up plus a measurement interval, and returns per-flow delay /
jitter / loss statistics and per-link utilisations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.routing.scheme import RoutingScheme
from repro.simulator.engine import Simulator
from repro.simulator.link import Link
from repro.simulator.metrics import FlowRecorder, LinkStats, SimulationResult
from repro.simulator.node import RouterNode
from repro.simulator.packet import Packet
from repro.simulator.queues import PriorityDropTailQueue
from repro.simulator.traffic_sources import (
    ConstantBitRateSource,
    DEFAULT_PACKET_SIZE_BITS,
    OnOffSource,
    PoissonSource,
)
from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix

__all__ = ["SimulationConfig", "NetworkSimulation", "simulate_network"]

_SOURCE_CLASSES = {
    "poisson": PoissonSource,
    "onoff": OnOffSource,
    "cbr": ConstantBitRateSource,
}


@dataclasses.dataclass
class SimulationConfig:
    """Run-control parameters of a packet-level simulation.

    ``flow_priorities`` optionally maps ``(source, destination)`` pairs to a
    traffic class (0 = highest priority); it only affects nodes whose
    scheduling discipline is ``"priority"``.
    """

    duration: float = 10.0
    warmup: float = 1.0
    mean_packet_size_bits: float = DEFAULT_PACKET_SIZE_BITS
    source_model: str = "poisson"
    exponential_packet_sizes: bool = True
    seed: int = 0
    flow_priorities: Optional[Dict[Tuple[int, int], int]] = None
    num_traffic_classes: int = 2

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.mean_packet_size_bits <= 0:
            raise ValueError("packet size must be positive")
        if self.source_model not in _SOURCE_CLASSES:
            raise ValueError(f"unknown source model '{self.source_model}'")
        if self.num_traffic_classes < 1:
            raise ValueError("num_traffic_classes must be at least 1")
        if self.flow_priorities:
            for pair, priority in self.flow_priorities.items():
                if priority < 0 or priority >= self.num_traffic_classes:
                    raise ValueError(f"priority of flow {pair} out of range")


class NetworkSimulation:
    """A fully wired simulation ready to :meth:`run`."""

    def __init__(self, topology: Topology, routing: RoutingScheme,
                 traffic: TrafficMatrix, config: Optional[SimulationConfig] = None) -> None:
        if traffic.num_nodes != topology.num_nodes:
            raise ValueError("traffic matrix size does not match the topology")
        self.topology = topology
        self.routing = routing
        self.traffic = traffic
        self.config = config if config is not None else SimulationConfig()
        self.simulator = Simulator()
        self._rng = np.random.default_rng(self.config.seed)
        self._recorders: Dict[Tuple[int, int], FlowRecorder] = {}
        self._nodes: Dict[int, RouterNode] = {}
        self._links: Dict[int, Link] = {}
        self._measuring = False
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        for node_id in self.topology.nodes():
            spec = self.topology.node_spec(node_id)
            self._nodes[node_id] = RouterNode(
                node_id,
                queue_size=spec.queue_size,
                on_delivered=self._handle_delivery,
                on_dropped=self._handle_drop,
            )
        for index, spec in enumerate(self.topology.links()):
            target_node = self._nodes[spec.target]
            source_spec = self.topology.node_spec(spec.source)
            queue = None
            if source_spec.scheduling == "priority":
                queue = PriorityDropTailQueue(source_spec.queue_size,
                                              num_classes=self.config.num_traffic_classes)
            link = Link(
                self.simulator,
                source=spec.source,
                target=spec.target,
                capacity=spec.capacity,
                propagation_delay=spec.propagation_delay,
                queue_capacity=source_spec.queue_size,
                deliver=target_node.receive,
                queue=queue,
            )
            self._links[index] = link
            self._nodes[spec.source].attach_output_link(spec.target, link)
        # Install per-flow routes.
        for (source, destination), path in self.routing.items():
            if self.traffic.demand(source, destination) <= 0:
                continue
            for position, node in enumerate(path[:-1]):
                self._nodes[node].set_route((source, destination), path[position + 1])

    def _make_sources(self) -> list:
        sources = []
        source_cls = _SOURCE_CLASSES[self.config.source_model]
        for src, dst, rate in self.traffic.pairs():
            if not self.routing.has_path(src, dst):
                raise ValueError(f"traffic for pair ({src},{dst}) has no route")
            flow_rng = np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1))
            priorities = self.config.flow_priorities or {}
            source = source_cls(
                self.simulator,
                flow=(src, dst),
                rate_bps=rate,
                sink=self._inject,
                mean_packet_size_bits=self.config.mean_packet_size_bits,
                rng=flow_rng,
                exponential_packet_sizes=self.config.exponential_packet_sizes,
                priority=priorities.get((src, dst), 0),
            )
            self._recorders[(src, dst)] = FlowRecorder((src, dst))
            sources.append(source)
        return sources

    # ------------------------------------------------------------------ #
    # Packet callbacks
    # ------------------------------------------------------------------ #
    def _inject(self, packet: Packet) -> None:
        if self._measuring:
            self._recorders[packet.flow].record_sent()
        packet.record_hop(packet.source)
        # The packet leaves the source host through the first link of its path.
        path = self.routing.path(*packet.flow)
        first_link = self._nodes[path[0]].output_link(path[1])
        accepted = first_link.send(packet)
        if not accepted and self._measuring:
            self._recorders[packet.flow].record_dropped()

    def _handle_delivery(self, packet: Packet) -> None:
        if not self._measuring or packet.created_at < self._measurement_start:
            return
        delay = self.simulator.now - packet.created_at
        self._recorders[packet.flow].record_delivery(delay)

    def _handle_drop(self, packet: Packet, node_id: int) -> None:
        if not self._measuring or packet.created_at < self._measurement_start:
            return
        recorder = self._recorders.get(packet.flow)
        if recorder is not None:
            recorder.record_dropped()

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute warm-up then measurement and return the aggregated result."""
        config = self.config
        sources = self._make_sources()
        horizon = config.warmup + config.duration
        for source in sources:
            source.start(stop_time=horizon)

        # Warm-up: run without recording to reach steady state.
        self._measuring = False
        self._measurement_start = config.warmup
        if config.warmup > 0:
            self.simulator.run(until=config.warmup)
        self._measuring = True
        self.simulator.run(until=horizon)
        # Let in-flight packets drain (sources have stopped by now).
        self.simulator.run(max_events=2_000_000)
        self._measuring = False

        return self._collect(config)

    def _collect(self, config: SimulationConfig) -> SimulationResult:
        flow_stats = {}
        total_sent = total_delivered = total_dropped = 0
        for pair, recorder in self._recorders.items():
            stats = recorder.finalize()
            if stats is None:
                continue
            flow_stats[pair] = stats
            total_sent += stats.packets_sent
            total_delivered += stats.packets_delivered
            total_dropped += stats.packets_dropped

        link_stats = {}
        for index, link in self._links.items():
            link_stats[index] = LinkStats(
                link_index=index,
                source=link.source,
                target=link.target,
                utilization=link.utilization(config.warmup + config.duration),
                packets_sent=link.packets_sent,
                queue_drops=link.queue.drops,
                average_queue_occupancy=link.queue.average_occupancy(self.simulator.now),
                max_queue_occupancy=link.queue.max_occupancy,
            )

        return SimulationResult(
            duration=config.duration,
            warmup=config.warmup,
            flow_stats=flow_stats,
            link_stats=link_stats,
            total_packets_generated=total_sent,
            total_packets_delivered=total_delivered,
            total_packets_dropped=total_dropped,
            events_processed=self.simulator.events_processed,
        )


def simulate_network(topology: Topology, routing: RoutingScheme, traffic: TrafficMatrix,
                     config: Optional[SimulationConfig] = None) -> SimulationResult:
    """Convenience wrapper: build a :class:`NetworkSimulation` and run it."""
    return NetworkSimulation(topology, routing, traffic, config).run()
