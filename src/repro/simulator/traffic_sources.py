"""Packet sources: Poisson, on-off (bursty) and constant-bit-rate generators."""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Tuple

import numpy as np

from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet

__all__ = ["TrafficSource", "PoissonSource", "OnOffSource", "ConstantBitRateSource"]

#: Default average packet size in bits (1000-byte packets).
DEFAULT_PACKET_SIZE_BITS = 8000.0


class TrafficSource:
    """Base class: emits packets of one flow into a sink callable."""

    _id_counter = itertools.count()

    def __init__(
        self,
        simulator: Simulator,
        flow: Tuple[int, int],
        rate_bps: float,
        sink: Callable[[Packet], None],
        mean_packet_size_bits: float = DEFAULT_PACKET_SIZE_BITS,
        rng: Optional[np.random.Generator] = None,
        exponential_packet_sizes: bool = True,
        priority: int = 0,
    ) -> None:
        if rate_bps < 0:
            raise ValueError("rate must be non-negative")
        if mean_packet_size_bits <= 0:
            raise ValueError("packet size must be positive")
        if priority < 0:
            raise ValueError("priority must be non-negative (0 is the highest class)")
        self.simulator = simulator
        self.flow = (int(flow[0]), int(flow[1]))
        self.rate_bps = float(rate_bps)
        self.sink = sink
        self.mean_packet_size_bits = float(mean_packet_size_bits)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.exponential_packet_sizes = exponential_packet_sizes
        self.priority = int(priority)
        self.packets_generated = 0
        self.stopped = False
        self.stop_time: Optional[float] = None

    # ------------------------------------------------------------------ #
    @property
    def packets_per_second(self) -> float:
        """Average packet rate implied by the bit rate and packet size."""
        return self.rate_bps / self.mean_packet_size_bits

    def _packet_size(self) -> float:
        if self.exponential_packet_sizes:
            return float(self.rng.exponential(self.mean_packet_size_bits))
        return self.mean_packet_size_bits

    def _emit(self) -> None:
        packet = Packet(
            packet_id=next(TrafficSource._id_counter),
            flow=self.flow,
            size_bits=max(self._packet_size(), 1.0),
            created_at=self.simulator.now,
            priority=self.priority,
        )
        self.packets_generated += 1
        self.sink(packet)

    def start(self, stop_time: Optional[float] = None) -> None:
        """Begin generating packets (until ``stop_time`` if given)."""
        self.stop_time = stop_time
        if self.rate_bps <= 0:
            return
        self._schedule_next()

    def stop(self) -> None:
        """Stop generating new packets."""
        self.stopped = True

    def _should_stop(self) -> bool:
        if self.stopped:
            return True
        return self.stop_time is not None and self.simulator.now >= self.stop_time

    def _schedule_next(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError


class PoissonSource(TrafficSource):
    """Poisson packet arrivals: exponential inter-arrival times.

    With exponential packet sizes this makes every link an M/M/1/K system,
    which is exactly the regime the analytic baseline covers — ideal for
    validating the simulator.
    """

    def _schedule_next(self) -> None:
        if self._should_stop():
            return
        gap = self.rng.exponential(1.0 / self.packets_per_second)
        self.simulator.schedule(gap, self._fire)

    def _fire(self) -> None:
        if self._should_stop():
            return
        self._emit()
        self._schedule_next()


class ConstantBitRateSource(TrafficSource):
    """Deterministic arrivals at fixed intervals with fixed packet sizes."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("exponential_packet_sizes", False)
        super().__init__(*args, **kwargs)

    def _schedule_next(self) -> None:
        if self._should_stop():
            return
        self.simulator.schedule(1.0 / self.packets_per_second, self._fire)

    def _fire(self) -> None:
        if self._should_stop():
            return
        self._emit()
        self._schedule_next()


class OnOffSource(TrafficSource):
    """A bursty source alternating exponential ON and OFF periods.

    During ON periods packets arrive as a Poisson process at a rate chosen so
    the *long-run average* equals ``rate_bps``.
    """

    def __init__(self, *args, mean_on_time: float = 0.1, mean_off_time: float = 0.3,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if mean_on_time <= 0 or mean_off_time < 0:
            raise ValueError("invalid on/off durations")
        self.mean_on_time = mean_on_time
        self.mean_off_time = mean_off_time
        duty_cycle = mean_on_time / (mean_on_time + mean_off_time)
        self._on_rate_pps = self.packets_per_second / duty_cycle
        self._on = False
        self._phase_end = 0.0

    def _schedule_next(self) -> None:
        if self._should_stop():
            return
        if not self._on:
            # Begin an ON phase now.
            self._on = True
            self._phase_end = self.simulator.now + self.rng.exponential(self.mean_on_time)
        gap = self.rng.exponential(1.0 / self._on_rate_pps)
        self.simulator.schedule(gap, self._fire)

    def _fire(self) -> None:
        if self._should_stop():
            return
        if self.simulator.now >= self._phase_end:
            # Phase over: stay silent for an OFF period, then start a new ON phase.
            self._on = False
            off_duration = self.rng.exponential(self.mean_off_time) if self.mean_off_time else 0.0
            self.simulator.schedule(off_duration, self._schedule_next)
            return
        self._emit()
        gap = self.rng.exponential(1.0 / self._on_rate_pps)
        self.simulator.schedule(gap, self._fire)
