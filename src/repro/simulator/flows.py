"""Flow definitions binding a source-destination pair to its offered traffic."""

from __future__ import annotations

import dataclasses
from typing import Tuple

__all__ = ["Flow"]


@dataclasses.dataclass(frozen=True)
class Flow:
    """One end-to-end flow of the traffic matrix.

    Attributes
    ----------
    source, destination:
        Endpoints (node identifiers).
    rate_bps:
        Average offered traffic in bits per second.
    source_model:
        Name of the packet-arrival model: ``"poisson"``, ``"onoff"`` or
        ``"cbr"``.
    """

    source: int
    destination: int
    rate_bps: float
    source_model: str = "poisson"

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("flow endpoints must differ")
        if self.rate_bps < 0:
            raise ValueError("flow rate must be non-negative")
        if self.source_model not in ("poisson", "onoff", "cbr"):
            raise ValueError(f"unknown source model '{self.source_model}'")

    @property
    def pair(self) -> Tuple[int, int]:
        """The ``(source, destination)`` tuple identifying the flow."""
        return (self.source, self.destination)
