"""Event objects and the future-event list of the discrete-event engine."""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any, Callable, Optional

__all__ = ["Event", "EventQueue"]


@dataclasses.dataclass(order=False)
class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so that simultaneous events are
    processed in the order they were scheduled, which keeps runs
    deterministic.
    """

    time: float
    sequence: int
    callback: Callable[[], Any]
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


class EventQueue:
    """A binary-heap future-event list."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest non-cancelled event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
