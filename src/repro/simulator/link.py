"""Directed links: a transmitter draining an output queue onto a wire."""

from __future__ import annotations

from typing import Callable, Optional

from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet
from repro.simulator.queues import DropTailQueue

__all__ = ["Link"]


class Link:
    """A directed link with its output-port queue.

    The link transmits one packet at a time at ``capacity`` bits/s; the
    packet then propagates for ``propagation_delay`` seconds before being
    handed to ``deliver`` (normally the arrival handler of the downstream
    node).  Waiting packets are held in a :class:`DropTailQueue` whose size
    is the *source node's* queue size — the per-device feature the extended
    model learns.
    """

    def __init__(
        self,
        simulator: Simulator,
        source: int,
        target: int,
        capacity: float,
        propagation_delay: float,
        queue_capacity: int,
        deliver: Callable[[Packet], None],
        queue: Optional[DropTailQueue] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay must be non-negative")
        self.simulator = simulator
        self.source = int(source)
        self.target = int(target)
        self.capacity = float(capacity)
        self.propagation_delay = float(propagation_delay)
        # A custom queue (e.g. strict-priority) may be injected; by default the
        # output port is a plain FIFO drop-tail buffer of the requested size.
        self.queue = queue if queue is not None else DropTailQueue(queue_capacity)
        self.deliver = deliver
        self.busy = False
        # Statistics
        self.packets_sent = 0
        self.bits_sent = 0.0
        self.busy_time = 0.0

    # ------------------------------------------------------------------ #
    def transmission_time(self, packet: Packet) -> float:
        """Serialisation delay of ``packet`` on this link."""
        return packet.size_bits / self.capacity

    def send(self, packet: Packet) -> bool:
        """Accept a packet for transmission.

        If the transmitter is idle the packet starts serialising immediately;
        otherwise it joins the queue.  Returns False when the queue is full
        and the packet is dropped.
        """
        now = self.simulator.now
        if not self.busy:
            self._start_transmission(packet)
            return True
        return self.queue.enqueue(packet, now)

    def _start_transmission(self, packet: Packet) -> None:
        self.busy = True
        duration = self.transmission_time(packet)
        self.busy_time += duration
        self.packets_sent += 1
        self.bits_sent += packet.size_bits
        self.simulator.schedule(duration, lambda: self._finish_transmission(packet))

    def _finish_transmission(self, packet: Packet) -> None:
        # The wire is free as soon as the last bit leaves; propagation happens
        # "in flight" and does not block the next transmission.
        self.simulator.schedule(self.propagation_delay, lambda: self.deliver(packet))
        next_packet = self.queue.dequeue(self.simulator.now)
        if next_packet is None:
            self.busy = False
        else:
            self._start_transmission(next_packet)

    # ------------------------------------------------------------------ #
    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the transmitter was busy."""
        horizon = elapsed if elapsed is not None else self.simulator.now
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def __repr__(self) -> str:
        return (f"Link({self.source}->{self.target}, {self.capacity:.3g} bps, "
                f"queue={self.queue.capacity_packets})")
