"""The :class:`Packet` travelling through the simulated network."""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

__all__ = ["Packet"]


@dataclasses.dataclass
class Packet:
    """A single packet of one source-destination flow.

    Attributes
    ----------
    packet_id:
        Unique identifier (per simulation) used for tracing.
    flow:
        ``(source, destination)`` pair of the flow the packet belongs to.
    size_bits:
        Packet size in bits (headers included).
    created_at:
        Simulation time when the source generated the packet.
    delivered_at:
        Simulation time when the destination received it (``None`` while in
        flight or if dropped).
    dropped:
        Set when a full queue discarded the packet.
    hops:
        Node identifiers visited so far (including the source).
    priority:
        Traffic class used by priority schedulers; 0 is the highest priority.
    """

    packet_id: int
    flow: Tuple[int, int]
    size_bits: float
    created_at: float
    delivered_at: Optional[float] = None
    dropped: bool = False
    hops: List[int] = dataclasses.field(default_factory=list)
    priority: int = 0

    @property
    def source(self) -> int:
        return self.flow[0]

    @property
    def destination(self) -> int:
        return self.flow[1]

    @property
    def delay(self) -> Optional[float]:
        """End-to-end delay in seconds, or ``None`` if not delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    def record_hop(self, node: int) -> None:
        """Append a visited node to the trace."""
        self.hops.append(int(node))
