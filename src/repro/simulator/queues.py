"""Output-port queues: finite FIFO drop-tail buffers.

The queue size (in packets) is the *node feature* the paper introduces into
RouteNet: devices whose output buffers hold only one packet drop much more
traffic and add less queueing delay than devices with standard buffers, and
the extended model can only predict delays accurately if it sees this
attribute.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.simulator.packet import Packet

__all__ = ["DropTailQueue", "PriorityDropTailQueue"]


class DropTailQueue:
    """A finite FIFO queue that discards arrivals when full (drop-tail).

    ``capacity_packets`` counts only *waiting* packets; the packet currently
    being transmitted on the outgoing link is not held in the queue, matching
    the usual output-port model (one packet in the "server", up to K waiting).
    """

    def __init__(self, capacity_packets: int) -> None:
        if capacity_packets < 1:
            raise ValueError("queue capacity must be at least 1 packet")
        self.capacity_packets = int(capacity_packets)
        self._buffer: Deque[Packet] = deque()
        # Statistics
        self.arrivals = 0
        self.drops = 0
        self.max_occupancy = 0
        self._occupancy_time_integral = 0.0
        self._last_change_time = 0.0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def is_empty(self) -> bool:
        return not self._buffer

    @property
    def is_full(self) -> bool:
        return len(self._buffer) >= self.capacity_packets

    # ------------------------------------------------------------------ #
    def _track_occupancy(self, now: float) -> None:
        self._occupancy_time_integral += len(self._buffer) * (now - self._last_change_time)
        self._last_change_time = now

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Try to append ``packet``; return False (and count a drop) when full."""
        self._track_occupancy(now)
        self.arrivals += 1
        if self.is_full:
            self.drops += 1
            packet.dropped = True
            return False
        self._buffer.append(packet)
        self.max_occupancy = max(self.max_occupancy, len(self._buffer))
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        """Pop the head-of-line packet, or ``None`` when empty."""
        self._track_occupancy(now)
        if not self._buffer:
            return None
        return self._buffer.popleft()

    def peek_all(self) -> List[Packet]:
        """Snapshot of the waiting packets (head first), for inspection."""
        return list(self._buffer)

    def average_occupancy(self, now: float) -> float:
        """Time-averaged number of waiting packets up to ``now``."""
        if now <= 0:
            return 0.0
        integral = self._occupancy_time_integral
        integral += len(self._buffer) * (now - self._last_change_time)
        return integral / now

    @property
    def drop_ratio(self) -> float:
        """Fraction of arrivals that were discarded."""
        if self.arrivals == 0:
            return 0.0
        return self.drops / self.arrivals


class PriorityDropTailQueue(DropTailQueue):
    """A strict-priority queue sharing one drop-tail buffer across classes.

    Packets carry a ``priority`` attribute (0 = highest).  Arrivals are
    accepted while the *total* occupancy is below ``capacity_packets`` —
    the buffer is shared — but departures always serve the highest-priority
    non-empty class first.  This models the "different forwarding
    behaviours" the paper lists as the next device feature to bring into
    the GNN, and lets the simulator generate datasets where per-class
    delays diverge under congestion.
    """

    def __init__(self, capacity_packets: int, num_classes: int = 2) -> None:
        super().__init__(capacity_packets)
        if num_classes < 1:
            raise ValueError("need at least one traffic class")
        self.num_classes = int(num_classes)
        self._class_buffers: List[Deque[Packet]] = [deque() for _ in range(self.num_classes)]

    def __len__(self) -> int:
        return sum(len(buffer) for buffer in self._class_buffers)

    @property
    def is_empty(self) -> bool:
        return all(not buffer for buffer in self._class_buffers)

    @property
    def is_full(self) -> bool:
        return len(self) >= self.capacity_packets

    def _track_occupancy(self, now: float) -> None:
        self._occupancy_time_integral += len(self) * (now - self._last_change_time)
        self._last_change_time = now

    def _class_of(self, packet: Packet) -> int:
        return int(min(max(packet.priority, 0), self.num_classes - 1))

    def enqueue(self, packet: Packet, now: float) -> bool:
        self._track_occupancy(now)
        self.arrivals += 1
        if self.is_full:
            self.drops += 1
            packet.dropped = True
            return False
        self._class_buffers[self._class_of(packet)].append(packet)
        self.max_occupancy = max(self.max_occupancy, len(self))
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        self._track_occupancy(now)
        for buffer in self._class_buffers:
            if buffer:
                return buffer.popleft()
        return None

    def peek_all(self) -> List[Packet]:
        snapshot: List[Packet] = []
        for buffer in self._class_buffers:
            snapshot.extend(buffer)
        return snapshot

    def class_occupancy(self, traffic_class: int) -> int:
        """Number of waiting packets of one traffic class."""
        if not 0 <= traffic_class < self.num_classes:
            raise ValueError("traffic class out of range")
        return len(self._class_buffers[traffic_class])

    def average_occupancy(self, now: float) -> float:
        if now <= 0:
            return 0.0
        integral = self._occupancy_time_integral
        integral += len(self) * (now - self._last_change_time)
        return integral / now
