"""Forwarding devices: routers that look up next hops and feed output links."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.simulator.link import Link
from repro.simulator.packet import Packet

__all__ = ["RouterNode"]


class RouterNode:
    """A store-and-forward router.

    A packet arriving at the router is either delivered locally (when the
    router is the packet's destination) or forwarded on the output link
    towards ``forwarding_table[destination]``.  Forwarding is assumed to take
    negligible processing time compared to transmission and propagation, as
    in the paper's simulator.
    """

    def __init__(self, node_id: int, queue_size: int,
                 on_delivered: Callable[[Packet], None],
                 on_dropped: Callable[[Packet, int], None]) -> None:
        self.node_id = int(node_id)
        self.queue_size = int(queue_size)
        self._on_delivered = on_delivered
        self._on_dropped = on_dropped
        self._output_links: Dict[int, Link] = {}
        self._forwarding_table: Dict[tuple, int] = {}
        # Statistics
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_dropped = 0

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def attach_output_link(self, neighbor: int, link: Link) -> None:
        """Register the output link towards ``neighbor``."""
        self._output_links[int(neighbor)] = link

    def set_route(self, flow: tuple, next_hop: int) -> None:
        """Install the next hop for a ``(source, destination)`` flow.

        Forwarding is per-flow (not merely per-destination) so that routing
        schemes with non-destination-based paths remain simulable.
        """
        if int(next_hop) not in self._output_links:
            raise KeyError(f"node {self.node_id} has no output link to {next_hop}")
        self._forwarding_table[(int(flow[0]), int(flow[1]))] = int(next_hop)

    def output_link(self, neighbor: int) -> Link:
        """The output link towards ``neighbor``."""
        return self._output_links[int(neighbor)]

    # ------------------------------------------------------------------ #
    # Packet handling
    # ------------------------------------------------------------------ #
    def receive(self, packet: Packet) -> None:
        """Handle a packet arriving at this router."""
        self.packets_received += 1
        packet.record_hop(self.node_id)
        if packet.destination == self.node_id:
            self.packets_delivered += 1
            self._on_delivered(packet)
            return
        next_hop = self._lookup(packet)
        if next_hop is None:
            self.packets_dropped += 1
            packet.dropped = True
            self._on_dropped(packet, self.node_id)
            return
        link = self._output_links[next_hop]
        accepted = link.send(packet)
        if accepted:
            self.packets_forwarded += 1
        else:
            self.packets_dropped += 1
            self._on_dropped(packet, self.node_id)

    def _lookup(self, packet: Packet) -> Optional[int]:
        return self._forwarding_table.get((packet.source, packet.destination))

    def __repr__(self) -> str:
        return f"RouterNode(id={self.node_id}, queue_size={self.queue_size})"
