"""The discrete-event simulation engine (clock + future-event list)."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simulator.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """A minimal, deterministic discrete-event engine.

    Components schedule callbacks with :meth:`schedule` (relative delay) or
    :meth:`schedule_at` (absolute time); :meth:`run` processes events in
    chronological order until the horizon or until the event list drains.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError("cannot schedule an event in the past")
        return self._queue.push(time, callback)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until ``until`` seconds, ``max_events`` events, or drain.

        Returns the simulation time when the run stopped.  Events scheduled
        exactly at ``until`` are *not* executed (the horizon is exclusive),
        but the clock is advanced to ``until`` when a horizon is given.
        """
        if self._running:
            raise RuntimeError("run() is not re-entrant")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time >= until:
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self._now = event.time
                event.callback()
                self._processed += 1
                executed += 1
            if until is not None and (self._queue.peek_time() is None
                                      or self._queue.peek_time() >= until):
                self._now = max(self._now, until) if until is not None else self._now
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
