"""Packet-level discrete-event network simulator.

This subpackage is the reproduction's substitute for the in-house OMNeT++
simulator the authors used to generate ground-truth datasets.  It models:

* forwarding devices with finite FIFO output queues (drop-tail), whose size
  in packets is the node feature the Extended RouteNet learns from;
* store-and-forward links with a configurable capacity and propagation delay;
* Poisson (or deterministic / on-off) packet sources per source-destination
  flow, with exponential or fixed packet sizes;
* per-flow measurement of average delay, jitter and loss, plus per-link
  utilisation and per-queue occupancy statistics.

The high-level entry point is :func:`repro.simulator.network.simulate_network`,
which wires a topology, a routing scheme and a traffic matrix into a
simulation and returns a :class:`repro.simulator.metrics.SimulationResult`.
"""

from repro.simulator.engine import Simulator
from repro.simulator.events import Event, EventQueue
from repro.simulator.packet import Packet
from repro.simulator.queues import DropTailQueue, PriorityDropTailQueue
from repro.simulator.link import Link
from repro.simulator.node import RouterNode
from repro.simulator.traffic_sources import (
    ConstantBitRateSource,
    OnOffSource,
    PoissonSource,
    TrafficSource,
)
from repro.simulator.flows import Flow
from repro.simulator.metrics import FlowStats, LinkStats, SimulationResult
from repro.simulator.network import NetworkSimulation, SimulationConfig, simulate_network

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "Packet",
    "DropTailQueue",
    "PriorityDropTailQueue",
    "Link",
    "RouterNode",
    "TrafficSource",
    "PoissonSource",
    "OnOffSource",
    "ConstantBitRateSource",
    "Flow",
    "FlowStats",
    "LinkStats",
    "SimulationResult",
    "NetworkSimulation",
    "SimulationConfig",
    "simulate_network",
]
