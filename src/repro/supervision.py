"""Shared worker-farm resilience layer: liveness, timeouts, respawn.

Both long-running process farms in this codebase — the gradient worker
pool of :mod:`repro.nn.parallel` and the dataset-factory farm of
:mod:`repro.datasets.factory` — speak the same low-level dialect: a
parent holds one pipe per worker process, sends small task messages and
waits for replies.  Before this module, any worker death was fatal to the
whole run (and a hung worker blocked it forever).  This module factors
out the machinery both farms need to *survive* those faults:

* :class:`SupervisedWorker` wraps one (process, pipe) pair behind a
  ``spawn`` callable, so the worker can be **reaped and respawned** with
  identical start-up state after a crash.  Liveness is tracked by
  polling: a worker whose process has exited with no pending pipe data is
  dead; one that exceeds its task deadline is hung (and gets killed).
* :class:`RestartBudget` bounds how many respawns a farm may spend before
  giving up — a crash loop (e.g. the OOM killer reaping every replacement)
  must eventually surface as an error instead of burning CPU forever.
* :class:`SupervisionPolicy` carries the knobs (task timeout, per-task
  retry bound, restart budget, poll interval) through both farms and the
  CLI.

Determinism note: supervision never changes *what* is computed.  Both
farms re-dispatch exactly the work the dead worker held — the gradient
pool re-broadcasts the same parameter slot and batch, the factory
re-queues the unit whose RNG stream is a pure function of its index — so
a recovered run is bit-identical to a fault-free one.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Optional, Tuple

__all__ = [
    "SupervisionPolicy",
    "SupervisedWorker",
    "RestartBudget",
    "WorkerDied",
    "WorkerTimedOut",
    "RestartBudgetExceeded",
]


class WorkerDied(RuntimeError):
    """A worker process exited (or its pipe broke) with work outstanding."""


class WorkerTimedOut(RuntimeError):
    """A worker exceeded its per-task deadline and is presumed hung."""


class RestartBudgetExceeded(RuntimeError):
    """The farm spent its whole respawn budget — a crash loop, not a blip."""


@dataclasses.dataclass
class SupervisionPolicy:
    """Fault-tolerance knobs shared by the training and factory farms.

    Attributes
    ----------
    task_timeout:
        Seconds a single task may run on a worker before the worker is
        presumed hung, killed and respawned (``None`` disables — the
        default, since a legitimate task's cost is workload-dependent).
    max_retries:
        How many *additional* executions a failing task gets after its
        first attempt before it is given up on (quarantined, in the
        factory's vocabulary).  Crashes, timeouts and in-task exceptions
        all consume the same budget.
    max_restarts:
        Total worker respawns a farm may spend over its lifetime.
    poll_interval:
        Liveness-check tick in seconds: how often a waiting parent looks
        at process liveness and task deadlines between pipe polls.
    """

    task_timeout: Optional[float] = None
    max_retries: int = 2
    max_restarts: int = 8
    poll_interval: float = 0.2

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None to disable)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def deadline(self, tasks: int = 1) -> Optional[float]:
        """Absolute monotonic deadline for ``tasks`` queued tasks, or None."""
        if self.task_timeout is None:
            return None
        return time.monotonic() + self.task_timeout * max(1, tasks)


class RestartBudget:
    """Counts worker respawns against a farm-wide bound."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def spend(self, reason: str) -> None:
        """Consume one respawn; raise when the budget is exhausted."""
        if self.spent >= self.limit:
            raise RestartBudgetExceeded(
                f"worker restart budget ({self.limit}) exhausted; last fault: "
                f"{reason} — the farm is crash-looping, not hitting a blip "
                "(committed work is preserved; fix the cause and resume)")
        self.spent += 1


class SupervisedWorker:
    """One worker process + pipe, respawnable with identical start state.

    ``spawn(rank)`` must start the process, complete the farm's start-up
    handshake, and return ``(process, connection)`` — so a respawned
    worker is indistinguishable from a fresh one (same pickled payload,
    same shared buffers).  Spawn failures propagate to the caller.
    """

    def __init__(self, rank: int,
                 spawn: Callable[[int], Tuple[object, object]]) -> None:
        self.rank = rank
        self._spawn = spawn
        self.restarts = 0
        self.process, self.conn = spawn(rank)

    # ------------------------------------------------------------------ #
    def alive(self) -> bool:
        return self.process.is_alive()

    def has_data(self) -> bool:
        try:
            return self.conn.poll(0)
        except (OSError, ValueError):
            return False

    def send(self, message) -> None:
        """Send a task message; a broken pipe means the worker is dead."""
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as error:
            raise WorkerDied(
                f"worker {self.rank} died before accepting work "
                f"({error!r}); its process may have been killed "
                "(e.g. by the OOM killer)") from error

    def is_dead(self) -> bool:
        """Process gone *and* nothing left to read — truly dead.

        A worker that wrote replies and then died still has readable data
        in the pipe; those replies are collected normally and only the
        unanswered tasks are re-dispatched after the respawn.
        """
        return not self.alive() and not self.has_data()

    def recv_within(self, deadline: Optional[float],
                    poll_interval: float = 0.2):
        """Receive one reply, supervising liveness and the task deadline.

        Raises :class:`WorkerDied` when the process exits without
        replying, :class:`WorkerTimedOut` when ``deadline`` (monotonic
        seconds, ``None`` = no bound) passes first.
        """
        while True:
            try:
                if self.conn.poll(poll_interval):
                    return self.conn.recv()
            except (EOFError, OSError) as error:
                raise WorkerDied(
                    f"worker {self.rank} died with work in flight "
                    f"({error!r}); its process may have been killed "
                    "(e.g. by the OOM killer)") from error
            if self.is_dead():
                raise WorkerDied(
                    f"worker {self.rank} (pid {self.process.pid}) exited "
                    f"with code {self.process.exitcode} while its work was "
                    "in flight")
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerTimedOut(
                    f"worker {self.rank} (pid {self.process.pid}) exceeded "
                    "its task timeout and is presumed hung")

    # ------------------------------------------------------------------ #
    def reap(self, graceful_timeout: float = 0.5) -> None:
        """Tear the worker down for good (terminate, then kill)."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=graceful_timeout)
            if self.process.is_alive():  # pragma: no cover - SIGTERM ignored
                self.process.kill()
                self.process.join(timeout=graceful_timeout)
        else:
            self.process.join(timeout=graceful_timeout)

    def respawn(self) -> None:
        """Reap the current process and start an identical replacement."""
        self.reap()
        self.restarts += 1
        self.process, self.conn = self._spawn(self.rank)

    def close(self, farewell=None, join_timeout: float = 5.0) -> None:
        """Best-effort orderly shutdown (used by the farms' close paths)."""
        if farewell is not None:
            try:
                self.conn.send(farewell)
            except (OSError, ValueError):
                pass
        self.process.join(timeout=join_timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1)
        try:
            self.conn.close()
        except OSError:
            pass
