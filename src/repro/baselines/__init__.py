"""Analytic baseline network models (queueing theory).

The paper motivates GNN models by noting that "traditional methods like
Queueing Theory often fail to provide accurate models for complex real-world
scenarios".  This subpackage implements those traditional methods so the
benchmarks can quantify that gap:

* :class:`~repro.baselines.queueing.MM1Model` — infinite-buffer M/M/1 links.
* :class:`~repro.baselines.queueing.MM1KModel` — finite-buffer M/M/1/K links
  with loss-aware thinning of flows along their paths.
"""

from repro.baselines.queueing import (
    MM1KModel,
    MM1Model,
    QueueingNetworkModel,
    mm1_waiting_time,
    mm1k_blocking_probability,
    mm1k_mean_queue_length,
)
from repro.baselines.feature_regression import PathFeatureExtractor, RidgeRegressionBaseline

__all__ = [
    "QueueingNetworkModel",
    "MM1Model",
    "MM1KModel",
    "mm1_waiting_time",
    "mm1k_blocking_probability",
    "mm1k_mean_queue_length",
    "PathFeatureExtractor",
    "RidgeRegressionBaseline",
]
