"""Queueing-theory delay estimators: M/M/1 and M/M/1/K network models.

Both models treat every directed link as an independent queue fed by the
aggregate of the flows routed over it (Kleinrock's independence assumption).
Per-path delay is the sum of per-link sojourn times plus propagation delays.

* :class:`MM1Model` assumes infinite buffers — it ignores queue sizes
  entirely, exactly like the original RouteNet's feature set.
* :class:`MM1KModel` models each output buffer as an M/M/1/K queue where
  ``K`` is the source node's queue size plus the packet in service, computes
  blocking probabilities, and thins flows hop by hop so downstream links see
  only the traffic that survived upstream drops.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.routing.scheme import RoutingScheme
from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "mm1_waiting_time",
    "mm1k_blocking_probability",
    "mm1k_mean_queue_length",
    "QueueingPrediction",
    "QueueingNetworkModel",
    "MM1Model",
    "MM1KModel",
]


# ---------------------------------------------------------------------- #
# Single-queue formulas
# ---------------------------------------------------------------------- #
def mm1_waiting_time(arrival_rate: float, service_rate: float) -> float:
    """Mean sojourn time (waiting + service) of an M/M/1 queue.

    Returns ``inf`` for overloaded queues (rho >= 1).
    """
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("rates must be positive (arrival may be zero)")
    if arrival_rate >= service_rate:
        return float("inf")
    return 1.0 / (service_rate - arrival_rate)


def mm1k_blocking_probability(arrival_rate: float, service_rate: float, capacity: int) -> float:
    """Blocking probability of an M/M/1/K queue with ``capacity`` total places."""
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("rates must be positive (arrival may be zero)")
    if arrival_rate == 0:
        return 0.0
    rho = arrival_rate / service_rate
    if np.isclose(rho, 1.0):
        return 1.0 / (capacity + 1)
    return float((1 - rho) * rho ** capacity / (1 - rho ** (capacity + 1)))


def mm1k_mean_queue_length(arrival_rate: float, service_rate: float, capacity: int) -> float:
    """Mean number of packets in an M/M/1/K system (waiting + in service)."""
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("rates must be positive (arrival may be zero)")
    if arrival_rate == 0:
        return 0.0
    rho = arrival_rate / service_rate
    if np.isclose(rho, 1.0):
        return capacity / 2.0
    k = capacity
    return float(rho / (1 - rho) - (k + 1) * rho ** (k + 1) / (1 - rho ** (k + 1)))


# ---------------------------------------------------------------------- #
# Network models
# ---------------------------------------------------------------------- #
@dataclasses.dataclass
class QueueingPrediction:
    """Output of an analytic network model."""

    pair_order: List[Tuple[int, int]]
    delays: np.ndarray
    loss_ratios: np.ndarray
    link_utilizations: np.ndarray

    def delay(self, source: int, destination: int) -> float:
        """Delay prediction of one pair."""
        return float(self.delays[self.pair_order.index((source, destination))])

    def loss(self, source: int, destination: int) -> float:
        """Loss-ratio prediction of one pair."""
        return float(self.loss_ratios[self.pair_order.index((source, destination))])


class QueueingNetworkModel:
    """Shared machinery of the analytic models."""

    def __init__(self, mean_packet_size_bits: float = 8000.0) -> None:
        if mean_packet_size_bits <= 0:
            raise ValueError("packet size must be positive")
        self.mean_packet_size_bits = mean_packet_size_bits

    # -- hooks implemented by subclasses --------------------------------- #
    def _link_metrics(self, arrival_pps: float, service_pps: float,
                      queue_capacity: int) -> Tuple[float, float]:
        """Return ``(sojourn_seconds, blocking_probability)`` for one link."""
        raise NotImplementedError

    # -- public API ------------------------------------------------------ #
    def predict(self, topology: Topology, routing: RoutingScheme,
                traffic: TrafficMatrix) -> QueueingPrediction:
        """Predict per-pair delay and loss for a scenario."""
        if traffic.num_nodes != topology.num_nodes:
            raise ValueError("traffic matrix size does not match the topology")
        pair_order = routing.pairs()
        num_links = topology.num_links
        service_pps = np.array([spec.capacity / self.mean_packet_size_bits
                                for spec in topology.links()])
        queue_capacities = np.array(
            [topology.node_spec(spec.source).queue_size + 1 for spec in topology.links()],
            dtype=int)
        propagation = np.array([spec.propagation_delay for spec in topology.links()])

        # Offered load per link in packets/s, thinned hop-by-hop by upstream loss.
        arrival_pps = np.zeros(num_links)
        per_pair_offered: Dict[Tuple[int, int], List[int]] = {}
        for pair in pair_order:
            per_pair_offered[pair] = routing.link_path(*pair)

        # Iterate the fixed point: blocking depends on arrivals, arrivals on blocking.
        blocking = np.zeros(num_links)
        for _ in range(self._fixed_point_iterations()):
            arrival_pps[:] = 0.0
            for pair in pair_order:
                rate = traffic.demand(*pair) / self.mean_packet_size_bits
                if rate <= 0:
                    continue
                surviving = rate
                for link in per_pair_offered[pair]:
                    arrival_pps[link] += surviving
                    surviving *= (1.0 - blocking[link])
            new_blocking = np.array([
                self._link_metrics(arrival_pps[l], service_pps[l], queue_capacities[l])[1]
                for l in range(num_links)
            ])
            if np.allclose(new_blocking, blocking, atol=1e-9):
                blocking = new_blocking
                break
            blocking = new_blocking

        sojourn = np.array([
            self._link_metrics(arrival_pps[l], service_pps[l], queue_capacities[l])[0]
            for l in range(num_links)
        ])

        delays = np.zeros(len(pair_order))
        losses = np.zeros(len(pair_order))
        for row, pair in enumerate(pair_order):
            links = per_pair_offered[pair]
            delays[row] = float(np.sum(sojourn[links]) + np.sum(propagation[links]))
            survival = float(np.prod(1.0 - blocking[links]))
            losses[row] = 1.0 - survival

        utilizations = np.minimum(arrival_pps / service_pps, 1.0)
        return QueueingPrediction(pair_order=pair_order, delays=delays,
                                  loss_ratios=losses, link_utilizations=utilizations)

    def predict_delays(self, topology: Topology, routing: RoutingScheme,
                       traffic: TrafficMatrix) -> np.ndarray:
        """Per-pair delays only (in :meth:`RoutingScheme.pairs` order)."""
        return self.predict(topology, routing, traffic).delays

    def _fixed_point_iterations(self) -> int:
        return 1


class MM1Model(QueueingNetworkModel):
    """Infinite-buffer M/M/1 network model (ignores queue sizes)."""

    def _link_metrics(self, arrival_pps: float, service_pps: float,
                      queue_capacity: int) -> Tuple[float, float]:
        return mm1_waiting_time(arrival_pps, service_pps), 0.0


class MM1KModel(QueueingNetworkModel):
    """Finite-buffer M/M/1/K network model with loss-aware thinning."""

    def __init__(self, mean_packet_size_bits: float = 8000.0,
                 fixed_point_iterations: int = 8) -> None:
        super().__init__(mean_packet_size_bits)
        if fixed_point_iterations < 1:
            raise ValueError("need at least one fixed-point iteration")
        self._iterations = fixed_point_iterations

    def _fixed_point_iterations(self) -> int:
        return self._iterations

    def _link_metrics(self, arrival_pps: float, service_pps: float,
                      queue_capacity: int) -> Tuple[float, float]:
        blocking = mm1k_blocking_probability(arrival_pps, service_pps, queue_capacity)
        if arrival_pps <= 0:
            return 1.0 / service_pps, 0.0
        mean_in_system = mm1k_mean_queue_length(arrival_pps, service_pps, queue_capacity)
        effective_arrivals = arrival_pps * (1.0 - blocking)
        if effective_arrivals <= 0:
            return 1.0 / service_pps, blocking
        # Little's law on accepted packets.
        sojourn = mean_in_system / effective_arrivals
        return sojourn, blocking
