"""A non-graph machine-learning baseline: ridge regression on path features.

Before GNNs, learned network models typically regressed per-path performance
from hand-crafted features.  This baseline captures that approach so the
benchmarks can show what the *relational* structure of RouteNet buys:

* features are computed per path from the scenario description (path length,
  traffic volume, sum/max of link utilisations, minimum capacity, minimum
  and mean queue size along the path, propagation delay);
* the model is ordinary ridge regression fitted with a closed-form solve.

Unlike RouteNet it cannot capture the *coupling* between paths beyond what
the static utilisation features encode, and unlike the extended RouteNet it
has no iterative refinement — but it does see queue sizes, so it is a strong
sanity baseline for the Fig. 2 comparison.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.utilization import link_utilizations
from repro.datasets.sample import Sample

__all__ = ["PathFeatureExtractor", "RidgeRegressionBaseline"]


class PathFeatureExtractor:
    """Computes a fixed-length feature vector for every path of a sample."""

    FEATURE_NAMES = (
        "path_length",
        "traffic",
        "sum_utilization",
        "max_utilization",
        "min_capacity",
        "mean_capacity",
        "min_queue_size",
        "mean_queue_size",
        "propagation_delay",
        "serialisation_delay",
    )

    def __init__(self, mean_packet_size_bits: float = 8000.0) -> None:
        if mean_packet_size_bits <= 0:
            raise ValueError("packet size must be positive")
        self.mean_packet_size_bits = mean_packet_size_bits

    def extract(self, sample: Sample) -> np.ndarray:
        """Return an array of shape (num_paths, num_features)."""
        topology = sample.topology
        routing = sample.routing
        utilizations = link_utilizations(routing, sample.traffic)
        capacities = np.array(topology.capacities())
        propagation = np.array([spec.propagation_delay for spec in topology.links()])
        queue_sizes = topology.queue_sizes()

        rows = []
        for pair in sample.pair_order:
            links = routing.link_path(*pair)
            nodes = routing.path(*pair)[:-1]
            link_utils = utilizations[links]
            link_caps = capacities[links]
            node_queues = np.array([queue_sizes[node] for node in nodes], dtype=np.float64)
            rows.append([
                float(len(links)),
                sample.traffic.demand(*pair),
                float(link_utils.sum()),
                float(link_utils.max()),
                float(link_caps.min()),
                float(link_caps.mean()),
                float(node_queues.min()),
                float(node_queues.mean()),
                float(propagation[links].sum()),
                float((self.mean_packet_size_bits / link_caps).sum()),
            ])
        return np.asarray(rows, dtype=np.float64)


class RidgeRegressionBaseline:
    """Ridge regression from hand-crafted path features to per-path delay."""

    def __init__(self, regularization: float = 1e-3,
                 extractor: Optional[PathFeatureExtractor] = None) -> None:
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        self.regularization = regularization
        self.extractor = extractor if extractor is not None else PathFeatureExtractor()
        self._weights: Optional[np.ndarray] = None
        self._feature_means: Optional[np.ndarray] = None
        self._feature_stds: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def _design_matrix(self, features: np.ndarray) -> np.ndarray:
        standardised = (features - self._feature_means) / self._feature_stds
        return np.hstack([standardised, np.ones((features.shape[0], 1))])

    def fit(self, samples: Sequence[Sample]) -> "RidgeRegressionBaseline":
        """Fit the regression on the concatenated paths of ``samples``."""
        samples = list(samples)
        if not samples:
            raise ValueError("cannot fit on an empty dataset")
        features = np.vstack([self.extractor.extract(sample) for sample in samples])
        targets = np.concatenate([sample.delays for sample in samples])
        self._feature_means = features.mean(axis=0)
        stds = features.std(axis=0)
        self._feature_stds = np.where(stds > 1e-12, stds, 1.0)

        design = self._design_matrix(features)
        gram = design.T @ design + self.regularization * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ targets)
        return self

    def predict(self, sample: Sample) -> np.ndarray:
        """Predict per-path delays (seconds) for one sample."""
        if not self.is_fitted:
            raise RuntimeError("fit() must be called before predict()")
        design = self._design_matrix(self.extractor.extract(sample))
        return design @ self._weights

    def predict_many(self, samples: Sequence[Sample]) -> List[np.ndarray]:
        """Predict per-path delays for several samples."""
        return [self.predict(sample) for sample in samples]

    def evaluate(self, samples: Sequence[Sample]) -> dict:
        """Mean/median absolute relative error over ``samples``."""
        samples = list(samples)
        if not samples:
            raise ValueError("evaluation needs at least one sample")
        predictions = np.concatenate(self.predict_many(samples))
        targets = np.concatenate([sample.delays for sample in samples])
        errors = np.abs(predictions - targets) / np.maximum(np.abs(targets), 1e-12)
        return {
            "mean_relative_error": float(errors.mean()),
            "median_relative_error": float(np.median(errors)),
            "num_paths": int(errors.size),
        }
