"""The :class:`TrafficMatrix`: average offered load per source-destination pair."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["TrafficMatrix"]


class TrafficMatrix:
    """End-to-end demands in bits per second.

    The matrix is dense over ``num_nodes`` x ``num_nodes`` with a zero
    diagonal.  Values are average offered traffic (bits/s) for each ordered
    pair; the simulator converts them to packet arrival processes and the
    models encode them into the initial path states.
    """

    def __init__(self, demands: np.ndarray) -> None:
        demands = np.asarray(demands, dtype=np.float64)
        if demands.ndim != 2 or demands.shape[0] != demands.shape[1]:
            raise ValueError("demands must be a square matrix")
        if np.any(demands < 0):
            raise ValueError("demands must be non-negative")
        if np.any(np.diag(demands) != 0):
            raise ValueError("self-demands (diagonal entries) must be zero")
        self._demands = demands.copy()

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self._demands.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """A copy of the demand matrix."""
        return self._demands.copy()

    def demand(self, source: int, destination: int) -> float:
        """Offered traffic for one ordered pair (bits/s)."""
        if source == destination:
            return 0.0
        return float(self._demands[int(source), int(destination)])

    def set_demand(self, source: int, destination: int, value: float) -> None:
        """Set the offered traffic of one ordered pair."""
        if source == destination:
            raise ValueError("cannot set a self-demand")
        if value < 0:
            raise ValueError("demands must be non-negative")
        self._demands[int(source), int(destination)] = float(value)

    def total_demand(self) -> float:
        """Sum of all demands (bits/s)."""
        return float(self._demands.sum())

    def scale(self, factor: float) -> "TrafficMatrix":
        """Return a new matrix with every demand multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return TrafficMatrix(self._demands * factor)

    def pairs(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(source, destination, demand)`` for non-zero demands."""
        for source in range(self.num_nodes):
            for destination in range(self.num_nodes):
                value = self._demands[source, destination]
                if source != destination and value > 0:
                    yield source, destination, float(value)

    def nonzero_pairs(self) -> List[Tuple[int, int]]:
        """Ordered pairs with strictly positive demand."""
        return [(s, d) for s, d, _ in self.pairs()]

    def as_vector(self, pair_order: List[Tuple[int, int]]) -> np.ndarray:
        """Demands arranged according to an explicit pair order (for models)."""
        return np.array([self.demand(s, d) for s, d in pair_order], dtype=np.float64)

    def to_dict(self) -> Dict:
        """JSON-serialisable representation."""
        return {"num_nodes": self.num_nodes, "demands": self._demands.tolist()}

    @classmethod
    def from_dict(cls, payload: Dict) -> "TrafficMatrix":
        """Rebuild from :meth:`to_dict` output."""
        return cls(np.asarray(payload["demands"], dtype=np.float64))

    @classmethod
    def zeros(cls, num_nodes: int) -> "TrafficMatrix":
        """An all-zero matrix for ``num_nodes`` nodes."""
        if num_nodes < 2:
            raise ValueError("a traffic matrix needs at least 2 nodes")
        return cls(np.zeros((num_nodes, num_nodes)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return np.array_equal(self._demands, other._demands)

    def __repr__(self) -> str:
        return (f"TrafficMatrix(nodes={self.num_nodes}, "
                f"total={self.total_demand():.3g} bps)")
