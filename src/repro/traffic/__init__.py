"""Traffic substrate: end-to-end traffic matrices and their generators."""

from repro.traffic.matrix import TrafficMatrix
from repro.traffic.generators import (
    bimodal_traffic,
    gravity_traffic,
    hotspot_traffic,
    scaled_to_utilization,
    uniform_traffic,
)

__all__ = [
    "TrafficMatrix",
    "uniform_traffic",
    "gravity_traffic",
    "bimodal_traffic",
    "hotspot_traffic",
    "scaled_to_utilization",
]
