"""Traffic-matrix generators: uniform, gravity, bimodal and hotspot models.

The paper's datasets cover "diverse ... end-to-end traffic matrices"; these
generators provide that diversity.  :func:`scaled_to_utilization` rescales a
matrix so that the busiest link of a routing scheme reaches a chosen
utilisation, which is how the dataset generator sweeps traffic intensity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.routing.scheme import RoutingScheme
from repro.routing.tables import routing_matrix
from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "uniform_traffic",
    "gravity_traffic",
    "bimodal_traffic",
    "hotspot_traffic",
    "scaled_to_utilization",
]


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


def _zero_diagonal(matrix: np.ndarray) -> np.ndarray:
    np.fill_diagonal(matrix, 0.0)
    return matrix


def uniform_traffic(num_nodes: int, low: float, high: float,
                    rng: Optional[np.random.Generator] = None) -> TrafficMatrix:
    """Independent uniform demands in ``[low, high]`` bits/s for every pair."""
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if low < 0 or high < low:
        raise ValueError("require 0 <= low <= high")
    demands = _rng(rng).uniform(low, high, size=(num_nodes, num_nodes))
    return TrafficMatrix(_zero_diagonal(demands))


def gravity_traffic(num_nodes: int, total_traffic: float,
                    rng: Optional[np.random.Generator] = None) -> TrafficMatrix:
    """Gravity-model demands: pair (i, j) carries traffic ∝ mass_i * mass_j.

    Node masses are drawn from an exponential distribution, which yields the
    heavy-tailed pair distribution observed in real backbone matrices.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if total_traffic <= 0:
        raise ValueError("total_traffic must be positive")
    generator = _rng(rng)
    masses = generator.exponential(1.0, size=num_nodes)
    outer = np.outer(masses, masses)
    outer = _zero_diagonal(outer)
    demands = outer / outer.sum() * total_traffic
    return TrafficMatrix(demands)


def bimodal_traffic(num_nodes: int, low: float, high: float,
                    high_fraction: float = 0.2,
                    rng: Optional[np.random.Generator] = None) -> TrafficMatrix:
    """Demands that are mostly ``low`` with a fraction of "elephant" pairs at ``high``."""
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if not 0.0 <= high_fraction <= 1.0:
        raise ValueError("high_fraction must be in [0, 1]")
    generator = _rng(rng)
    demands = np.full((num_nodes, num_nodes), float(low))
    elephants = generator.random((num_nodes, num_nodes)) < high_fraction
    demands[elephants] = float(high)
    return TrafficMatrix(_zero_diagonal(demands))


def hotspot_traffic(num_nodes: int, background: float, hotspot_node: int,
                    hotspot_demand: float,
                    rng: Optional[np.random.Generator] = None) -> TrafficMatrix:
    """Uniform background traffic plus heavy demands towards one node.

    Models a popular content destination; useful for stress-testing the
    finite-buffer behaviour of the simulator and the analytic baseline.
    """
    if not 0 <= hotspot_node < num_nodes:
        raise ValueError("hotspot_node out of range")
    generator = _rng(rng)
    demands = generator.uniform(0.5 * background, 1.5 * background,
                                size=(num_nodes, num_nodes))
    demands[:, hotspot_node] = hotspot_demand
    return TrafficMatrix(_zero_diagonal(demands))


def scaled_to_utilization(traffic: TrafficMatrix, scheme: RoutingScheme,
                          target_max_utilization: float) -> TrafficMatrix:
    """Rescale ``traffic`` so the busiest link reaches ``target_max_utilization``.

    Utilisation of a link is the sum of the demands routed over it divided by
    its capacity.  The returned matrix preserves the *shape* of the input
    matrix but pins the peak utilisation, which is how the dataset generator
    sweeps operating points from lightly loaded to near saturation.
    """
    if not 0.0 < target_max_utilization:
        raise ValueError("target_max_utilization must be positive")
    matrix = routing_matrix(scheme)
    demands = traffic.as_vector(scheme.pairs())
    capacities = np.array(scheme.topology.capacities())
    loads = matrix.T @ demands
    utilizations = loads / capacities
    peak = float(utilizations.max())
    if peak <= 0:
        raise ValueError("traffic matrix routes no traffic over the topology")
    return traffic.scale(target_max_utilization / peak)
