"""Command-line interface: dataset generation, training and evaluation.

Installed as the ``repro-net`` console script::

    repro-net generate --topology geant2 --samples 50 --output data/geant2
    repro-net generate --topology geant2 --samples 5000 --workers 4 \\
                       --unit-size 64 --output data/geant2-store   # factory
    repro-net status   --dataset data/geant2-store
    repro-net train    --dataset data/geant2 --model extended --output models/ext
    repro-net evaluate --dataset data/geant2 --model extended --weights models/ext
    repro-net fig2     --train-samples 40 --eval-samples 15 --epochs 10
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from repro.datasets.factory import (
    DatasetJobSpec,
    format_job_status,
    job_status,
    run_job,
)
from repro.datasets.generator import DatasetConfig, generate_dataset
from repro.datasets.normalization import FeatureNormalizer
from repro.datasets.sharded import (
    ShardedDatasetReader,
    ShardedDatasetWriter,
    attach_normalizer,
    shard_size_for,
)
from repro.datasets.splits import train_val_test_split
from repro.datasets.storage import load_dataset, save_dataset
from repro.models.config import RouteNetConfig
from repro.models.extended import ExtendedRouteNet
from repro.models.routenet import RouteNet
from repro.models.trainer import RouteNetTrainer, TrainerConfig, evaluate_model
from repro.nn.serialization import load_checkpoint, read_checkpoint_metadata, save_checkpoint
from repro.pipeline import run_fig2_experiment
from repro.topology.geant2 import geant2_topology
from repro.topology.generators import random_topology
from repro.topology.nsfnet import nsfnet_topology

__all__ = ["main", "build_parser"]

_TOPOLOGIES = {
    "geant2": geant2_topology,
    "nsfnet": nsfnet_topology,
}

_MODELS = {
    "original": RouteNet,
    "extended": ExtendedRouteNet,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-net",
        description="Reproduction of 'Towards more realistic network models based on GNNs'")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a dataset of samples")
    generate.add_argument("--topology", choices=sorted(_TOPOLOGIES) + ["random"],
                          default="geant2")
    generate.add_argument("--samples", type=int, default=50)
    generate.add_argument("--small-queue-fraction", type=float, default=0.5)
    generate.add_argument("--backend", choices=["analytic", "simulation"], default="analytic")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--random-nodes", type=int, default=12,
                          help="node count when --topology random")
    generate.add_argument("--dataset-shards", type=int, default=None,
                          help="write a sharded store directory of this many "
                               "shards instead of one .json.gz blob: samples "
                               "stream straight to disk during generation "
                               "(O(1) live samples), and 'train "
                               "--prefetch-depth' can later stream epochs out "
                               "of it without loading the dataset")
    generate.add_argument("--shard-payload", choices=["binary", "jsonl"],
                          default="binary",
                          help="with --dataset-shards: shard encoding — "
                               "'binary' (default) writes format-3 npz array "
                               "shards that load without JSON parsing; "
                               "'jsonl' writes the format-2 gzipped-JSONL "
                               "shards readable by older checkouts")
    generate.add_argument("--output", required=True,
                          help="output dataset path (.json.gz, or a store "
                               "directory with --dataset-shards or in "
                               "factory mode)")
    generate.add_argument("--workers", type=int, default=1,
                          help="dataset factory: generate with this many "
                               "worker processes, each executing whole work "
                               "units and committing them atomically as "
                               "shards of a catalogued store (any of "
                               "--workers/--resume/--unit-size/--limit-units "
                               "switches generation to the factory; output "
                               "content is identical for every worker count)")
    generate.add_argument("--resume", action="store_true",
                          help="dataset factory: top up an existing factory "
                               "store — only units that are missing, failed, "
                               "or whose shard file disappeared are executed")
    generate.add_argument("--unit-size", type=int, default=None,
                          help="dataset factory: samples per work unit (the "
                               "granularity of scheduling, atomic commit and "
                               "resume; default 32)")
    generate.add_argument("--limit-units", type=int, default=None,
                          help="dataset factory: execute at most this many "
                               "units this invocation, leaving the rest "
                               "pending for a later --resume run (budgeted "
                               "top-up)")
    generate.add_argument("--max-retries", type=int, default=2,
                          help="dataset factory: re-execute a failing unit up "
                               "to this many extra times this run before "
                               "quarantining it (the run then completes and "
                               "exits 1; 'status' shows the traceback, "
                               "--resume retries quarantined units)")
    generate.add_argument("--task-timeout", type=float, default=None,
                          help="dataset factory: seconds a worker may spend "
                               "on one unit before it is presumed hung, "
                               "killed and respawned, and the unit retried "
                               "(default: wait forever)")

    status = subparsers.add_parser(
        "status", help="report a factory store's per-unit progress")
    status.add_argument("--dataset", required=True,
                        help="factory store directory (written by "
                             "'generate --workers/--resume')")

    train = subparsers.add_parser("train", help="train a model on a dataset")
    train.add_argument("--dataset", required=True)
    train.add_argument("--model", choices=sorted(_MODELS), default="extended")
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--learning-rate", type=float, default=0.001)
    train.add_argument("--batch-size", type=int, default=1,
                       help="scenarios merged into one optimisation step")
    train.add_argument("--dtype", choices=["float32", "float64"], default=None,
                       help="training precision: float32 roughly halves the "
                            "memory footprint of large-batch training "
                            "(default: float64)")
    train.add_argument("--scan-mode", choices=["compiled", "stream", "stacked"],
                       default="compiled",
                       help="path-RNN formulation: 'compiled' (default) runs "
                            "the streaming scan through precompiled "
                            "per-topology step kernels (fastest); 'stream' is "
                            "the interpreted streaming scan (same flat peak "
                            "memory); 'stacked' materialises per-step outputs "
                            "(the pre-streaming formulation)")
    train.add_argument("--bucket-by-length", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="group scenarios of similar path length per merged "
                            "batch (shrinks padding; batches are merged once "
                            "and only reshuffled between epochs)")
    train.add_argument("--num-workers", type=int, default=1,
                       help="data-parallel worker processes: each optimisation "
                            "step averages the gradients of up to this many "
                            "batches (path-weighted) computed on model "
                            "replicas; 1 keeps the serial loop")
    train.add_argument("--overlap", action="store_true",
                       help="with --num-workers > 1: double-buffered parameter "
                            "broadcast — the parent submits the next group and "
                            "runs its optimiser/validation/checkpoint work "
                            "while the workers compute (bit-identical results)")
    train.add_argument("--task-timeout", type=float, default=None,
                       help="with --num-workers > 1: seconds a gradient worker "
                            "may spend on one task before it is presumed hung "
                            "and respawned; the task is re-dispatched and "
                            "recomputes bit-identically (default: wait "
                            "forever)")
    train.add_argument("--prefetch-depth", type=int, default=None,
                       help="out-of-core training: --dataset must be a sharded "
                            "store ('generate --dataset-shards'); epochs are "
                            "streamed through a prefetch pipeline holding at "
                            "most this many merged batches ahead instead of "
                            "the whole tensorised dataset (trains on the full "
                            "store; no held-out split)")
    train.add_argument("--checkpoint", default=None,
                       help="trainer checkpoint path (.npz): resume from it "
                            "when it exists and rewrite it (weights + "
                            "optimizer moments + normalizer + history + RNG "
                            "state) after every epoch, so interrupted runs "
                            "resume from their last completed epoch; note "
                            "each invocation trains --epochs further epochs "
                            "on top of the restored state")
    train.add_argument("--state-dim", type=int, default=16)
    train.add_argument("--iterations", type=int, default=4)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", required=True, help="checkpoint path (.npz)")

    evaluate = subparsers.add_parser("evaluate", help="evaluate a trained model")
    evaluate.add_argument("--dataset", required=True)
    evaluate.add_argument("--model", choices=sorted(_MODELS), default="extended")
    evaluate.add_argument("--weights", required=True)
    evaluate.add_argument("--state-dim", type=int, default=16)
    evaluate.add_argument("--iterations", type=int, default=4)
    evaluate.add_argument("--dtype", choices=["float32", "float64"], default=None,
                          help="inference precision (default: the dtype recorded "
                               "in the checkpoint metadata, float64 if absent)")
    evaluate.add_argument("--scan-mode", choices=["compiled", "stream", "stacked"],
                          default="compiled",
                          help="path-RNN formulation for inference ('compiled' "
                               "and 'stream' keep evaluation peak memory flat "
                               "on large scenarios; 'compiled' is fastest)")

    fig2 = subparsers.add_parser("fig2", help="run the Fig. 2 experiment end to end")
    fig2.add_argument("--train-samples", type=int, default=40)
    fig2.add_argument("--eval-samples", type=int, default=15)
    fig2.add_argument("--epochs", type=int, default=10)
    fig2.add_argument("--batch-size", type=int, default=1,
                      help="scenarios merged into one optimisation step")
    fig2.add_argument("--dtype", choices=["float32", "float64"], default=None,
                      help="training/evaluation precision (default: float64)")
    fig2.add_argument("--scan-mode", choices=["compiled", "stream", "stacked"],
                      default="compiled",
                      help="path-RNN formulation (see 'train --scan-mode')")
    fig2.add_argument("--bucket-by-length", action=argparse.BooleanOptionalAction,
                      default=True,
                      help="bucket scenarios of similar path length per batch")
    fig2.add_argument("--num-workers", type=int, default=1,
                      help="data-parallel worker processes per training run "
                           "(see 'train --num-workers')")
    fig2.add_argument("--overlap", action="store_true",
                      help="pipeline the optimiser step with the next group's "
                           "worker compute (see 'train --overlap')")
    fig2.add_argument("--state-dim", type=int, default=16)
    fig2.add_argument("--seed", type=int, default=0)

    return parser


def _resolve_topology(args: argparse.Namespace):
    if args.topology == "random":
        return random_topology(args.random_nodes, rng=np.random.default_rng(args.seed))
    return _TOPOLOGIES[args.topology]()


def _command_generate(args: argparse.Namespace) -> int:
    factory_mode = (args.workers > 1 or args.resume
                    or args.unit_size is not None
                    or args.limit_units is not None)
    if factory_mode:
        return _generate_via_factory(args)
    topology = _resolve_topology(args)
    config = DatasetConfig(num_samples=args.samples,
                           small_queue_fraction=args.small_queue_fraction,
                           backend=args.backend, seed=args.seed)
    metadata = {"topology": topology.name, "samples": args.samples,
                "backend": args.backend, "seed": args.seed}
    if args.dataset_shards is not None:
        # Out-of-core generation: samples stream straight to the sharded
        # store (never held as a list), then the normaliser is fitted by
        # streaming the store back — two passes, O(1) live samples.
        with ShardedDatasetWriter(args.output,
                                  shard_size=shard_size_for(args.samples,
                                                            args.dataset_shards),
                                  metadata=metadata,
                                  payload=args.shard_payload) as writer:
            count = generate_dataset(topology, config, writer=writer)
        reader = ShardedDatasetReader(args.output)
        attach_normalizer(args.output, FeatureNormalizer().fit(reader))
        print(f"wrote {count} samples to {args.output} "
              f"({reader.num_shards} shards)")
        return 0
    samples = generate_dataset(topology, config)
    normalizer = FeatureNormalizer().fit(samples)
    path = save_dataset(samples, args.output, normalizer=normalizer,
                        metadata=metadata)
    print(f"wrote {len(samples)} samples to {path}")
    return 0


def _generate_via_factory(args: argparse.Namespace) -> int:
    """Factory-mode generation: job spec → resumable worker farm → catalog.

    The spec is derived entirely from the CLI arguments, so re-running the
    same command line with ``--resume`` always addresses the same catalog
    (each unit's samples come from ``default_rng([seed, unit_index])`` —
    the documented factory seed semantics, not the legacy serial stream).
    """
    topology_name = (f"random:{args.random_nodes}" if args.topology == "random"
                     else args.topology)
    spec = DatasetJobSpec(
        topologies=(topology_name,),
        samples_per_scenario=args.samples,
        unit_size=args.unit_size if args.unit_size is not None else 32,
        seed=args.seed,
        base_config={"small_queue_fraction": args.small_queue_fraction,
                     "backend": args.backend},
        payload=args.shard_payload,
    )

    def progress(unit_index: int, completed: int, scheduled: int) -> None:
        print(f"unit {unit_index:06d} committed ({completed}/{scheduled} this run)")

    status = run_job(spec, args.output, workers=args.workers,
                     resume=args.resume, limit=args.limit_units,
                     progress=progress, max_retries=args.max_retries,
                     task_timeout=args.task_timeout)
    print(format_job_status(status))
    if status["quarantined_units"]:
        print(f"ERROR: {len(status['quarantined_units'])} unit(s) quarantined "
              "after exhausting retries; inspect with 'repro-net status' and "
              "re-run with --resume once fixed", file=sys.stderr)
        return 1
    return 0


def _command_status(args: argparse.Namespace) -> int:
    print(format_job_status(job_status(args.dataset)))
    return 0


def _build_model(name: str, state_dim: int, iterations: int, seed: int = 0,
                 dtype: Optional[str] = None, scan_mode: str = "compiled"):
    config = RouteNetConfig(link_state_dim=state_dim, path_state_dim=state_dim,
                            node_state_dim=state_dim,
                            message_passing_iterations=iterations, seed=seed,
                            dtype=dtype, scan_mode=scan_mode)
    return _MODELS[name](config)


def _command_train(args: argparse.Namespace) -> int:
    streaming = args.prefetch_depth is not None
    if streaming:
        # Out-of-core path: the sharded store is streamed epoch by epoch
        # (normaliser from its manifest); the whole store is the training
        # set — held-out splits of a larger-than-RAM dataset are a dataset-
        # generation concern, not a slicing one.
        normalizer = None
        train_samples = val_samples = None
    else:
        samples, normalizer, _ = load_dataset(args.dataset)
        train_samples, val_samples, _ = train_val_test_split(samples, 0.8, 0.1,
                                                             seed=args.seed)
    model = _build_model(args.model, args.state_dim, args.iterations, args.seed,
                         dtype=args.dtype, scan_mode=args.scan_mode)
    trainer = RouteNetTrainer(
        model,
        TrainerConfig(epochs=args.epochs, learning_rate=args.learning_rate,
                      batch_size=args.batch_size, dtype=args.dtype,
                      bucket_by_length=args.bucket_by_length,
                      num_workers=args.num_workers, overlap=args.overlap,
                      task_timeout=args.task_timeout,
                      prefetch_depth=args.prefetch_depth if streaming else 2,
                      seed=args.seed),
        normalizer=normalizer,
    )
    checkpoint = args.checkpoint
    if checkpoint and not checkpoint.endswith(".npz"):
        checkpoint = checkpoint + ".npz"
    if checkpoint and os.path.exists(checkpoint):
        trainer.load_checkpoint(checkpoint)
        print(f"resumed from {checkpoint} at epoch "
              f"{trainer.history.epochs[-1] if trainer.history.epochs else 0}")
    if streaming:
        history = trainer.fit(dataset_path=args.dataset, checkpoint_path=checkpoint)
    else:
        history = trainer.fit(train_samples, val_samples=val_samples or None,
                              checkpoint_path=checkpoint)
    if checkpoint:
        print(f"checkpoint at {checkpoint} covers epoch {history.epochs[-1]}")
    metadata = {
        "model": args.model,
        "epochs": len(history.epochs),
        "final_train_loss": history.train_loss[-1],
        "normalizer": trainer.normalizer.to_dict(),
        "state_dim": args.state_dim,
        "iterations": args.iterations,
        "dtype": str(model.dtype),
    }
    path = save_checkpoint(model, args.output, metadata=metadata)
    print(f"trained {args.model} model for {len(history.epochs)} epochs "
          f"(final loss {history.train_loss[-1]:.5f}); saved to {path}")
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    samples, normalizer, _ = load_dataset(args.dataset)
    # Default the precision to whatever the checkpoint was trained at.
    dtype = args.dtype or read_checkpoint_metadata(args.weights).get("dtype")
    model = _build_model(args.model, args.state_dim, args.iterations, dtype=dtype,
                         scan_mode=args.scan_mode)
    metadata = load_checkpoint(model, args.weights)
    if normalizer is None and "normalizer" in metadata:
        normalizer = FeatureNormalizer.from_dict(metadata["normalizer"])
    if normalizer is None:
        raise SystemExit("no normalizer available: regenerate the dataset or retrain")
    metrics = evaluate_model(model, samples, normalizer, dtype=dtype)
    print(f"model={args.model} paths={metrics['num_paths']}")
    print(f"mean relative error   : {metrics['mean_relative_error']:.4f}")
    print(f"median relative error : {metrics['median_relative_error']:.4f}")
    print(f"MAPE                  : {metrics['mape_percent']:.2f}%")
    print(f"RMSE                  : {metrics['rmse']:.6f} s")
    print(f"Pearson r             : {metrics['pearson']:.4f}")
    return 0


def _command_fig2(args: argparse.Namespace) -> int:
    result = run_fig2_experiment(
        num_train_samples=args.train_samples,
        num_eval_samples=args.eval_samples,
        epochs=args.epochs,
        batch_size=args.batch_size,
        state_dim=args.state_dim,
        dtype=args.dtype,
        scan_mode=args.scan_mode,
        bucket_by_length=args.bucket_by_length,
        num_workers=args.num_workers,
        overlap=args.overlap,
        seed=args.seed,
    )
    print(result.report())
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "status": _command_status,
    "train": _command_train,
    "evaluate": _command_evaluate,
    "fig2": _command_fig2,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-net`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
