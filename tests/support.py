"""Helpers shared by test modules (importable, unlike conftest.py).

Kept separate from ``conftest.py`` so test modules can import these without
re-importing the conftest under a second module name (pytest loads
``conftest.py`` as a top-level module, not as ``tests.conftest``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import get_default_dtype

__all__ = ["float_tolerance"]


def float_tolerance(float64_tol: float = 1e-9, float32_tol: float = 1e-4) -> float:
    """An absolute/relative tolerance matched to the active default dtype.

    Float32 runs accumulate ~1e-7 relative rounding per op and reorderings
    (merged batches, permuted graphs) expose it; 1e-4 keeps those checks
    meaningful while staying orders of magnitude below real regressions.
    """
    return float64_tol if np.dtype(get_default_dtype()) == np.float64 else float32_tol
