"""Tests for the analysis utilities: load/bottleneck reports and what-if queries."""

import numpy as np
import pytest

from repro.analysis import (
    WhatIfAnalyzer,
    bottleneck_links,
    link_loads,
    link_utilizations,
    make_scenario_sample,
    path_utilization_summary,
)
from repro.datasets import DatasetConfig, FeatureNormalizer, generate_dataset
from repro.models import ExtendedRouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.routing import random_variation_routing, shortest_path_routing
from repro.topology import linear_topology, nsfnet_topology, ring_topology
from repro.traffic import TrafficMatrix, scaled_to_utilization, uniform_traffic


class TestUtilizationAnalysis:
    def _scenario(self):
        topology = linear_topology(3, capacity=1e6)
        routing = shortest_path_routing(topology)
        traffic = TrafficMatrix.zeros(3)
        traffic.set_demand(0, 2, 4e5)
        traffic.set_demand(0, 1, 1e5)
        return topology, routing, traffic

    def test_link_loads_additive(self):
        topology, routing, traffic = self._scenario()
        loads = link_loads(routing, traffic)
        # Link 0->1 carries both demands, link 1->2 only the two-hop one.
        assert loads[topology.link_index(0, 1)] == pytest.approx(5e5)
        assert loads[topology.link_index(1, 2)] == pytest.approx(4e5)
        assert loads[topology.link_index(2, 1)] == pytest.approx(0.0)

    def test_link_utilizations(self):
        topology, routing, traffic = self._scenario()
        utilizations = link_utilizations(routing, traffic)
        assert utilizations[topology.link_index(0, 1)] == pytest.approx(0.5)

    def test_mismatched_sizes_raise(self):
        topology, routing, _ = self._scenario()
        with pytest.raises(ValueError):
            link_loads(routing, TrafficMatrix.zeros(7))

    def test_bottleneck_links_sorted(self):
        topology, routing, traffic = self._scenario()
        bottlenecks = bottleneck_links(routing, traffic, top_k=3)
        assert len(bottlenecks) == 3
        values = [entry["utilization"] for entry in bottlenecks]
        assert values == sorted(values, reverse=True)
        assert bottlenecks[0]["source"] == 0 and bottlenecks[0]["target"] == 1

    def test_bottleneck_validation(self):
        topology, routing, traffic = self._scenario()
        with pytest.raises(ValueError):
            bottleneck_links(routing, traffic, top_k=0)

    def test_path_utilization_summary(self):
        topology, routing, traffic = self._scenario()
        summary = path_utilization_summary(routing, traffic)
        assert summary[(0, 2)] == pytest.approx(0.5)
        assert summary[(2, 0)] == pytest.approx(0.0)

    def test_scaled_matrix_hits_target_peak(self):
        topology = nsfnet_topology()
        routing = shortest_path_routing(topology)
        traffic = uniform_traffic(14, 1.0, 2.0, rng=np.random.default_rng(0))
        traffic = scaled_to_utilization(traffic, routing, 0.6)
        assert link_utilizations(routing, traffic).max() == pytest.approx(0.6)


class TestWhatIfAnalyzer:
    @pytest.fixture(scope="class")
    def trained(self):
        topology = ring_topology(6)
        samples = generate_dataset(topology, DatasetConfig(num_samples=8, seed=9,
                                                           routing_variation=2))
        model = ExtendedRouteNet(RouteNetConfig(link_state_dim=8, path_state_dim=8,
                                                node_state_dim=8,
                                                message_passing_iterations=2, seed=9))
        trainer = RouteNetTrainer(model, TrainerConfig(epochs=6, learning_rate=0.01, seed=9))
        trainer.fit(samples)
        return topology, model, trainer.normalizer

    def _scenario(self, topology, seed=0, utilization=0.7):
        routing = shortest_path_routing(topology)
        traffic = uniform_traffic(topology.num_nodes, 0.5, 1.5,
                                  rng=np.random.default_rng(seed))
        return routing, scaled_to_utilization(traffic, routing, utilization)

    def test_scenario_sample_placeholder(self):
        topology = ring_topology(4)
        routing, traffic = self._scenario(topology)
        sample = make_scenario_sample(topology, routing, traffic)
        assert sample.num_paths == routing.num_paths
        np.testing.assert_allclose(sample.delays, 0.0)

    def test_predict_shapes(self, trained):
        topology, model, normalizer = trained
        routing, traffic = self._scenario(topology)
        analyzer = WhatIfAnalyzer(model, normalizer)
        prediction = analyzer.predict(topology, routing, traffic)
        assert prediction.values.shape == (routing.num_paths,)
        assert prediction.metric == "delay"
        assert prediction.mean > 0
        pair = prediction.pair_order[0]
        assert prediction.value(*pair) == pytest.approx(prediction.values[0])

    def test_worst_pairs(self, trained):
        topology, model, normalizer = trained
        routing, traffic = self._scenario(topology)
        prediction = WhatIfAnalyzer(model, normalizer).predict(topology, routing, traffic)
        worst = prediction.worst_pairs(top_k=3)
        assert len(worst) == 3
        assert worst[0][1] >= worst[1][1] >= worst[2][1]
        assert worst[0][1] == pytest.approx(prediction.worst_value)

    def test_compare_routings_ranks(self, trained):
        topology, model, normalizer = trained
        _, traffic = self._scenario(topology)
        candidates = {
            "shortest": shortest_path_routing(topology),
            "variant": random_variation_routing(topology, k=2,
                                                rng=np.random.default_rng(4)),
        }
        analyzer = WhatIfAnalyzer(model, normalizer)
        rows = analyzer.compare_routings(topology, traffic, candidates)
        assert len(rows) == 2
        assert rows[0]["mean"] <= rows[1]["mean"]
        assert analyzer.best_routing(topology, traffic, candidates) == rows[0]["name"]

    def test_traffic_sweep_monotone_on_average(self, trained):
        """Higher offered load should raise the predicted mean delay overall."""
        topology, model, normalizer = trained
        routing, traffic = self._scenario(topology, utilization=0.4)
        analyzer = WhatIfAnalyzer(model, normalizer)
        rows = analyzer.traffic_sweep(topology, routing, traffic, [0.5, 1.0, 2.0])
        assert len(rows) == 3
        assert rows[-1]["mean"] > rows[0]["mean"]

    def test_validation(self, trained):
        topology, model, normalizer = trained
        with pytest.raises(ValueError):
            WhatIfAnalyzer(model, normalizer, metric="throughput")
        with pytest.raises(ValueError):
            WhatIfAnalyzer(model, FeatureNormalizer())
        analyzer = WhatIfAnalyzer(model, normalizer)
        with pytest.raises(ValueError):
            analyzer.compare_routings(topology, TrafficMatrix.zeros(6), {})
        routing, traffic = self._scenario(topology)
        with pytest.raises(ValueError):
            analyzer.traffic_sweep(topology, routing, traffic, [])
