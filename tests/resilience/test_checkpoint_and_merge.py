"""Satellite coverage: atomic trainer checkpoints (metadata embedded in
the npz, so its rename is the single commit point and the `.json` sidecar
is only a human-readable mirror) and the merge guard refusing to mix
simulator versions."""

import json
import os

import numpy as np
import pytest

from repro.datasets import DatasetConfig, DatasetJobSpec, generate_dataset, merge_catalogs, run_job
from repro.datasets.sharded import MANIFEST_NAME
from repro.models import ExtendedRouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.topology import ring_topology
from repro.version import __version__


def _toy_trainer() -> RouteNetTrainer:
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=6, path_state_dim=6, node_state_dim=6,
        message_passing_iterations=2, seed=5))
    return RouteNetTrainer(model, TrainerConfig(
        epochs=1, learning_rate=0.005, batch_size=2, seed=5))


@pytest.fixture(scope="module")
def samples():
    return generate_dataset(ring_topology(4),
                            DatasetConfig(num_samples=4, seed=3,
                                          small_queue_fraction=0.5))


class TestAtomicCheckpoint:
    def test_loads_with_the_sidecar_deleted(self, tmp_path, samples):
        trainer = _toy_trainer()
        trainer.fit(samples)
        path = trainer.save_checkpoint(str(tmp_path / "ckpt"))
        sidecar = path[: -len(".npz")] + ".json"
        assert os.path.isfile(sidecar)  # still written, as a mirror
        os.remove(sidecar)

        resumed = _toy_trainer()
        metadata = resumed.load_checkpoint(path)
        assert np.array_equal(resumed.model.parameters_vector(),
                              trainer.model.parameters_vector())
        assert metadata["history"] == trainer.history.as_dict()

    def test_stale_sidecar_is_ignored_in_favour_of_embedded_metadata(
            self, tmp_path, samples):
        """The torn-pair scenario the embedding closes: a sidecar from some
        other checkpoint must never be paired with these weights."""
        trainer = _toy_trainer()
        trainer.fit(samples)
        path = trainer.save_checkpoint(str(tmp_path / "ckpt"))
        sidecar = path[: -len(".npz")] + ".json"
        with open(sidecar, "w") as handle:
            json.dump({"model_class": "SomethingElse", "history": {}}, handle)

        resumed = _toy_trainer()
        metadata = resumed.load_checkpoint(path)  # no model_class complaint
        assert metadata["model_class"] == "ExtendedRouteNet"
        assert metadata["history"] == trainer.history.as_dict()

    def test_legacy_checkpoint_falls_back_to_the_sidecar(self, tmp_path,
                                                         samples):
        trainer = _toy_trainer()
        trainer.fit(samples)
        path = trainer.save_checkpoint(str(tmp_path / "ckpt"))
        # Strip the embedded metadata, simulating a pre-embedding archive.
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays.pop("meta.json")
        np.savez_compressed(path, **arrays)

        resumed = _toy_trainer()
        metadata = resumed.load_checkpoint(path)
        assert metadata["history"] == trainer.history.as_dict()

        os.remove(path[: -len(".npz")] + ".json")
        with pytest.raises(FileNotFoundError, match="predates embedded"):
            _toy_trainer().load_checkpoint(path)


class TestMergeVersionGuard:
    def test_mismatched_simulator_versions_are_refused_naming_both(
            self, tmp_path):
        spec = DatasetJobSpec(topologies=("ring:4",), samples_per_scenario=2,
                              unit_size=2, seed=1,
                              base_config={"small_queue_fraction": 0.5})
        current = str(tmp_path / "current")
        outdated = str(tmp_path / "outdated")
        run_job(spec, current, workers=1, fit_normalizer=False)
        run_job(DatasetJobSpec(**{**spec.to_dict(), "seed": 2}), outdated,
                workers=1, fit_normalizer=False)

        manifest_path = os.path.join(outdated, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["catalog"]["simulator_version"] = "0.0.0-doctored"
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)

        with pytest.raises(ValueError, match="mismatched simulator") as excinfo:
            merge_catalogs([current, outdated], str(tmp_path / "merged"))
        message = str(excinfo.value)
        assert "0.0.0-doctored" in message
        assert __version__ in message
        assert current in message and outdated in message

    def test_matching_versions_still_merge(self, tmp_path):
        spec = DatasetJobSpec(topologies=("ring:4",), samples_per_scenario=2,
                              unit_size=2, seed=1,
                              base_config={"small_queue_fraction": 0.5})
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        run_job(spec, a, workers=1, fit_normalizer=False)
        run_job(DatasetJobSpec(**{**spec.to_dict(), "seed": 2}), b,
                workers=1, fit_normalizer=False)
        status = merge_catalogs([a, b], str(tmp_path / "merged"),
                                fit_normalizer=False)
        assert status["done_units"] == 2
        assert status["simulator_version"] == __version__
