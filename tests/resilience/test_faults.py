"""Unit tests for the deterministic fault-injection harness.

The ``die`` and ``hang`` kinds are exercised end to end by the recovery
tests (firing them in-process would kill or wedge pytest itself); here we
pin down spec validation, plan sources and precedence, coordinate
matching, cross-process once-markers, byte corruption and the execution
log."""

import json
import os

import pytest

from repro.testing.faults import (
    ENV_EXEC_LOG,
    ENV_MARKER_DIR,
    ENV_PLAN,
    InjectedFault,
    active_plan,
    fault_point,
    install_plan,
    log_execution,
)


class TestSpecValidation:
    def test_rejects_malformed_specs(self):
        with pytest.raises(ValueError, match="must be a dict"):
            install_plan(["not-a-dict"])
        with pytest.raises(ValueError, match="'site'"):
            install_plan([{"kind": "fail"}])
        with pytest.raises(ValueError, match="'kind'"):
            install_plan([{"site": "x", "kind": "explode"}])
        with pytest.raises(ValueError, match="'match'"):
            install_plan([{"site": "x", "kind": "fail", "match": [1]}])
        with pytest.raises(ValueError, match="'id'"):
            install_plan([{"site": "x", "kind": "fail", "once": True}])


class TestPlanSources:
    def test_env_plan_is_parsed_and_cached(self, monkeypatch):
        monkeypatch.setenv(ENV_PLAN, json.dumps(
            [{"site": "a", "kind": "fail"}]))
        assert active_plan()[0]["site"] == "a"
        # A changed raw value invalidates the cache.
        monkeypatch.setenv(ENV_PLAN, json.dumps(
            [{"site": "b", "kind": "fail"}]))
        assert active_plan()[0]["site"] == "b"
        monkeypatch.delenv(ENV_PLAN)
        assert active_plan() == []

    def test_env_plan_errors(self, monkeypatch):
        monkeypatch.setenv(ENV_PLAN, "{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            active_plan()
        monkeypatch.setenv(ENV_PLAN, json.dumps({"site": "x"}))
        with pytest.raises(ValueError, match="JSON list"):
            active_plan()
        # once-faults from the environment need the shared marker dir.
        monkeypatch.setenv(ENV_PLAN, json.dumps(
            [{"site": "x", "kind": "fail", "once": True, "id": "f"}]))
        monkeypatch.delenv(ENV_MARKER_DIR, raising=False)
        with pytest.raises(ValueError, match=ENV_MARKER_DIR):
            active_plan()

    def test_installed_plan_takes_precedence_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_PLAN, json.dumps(
            [{"site": "from-env", "kind": "fail"}]))
        install_plan([{"site": "installed", "kind": "fail"}])
        assert active_plan()[0]["site"] == "installed"
        install_plan(None)
        assert active_plan()[0]["site"] == "from-env"


class TestFiring:
    def test_fail_fires_only_on_matching_coordinates(self):
        install_plan([{"site": "s", "kind": "fail", "match": {"k": 3}}])
        fault_point("other-site", k=3)      # wrong site: no-op
        fault_point("s", k=2)               # wrong coordinate: no-op
        fault_point("s")                    # missing coordinate: no-op
        with pytest.raises(InjectedFault, match="injected failure at s"):
            fault_point("s", k=3)

    def test_once_fires_exactly_once_via_marker_file(self, tmp_path,
                                                     monkeypatch):
        markers = tmp_path / "markers"
        monkeypatch.setenv(ENV_MARKER_DIR, str(markers))
        install_plan([{"site": "s", "kind": "fail", "once": True,
                       "id": "only-one"}])
        with pytest.raises(InjectedFault):
            fault_point("s")
        assert (markers / "fired-only-one").is_file()
        fault_point("s")  # marker claimed: never again, in any process

    def test_corrupt_flips_bytes_preserving_size(self, tmp_path):
        target = tmp_path / "shard.bin"
        target.write_bytes(bytes(range(64)))
        install_plan([{"site": "s", "kind": "corrupt"}])
        fault_point("s", path=str(target))
        damaged = target.read_bytes()
        assert len(damaged) == 64
        assert damaged != bytes(range(64))
        # The corruption must be the kind a checksum catches, not a header
        # truncation: the middle of the payload is what gets flipped.
        assert damaged[:16] == bytes(range(16))

    def test_corrupt_requires_a_path_and_refuses_empty_files(self, tmp_path):
        install_plan([{"site": "s", "kind": "corrupt"}])
        with pytest.raises(ValueError, match="'path'"):
            fault_point("s")
        empty = tmp_path / "empty"
        empty.touch()
        with pytest.raises(ValueError, match="empty file"):
            fault_point("s", path=str(empty))

    def test_delay_continues_after_sleeping(self):
        install_plan([{"site": "s", "kind": "delay", "seconds": 0.01}])
        fault_point("s")  # returns — the point of delay vs hang


class TestExecutionLog:
    def test_noop_without_env(self):
        log_execution("unit", unit_index=1)  # must not raise or create files

    def test_appends_one_sorted_line_per_call(self, tmp_path, monkeypatch):
        log = tmp_path / "exec.log"
        monkeypatch.setenv(ENV_EXEC_LOG, str(log))
        log_execution("unit", unit_index=4, pid=123)
        log_execution("unit", unit_index=5, pid=123)
        assert log.read_text().splitlines() == [
            "unit pid=123 unit_index=4",
            "unit pid=123 unit_index=5",
        ]
