"""Per-unit claim files: atomic mutual exclusion for concurrent resumes.

Two `--resume` runs sharing one store must divide the pending units
between them without ever executing a unit twice.  The claim is an
``O_CREAT|O_EXCL`` file (atomic on any POSIX filesystem); stale claims
(holder presumed dead, by mtime age) are taken over.  The concurrency
test runs two real resume processes, slowed by `delay` faults so their
executions genuinely overlap, and proves exactly-once execution from the
cross-process execution log."""

import json
import multiprocessing as mp
import os
import re
import time

import pytest

from repro.datasets import DatasetJobSpec, ShardedDatasetReader, run_job
from repro.datasets.factory import _claim_file, _release_claim, _try_claim_unit
from repro.testing.faults import ENV_EXEC_LOG, ENV_PLAN


def small_spec(**overrides) -> DatasetJobSpec:
    parameters = dict(topologies=("ring:4",), samples_per_scenario=8,
                      unit_size=2, seed=7,
                      base_config={"small_queue_fraction": 0.5})
    parameters.update(overrides)
    return DatasetJobSpec(**parameters)


def store_contents(path):
    contents = []
    for sample in ShardedDatasetReader(path):
        payload = sample.to_dict()
        payload["metadata"].pop("sim_wall_seconds", None)
        contents.append(json.dumps(payload, sort_keys=True))
    return contents


class TestClaimPrimitive:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        path = str(tmp_path)
        assert _try_claim_unit(path, 0, ttl=3600.0)
        assert not _try_claim_unit(path, 0, ttl=3600.0)
        assert _try_claim_unit(path, 1, ttl=3600.0)  # other units unaffected
        _release_claim(path, 0)
        assert _try_claim_unit(path, 0, ttl=3600.0)

    def test_claim_records_its_holder(self, tmp_path):
        path = str(tmp_path)
        assert _try_claim_unit(path, 4, ttl=3600.0)
        with open(_claim_file(path, 4)) as handle:
            holder = json.load(handle)
        assert holder["pid"] == os.getpid()

    def test_stale_claim_is_taken_over(self, tmp_path):
        path = str(tmp_path)
        assert _try_claim_unit(path, 0, ttl=3600.0)
        # Backdate the claim far past the TTL: its holder is presumed dead.
        ancient = time.time() - 7200.0
        os.utime(_claim_file(path, 0), (ancient, ancient))
        assert _try_claim_unit(path, 0, ttl=3600.0)

    def test_release_of_unclaimed_unit_is_a_noop(self, tmp_path):
        _release_claim(str(tmp_path), 99)


class TestClaimsGateExecution:
    def test_held_claim_blocks_a_unit_until_released(self, tmp_path):
        """A unit claimed by another (live) run is skipped, not executed —
        and picked up by the next resume once the claim is gone."""
        path = str(tmp_path / "store")
        spec = small_spec()
        run_job(spec, path, workers=1, limit=0)  # catalog only, all pending
        assert _try_claim_unit(path, 0, ttl=3600.0)  # "another run" holds 0

        executed = []
        status = run_job(spec, path, workers=1, resume=True,
                         progress=lambda i, done, total: executed.append(i))
        assert executed == [1, 2, 3]
        assert status["pending_units"] == 1
        assert not status["complete"]

        _release_claim(path, 0)
        final = run_job(spec, path, workers=1, resume=True)
        assert final["complete"]


def _resume_run(spec, path):
    """Child-process body for the concurrency test (fault plan + execution
    log arrive through the inherited environment)."""
    run_job(spec, path, workers=1, resume=True, fit_normalizer=False)


class TestConcurrentResumes:
    def test_two_concurrent_resumes_execute_each_unit_exactly_once(
            self, tmp_path, monkeypatch):
        """The acceptance criterion: two simultaneous resume processes over
        one store complete without duplicating any in-flight unit.  Every
        execution is `delay`-stretched so the runs genuinely overlap, and
        logged to a shared O_APPEND file that must show each unit exactly
        once."""
        spec = small_spec()
        path = str(tmp_path / "store")
        reference = str(tmp_path / "reference")
        assert run_job(spec, reference, workers=1)["complete"]
        run_job(spec, path, workers=1, limit=0)  # catalog only, all pending

        log = tmp_path / "exec.log"
        monkeypatch.setenv(ENV_EXEC_LOG, str(log))
        monkeypatch.setenv(ENV_PLAN, json.dumps(
            [{"site": "factory.unit.start", "kind": "delay",
              "seconds": 0.25}]))

        context = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        racers = [context.Process(target=_resume_run, args=(spec, path))
                  for _ in range(2)]
        for racer in racers:
            racer.start()
        for racer in racers:
            racer.join(timeout=120)
        assert [racer.exitcode for racer in racers] == [0, 0]

        executions = re.findall(r"unit_index=(\d+)", log.read_text())
        assert sorted(executions) == ["0", "1", "2", "3"]

        # A final (no-op) resume verifies every shard's checksum, confirms
        # nothing is left pending, and attaches the normalizer.
        monkeypatch.delenv(ENV_PLAN)
        monkeypatch.delenv(ENV_EXEC_LOG)
        final = run_job(spec, path, workers=1, resume=True)
        assert final["complete"]
        assert final["total_attempts"] == 4  # exactly once per unit, ever
        assert store_contents(path) == store_contents(reference)
