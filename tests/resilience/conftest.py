"""Shared configuration for the resilience suite.

Every test starts and ends with no fault plan active — neither installed
in-process nor left in the environment — so a failing test can never leak
injected faults into its neighbours (a leaked ``die`` fault would take the
whole pytest process with it)."""

import pytest

from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    faults.install_plan(None)
    for variable in (faults.ENV_PLAN, faults.ENV_MARKER_DIR,
                     faults.ENV_EXEC_LOG):
        monkeypatch.delenv(variable, raising=False)
    yield
    faults.install_plan(None)
