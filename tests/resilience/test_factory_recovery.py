"""Dataset-factory fault recovery.

A worker farm that loses a worker (abrupt death or hang) respawns it and
re-queues the unit; because unit content is a pure function of
``[job_seed, unit_index]``, the recovered store is byte-identical to a
fault-free run's, with the extra executions visible in the catalog's
per-unit ``attempts``.  A crash-looping farm exhausts its restart budget
and raises — after flushing the catalog, so the store resumes from its
last committed unit."""

import json
import os

import pytest

from repro.datasets import DatasetJobSpec, ShardedDatasetReader, job_status, run_job
from repro.datasets.sharded import MANIFEST_NAME, is_sharded_store
from repro.supervision import RestartBudgetExceeded
from repro.testing.faults import ENV_MARKER_DIR, ENV_PLAN


def small_spec(**overrides) -> DatasetJobSpec:
    """3 units × 2 samples on a 4-node ring — milliseconds per unit."""
    parameters = dict(topologies=("ring:4",), samples_per_scenario=6,
                      unit_size=2, seed=7,
                      base_config={"small_queue_fraction": 0.5})
    parameters.update(overrides)
    return DatasetJobSpec(**parameters)


def store_contents(path):
    contents = []
    for sample in ShardedDatasetReader(path):
        payload = sample.to_dict()
        payload["metadata"].pop("sim_wall_seconds", None)
        contents.append(json.dumps(payload, sort_keys=True))
    return contents


def unit_states(path):
    with open(os.path.join(path, MANIFEST_NAME)) as handle:
        return json.load(handle)["catalog"]["units"]


@pytest.fixture(scope="module")
def reference_store(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("resilience") / "reference")
    assert run_job(small_spec(), path, workers=1)["complete"]
    return path


def _arm(monkeypatch, tmp_path, specs):
    monkeypatch.setenv(ENV_PLAN, json.dumps(specs))
    monkeypatch.setenv(ENV_MARKER_DIR, str(tmp_path / "markers"))


def test_worker_death_is_recovered_bit_identically(tmp_path, monkeypatch,
                                                   reference_store):
    """The tentpole acceptance criterion for the factory farm: kill the
    worker generating unit 1 once; the run completes, the store equals the
    fault-free store, and the catalog records both executions."""
    _arm(monkeypatch, tmp_path, [{"site": "factory.unit.start", "kind": "die",
                                  "match": {"unit_index": 1},
                                  "once": True, "id": "die-unit-1"}])
    path = str(tmp_path / "store")
    status = run_job(small_spec(), path, workers=2)
    assert status["complete"]
    assert status["quarantined_units"] == []
    assert (tmp_path / "markers" / "fired-die-unit-1").is_file()
    assert store_contents(path) == store_contents(reference_store)
    states = unit_states(path)
    assert states[1]["attempts"] == 2
    assert status["total_attempts"] == 4  # 3 units + the one retry


def test_hung_worker_exceeds_task_timeout_and_unit_is_redone(
        tmp_path, monkeypatch, reference_store):
    _arm(monkeypatch, tmp_path, [{"site": "factory.unit.start", "kind": "hang",
                                  "seconds": 60.0,
                                  "match": {"unit_index": 0},
                                  "once": True, "id": "hang-unit-0"}])
    path = str(tmp_path / "store")
    status = run_job(small_spec(), path, workers=2, task_timeout=2.0)
    assert status["complete"]
    assert store_contents(path) == store_contents(reference_store)
    assert unit_states(path)[0]["attempts"] == 2


def test_in_task_exception_is_retried_in_the_serial_engine(
        tmp_path, monkeypatch, reference_store):
    """`fail` faults raise inside execute_unit — the retry path that needs
    no respawn.  A transient failure costs one retry and leaves no error
    in the finished catalog record."""
    _arm(monkeypatch, tmp_path, [{"site": "factory.unit.start", "kind": "fail",
                                  "match": {"unit_index": 2},
                                  "once": True, "id": "fail-unit-2"}])
    path = str(tmp_path / "store")
    status = run_job(small_spec(), path, workers=1)
    assert status["complete"]
    assert store_contents(path) == store_contents(reference_store)
    states = unit_states(path)
    assert states[2]["attempts"] == 2
    assert states[2]["status"] == "done"
    assert "error" not in states[2]


def test_crash_loop_exhausts_restart_budget_but_flushes_the_catalog(
        tmp_path, monkeypatch, reference_store):
    """A fault that kills *every* worker touching unit 1 is a crash loop:
    the farm must give up loudly once the restart budget is spent — after
    committing the manifest, so everything already finished survives and
    a fault-free resume completes the store."""
    monkeypatch.setenv(ENV_PLAN, json.dumps(
        [{"site": "factory.unit.start", "kind": "die",
          "match": {"unit_index": 1}}]))  # not once: fires on every attempt
    path = str(tmp_path / "store")
    with pytest.raises(RestartBudgetExceeded, match="restart budget"):
        run_job(small_spec(), path, workers=2, max_restarts=1, max_retries=5)

    # The flush satellite: the catalog landed despite the raise.
    assert is_sharded_store(path)
    flushed = job_status(path)
    assert flushed["total_units"] == 3
    assert not flushed["complete"]

    monkeypatch.delenv(ENV_PLAN)
    final = run_job(small_spec(), path, workers=1, resume=True)
    assert final["complete"]
    assert store_contents(path) == store_contents(reference_store)
