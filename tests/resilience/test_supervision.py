"""Unit tests for the shared supervision layer, against a real echo-worker
process: liveness detection, queued-reply draining, task deadlines,
respawn, and the restart budget."""

import multiprocessing as mp
import os
import time

import pytest

from repro.supervision import (
    RestartBudget,
    RestartBudgetExceeded,
    SupervisedWorker,
    SupervisionPolicy,
    WorkerDied,
    WorkerTimedOut,
)


def _echo_worker_main(conn):
    """Minimal pipe-protocol worker: echo, sleep, or die on command."""
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "echo":
                conn.send(("ok", message[1]))
            elif kind == "sleep":
                time.sleep(message[1])
                conn.send(("ok", "slept"))
            elif kind == "reply_then_exit":
                conn.send(("ok", "bye"))
                conn.close()
                os._exit(0)
            elif kind == "exit":
                os._exit(3)
            elif kind == "close":
                break
    except (EOFError, OSError):
        pass


def _spawn_echo(rank: int):
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    context = mp.get_context(method)
    parent_conn, child_conn = context.Pipe()
    process = context.Process(target=_echo_worker_main, args=(child_conn,),
                              daemon=True)
    process.start()
    child_conn.close()
    return process, parent_conn


class TestSupervisionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="task_timeout"):
            SupervisionPolicy(task_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            SupervisionPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="max_restarts"):
            SupervisionPolicy(max_restarts=-1)
        with pytest.raises(ValueError, match="poll_interval"):
            SupervisionPolicy(poll_interval=0)

    def test_deadline_scales_with_queued_tasks(self):
        assert SupervisionPolicy().deadline() is None
        policy = SupervisionPolicy(task_timeout=10.0)
        now = time.monotonic()
        assert policy.deadline() == pytest.approx(now + 10.0, abs=1.0)
        assert policy.deadline(tasks=3) == pytest.approx(now + 30.0, abs=1.0)
        assert policy.deadline(tasks=0) == pytest.approx(now + 10.0, abs=1.0)


class TestRestartBudget:
    def test_spend_raises_past_the_limit_naming_the_fault(self):
        budget = RestartBudget(2)
        budget.spend("first crash")
        budget.spend("second crash")
        assert budget.spent == 2
        with pytest.raises(RestartBudgetExceeded, match="third crash"):
            budget.spend("third crash")

    def test_zero_budget_fails_on_first_fault(self):
        with pytest.raises(RestartBudgetExceeded):
            RestartBudget(0).spend("any")


class TestSupervisedWorker:
    def test_echo_round_trip(self):
        worker = SupervisedWorker(0, _spawn_echo)
        try:
            worker.send(("echo", 42))
            assert worker.recv_within(None, poll_interval=0.05) == ("ok", 42)
        finally:
            worker.close(farewell=("close",))

    def test_death_raises_and_respawn_recovers(self):
        worker = SupervisedWorker(0, _spawn_echo)
        try:
            worker.send(("exit",))
            with pytest.raises(WorkerDied, match="worker 0"):
                worker.recv_within(None, poll_interval=0.05)
            worker.respawn()
            assert worker.restarts == 1
            worker.send(("echo", "again"))
            assert worker.recv_within(None, poll_interval=0.05) == \
                ("ok", "again")
        finally:
            worker.close(farewell=("close",))

    def test_queued_replies_survive_the_workers_death(self):
        """A worker that answered and *then* died must not lose the answer:
        the reply is drained normally, and only afterwards does the pipe
        report the death."""
        worker = SupervisedWorker(0, _spawn_echo)
        try:
            worker.send(("reply_then_exit",))
            worker.process.join(timeout=10)
            assert not worker.alive()
            assert not worker.is_dead()  # data still readable
            assert worker.recv_within(None, poll_interval=0.05) == ("ok", "bye")
            with pytest.raises(WorkerDied):
                worker.recv_within(None, poll_interval=0.05)
        finally:
            worker.reap()

    def test_deadline_exceeded_raises_timed_out(self):
        worker = SupervisedWorker(0, _spawn_echo)
        try:
            worker.send(("sleep", 30.0))
            with pytest.raises(WorkerTimedOut, match="presumed hung"):
                worker.recv_within(time.monotonic() + 0.3, poll_interval=0.05)
        finally:
            worker.reap()  # kills the still-sleeping process
            assert not worker.alive()

    def test_send_to_dead_worker_raises(self):
        worker = SupervisedWorker(0, _spawn_echo)
        worker.send(("exit",))
        worker.process.join(timeout=10)
        worker.conn.close()
        with pytest.raises(WorkerDied):
            worker.send(("echo", 1))
        worker.reap()
