"""Artifact integrity: checksummed shards, corruption refusal, targeted
regeneration on resume, and crash consistency of the shard commit
protocol (a writer killed between finishing the bytes and the rename must
leave no partial shard under the final name)."""

import json
import os

import pytest

from repro.datasets import DatasetJobSpec, ShardedDatasetReader, job_status, run_job
from repro.datasets.sharded import MANIFEST_NAME, file_sha256, is_sharded_store
from repro.supervision import RestartBudgetExceeded
from repro.testing import faults
from repro.testing.faults import ENV_PLAN


def small_spec(**overrides) -> DatasetJobSpec:
    parameters = dict(topologies=("ring:4",), samples_per_scenario=6,
                      unit_size=2, seed=7,
                      base_config={"small_queue_fraction": 0.5})
    parameters.update(overrides)
    return DatasetJobSpec(**parameters)


def store_contents(path):
    contents = []
    for sample in ShardedDatasetReader(path):
        payload = sample.to_dict()
        payload["metadata"].pop("sim_wall_seconds", None)
        contents.append(json.dumps(payload, sort_keys=True))
    return contents


def shard_digests(path):
    """name -> sha256 of the actual shard bytes on disk, in manifest order."""
    with open(os.path.join(path, MANIFEST_NAME)) as handle:
        shards = json.load(handle)["shards"]
    return {s["name"]: file_sha256(os.path.join(path, s["name"]))
            for s in shards}


@pytest.fixture(scope="module")
def reference_store(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("integrity") / "reference")
    assert run_job(small_spec(), path, workers=1)["complete"]
    return path


@pytest.mark.parametrize("payload,shard_name", [
    ("binary", "unit-000001.npz"),
    ("jsonl", "unit-000001.jsonl.gz"),
])
def test_reader_refuses_a_corrupted_shard_naming_it(tmp_path, payload,
                                                    shard_name):
    path = str(tmp_path / payload)
    assert run_job(small_spec(payload=payload), path, workers=1)["complete"]
    assert store_contents(path)  # pristine store reads (and verifies) fine

    faults._corrupt_file(os.path.join(path, shard_name))
    reader = ShardedDatasetReader(path)
    with pytest.raises(ValueError, match="failed checksum") as excinfo:
        list(reader)
    message = str(excinfo.value)
    assert shard_name in message
    assert "sha256" in message and "regenerate" in message


def test_verification_is_per_reader_and_once_per_shard(reference_store):
    reader = ShardedDatasetReader(reference_store)
    assert reader.verify_checksums
    list(reader)
    verified_once = set(reader._verified_shards)
    assert len(verified_once) == 3
    list(reader)  # second pass re-uses the verified set, no re-hash
    assert reader._verified_shards == verified_once
    relaxed = ShardedDatasetReader(reference_store, verify_checksums=False)
    list(relaxed)
    assert not relaxed._verified_shards


def test_resume_sets_aside_corrupt_shard_and_regenerates_exactly_it(
        tmp_path, reference_store):
    """The acceptance criterion: flip bytes in one committed shard; resume
    must re-execute exactly that unit (quarantining the rotten bytes as
    `.corrupt`) and restore a store equal to the fault-free one."""
    path = str(tmp_path / "store")
    run_job(small_spec(), path, workers=1)
    faults._corrupt_file(os.path.join(path, "unit-000001.npz"))

    executed = []
    status = run_job(small_spec(), path, workers=1, resume=True,
                     progress=lambda index, done, total: executed.append(index))
    assert executed == [1]
    assert status["complete"]
    assert os.path.isfile(os.path.join(path, "unit-000001.npz.corrupt"))
    assert store_contents(path) == store_contents(reference_store)
    assert shard_digests(path) == shard_digests(reference_store)
    # The corruption round trip is visible in the catalog's attempt count.
    assert status["total_attempts"] == 3 + 1


def test_crash_between_shard_bytes_and_rename_leaves_no_partial_shard(
        tmp_path, monkeypatch, reference_store):
    """Kill the factory worker at `sharded.shard.pre_replace` — after the
    unit's bytes are fully written to the `.tmp` name, before the rename.
    With a zero restart budget the run dies; the store must hold no file
    under the final shard name, stay resumable, and resume to a store
    byte-identical to an uninterrupted run's."""
    monkeypatch.setenv(ENV_PLAN, json.dumps(
        [{"site": "sharded.shard.pre_replace", "kind": "die",
          "match": {"name": "unit-000001.npz"}}]))
    path = str(tmp_path / "store")
    with pytest.raises(RestartBudgetExceeded):
        run_job(small_spec(), path, workers=2, max_restarts=0)

    assert not os.path.exists(os.path.join(path, "unit-000001.npz"))
    assert is_sharded_store(path)  # catalog flushed before the raise
    crashed = job_status(path)
    assert not crashed["complete"]

    monkeypatch.delenv(ENV_PLAN)
    final = run_job(small_spec(), path, workers=1, resume=True)
    assert final["complete"]
    assert shard_digests(path) == shard_digests(reference_store)
    assert store_contents(path) == store_contents(reference_store)
