"""Gradient-pool fault recovery.

The acceptance bar: a worker killed or hung mid-run is respawned, its
in-flight work re-dispatched against the same parameter ring slot and
batch, and the recovered run is **bit-identical** to a fault-free one —
for a single gradient group and for a whole 2-worker training run.  Pool
start-up failure degrades to the serial backend with a warning instead of
failing the run."""

import json

import numpy as np
import pytest

from repro.datasets import DatasetConfig, generate_dataset
from repro.datasets.batching import make_batches
from repro.datasets.normalization import FeatureNormalizer
from repro.models import ExtendedRouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.nn.parallel import GradientWorkerPool, SerialGradientExecutor
from repro.testing.faults import ENV_MARKER_DIR, ENV_PLAN
from repro.topology import ring_topology


def _toy_model(seed: int = 5) -> ExtendedRouteNet:
    return ExtendedRouteNet(RouteNetConfig(
        link_state_dim=6, path_state_dim=6, node_state_dim=6,
        message_passing_iterations=2, seed=seed))


def _toy_samples(count: int = 4, seed: int = 3):
    return generate_dataset(ring_topology(4),
                            DatasetConfig(num_samples=count, seed=seed,
                                          small_queue_fraction=0.5))


def _toy_batches():
    samples = _toy_samples()
    normalizer = FeatureNormalizer().fit(samples)
    return make_batches([normalizer.tensorize(s) for s in samples], 2)


def _arm(monkeypatch, tmp_path, specs):
    """Plant a fault plan in the environment (inherited by pool workers)."""
    monkeypatch.setenv(ENV_PLAN, json.dumps(specs))
    monkeypatch.setenv(ENV_MARKER_DIR, str(tmp_path / "markers"))


def _run_group_results(executor, batches):
    executor.set_batches(batches)
    model = _toy_model()
    return executor.run_group(model.parameters_vector(), [0, 1])


def test_killed_worker_is_respawned_and_results_are_bit_identical(
        tmp_path, monkeypatch):
    """`pool.step.start` kill of rank 0's first task: the supervisor reaps
    the corpse, respawns it, re-uploads the batch cache and re-sends the
    step — same ring slot, same batch, bit-identical gradient."""
    batches = _toy_batches()
    with SerialGradientExecutor(_toy_model(), num_workers=2) as serial:
        expected = _run_group_results(serial, batches)

    _arm(monkeypatch, tmp_path, [{"site": "pool.step.start", "kind": "die",
                                  "match": {"rank": 0, "step": 0},
                                  "once": True, "id": "kill-rank0"}])
    with GradientWorkerPool(_toy_model(), num_workers=2) as pool:
        recovered = _run_group_results(pool, batches)
        assert pool.restarts == 1
        # The marker proves the fault actually fired (in the dead worker).
        assert (tmp_path / "markers" / "fired-kill-rank0").is_file()

    for (grad_r, loss_r, paths_r), (grad_e, loss_e, paths_e) in \
            zip(recovered, expected):
        assert np.array_equal(grad_r, grad_e)
        assert loss_r == loss_e
        assert paths_r == paths_e


def test_hung_worker_is_killed_after_task_timeout_and_work_redone(
        tmp_path, monkeypatch):
    batches = _toy_batches()
    with SerialGradientExecutor(_toy_model(), num_workers=2) as serial:
        expected = _run_group_results(serial, batches)

    _arm(monkeypatch, tmp_path, [{"site": "pool.step.start", "kind": "hang",
                                  "seconds": 60.0,
                                  "match": {"rank": 1, "step": 0},
                                  "once": True, "id": "hang-rank1"}])
    with GradientWorkerPool(_toy_model(), num_workers=2,
                            task_timeout=2.0) as pool:
        recovered = _run_group_results(pool, batches)
        assert pool.restarts == 1

    for (grad_r, _, _), (grad_e, _, _) in zip(recovered, expected):
        assert np.array_equal(grad_r, grad_e)


def _fit(samples, **config_overrides):
    parameters = dict(epochs=2, learning_rate=0.005, batch_size=2,
                      num_workers=2, seed=5)
    parameters.update(config_overrides)
    trainer = RouteNetTrainer(_toy_model(), TrainerConfig(**parameters))
    trainer.fit(samples)
    return trainer


def test_training_run_with_injected_worker_kill_is_bit_identical(
        tmp_path, monkeypatch):
    """The tentpole acceptance criterion for the training farm: a 2-worker
    fit whose rank-0 worker is killed mid-epoch produces the same weights
    and loss history, bit for bit, as the fault-free run."""
    samples = _toy_samples(count=6)
    clean = _fit(samples)

    _arm(monkeypatch, tmp_path, [{"site": "pool.step.start", "kind": "die",
                                  "match": {"rank": 0, "step": 1},
                                  "once": True, "id": "kill-mid-training"}])
    faulted = _fit(samples)
    assert (tmp_path / "markers" / "fired-kill-mid-training").is_file()

    assert faulted.history.train_loss == clean.history.train_loss
    assert faulted.history.epochs == clean.history.epochs
    assert np.array_equal(faulted.model.parameters_vector(),
                          clean.model.parameters_vector())


def test_pool_startup_failure_falls_back_to_serial_with_warning(monkeypatch):
    import repro.models.trainer as trainer_module

    real = trainer_module.make_gradient_executor

    def refuse_process_backend(model, num_workers, **kwargs):
        if kwargs.get("backend", "process") == "process":
            raise RuntimeError("injected start-up failure")
        return real(model, num_workers, **kwargs)

    samples = _toy_samples()
    reference = _fit(samples, epochs=1, parallel_backend="serial")

    monkeypatch.setattr(trainer_module, "make_gradient_executor",
                        refuse_process_backend)
    with pytest.warns(RuntimeWarning, match="falling back to the serial"):
        degraded = _fit(samples, epochs=1)

    assert degraded.history.train_loss == reference.history.train_loss
    assert np.array_equal(degraded.model.parameters_vector(),
                          reference.model.parameters_vector())
