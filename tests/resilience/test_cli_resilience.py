"""CLI surface of the fault-tolerance layer: `generate --max-retries /
--task-timeout`, the non-zero exit code on quarantined units, and the
`status` report's attempts / quarantine lines."""

from repro.cli import build_parser, main
from repro.testing.faults import install_plan


def test_generate_exits_nonzero_on_quarantine_and_resume_heals(tmp_path,
                                                               capsys):
    store = str(tmp_path / "store")
    command = ["generate", "--topology", "nsfnet", "--samples", "4",
               "--unit-size", "2", "--workers", "1", "--seed", "5",
               "--output", store]

    # Unit 1 fails on every execution: 1 + max-retries attempts, then
    # quarantine — the run completes, reports, and exits 1.
    install_plan([{"site": "factory.unit.start", "kind": "fail",
                   "match": {"unit_index": 1}}])
    assert main(command + ["--max-retries", "1"]) == 1
    captured = capsys.readouterr()
    assert "QUARANTINED units   : [1]" in captured.out
    assert "execution attempts  : 3" in captured.out  # unit 0 once, unit 1 twice
    assert "quarantined" in captured.err

    assert main(["status", "--dataset", store]) == 0
    assert "QUARANTINED units   : [1]" in capsys.readouterr().out

    # Clearing the fault and resuming retries the quarantined unit.
    install_plan(None)
    assert main(command + ["--resume"]) == 0
    assert main(["status", "--dataset", store]) == 0
    out = capsys.readouterr().out
    assert "(complete)" in out
    assert "QUARANTINED" not in out


def test_fault_tolerance_flags_parse_and_default(tmp_path):
    parser = build_parser()
    args = parser.parse_args(["generate", "--output", "x"])
    assert args.max_retries == 2
    assert args.task_timeout is None
    args = parser.parse_args(["generate", "--output", "x",
                              "--max-retries", "0", "--task-timeout", "1.5"])
    assert args.max_retries == 0
    assert args.task_timeout == 1.5
    args = parser.parse_args(["train", "--dataset", "d", "--output", "x",
                              "--task-timeout", "30"])
    assert args.task_timeout == 30.0
