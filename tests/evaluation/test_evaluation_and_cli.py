"""Tests for the evaluation helpers (error CDFs, reports) and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.evaluation import ErrorCDF, compare_cdfs, format_cdf_table, format_metrics_table


class TestErrorCDF:
    def test_evaluate_monotone(self):
        cdf = ErrorCDF("test", np.array([-0.2, -0.1, 0.0, 0.1, 0.4]))
        assert cdf.evaluate(-1.0) == 0.0
        assert cdf.evaluate(0.0) == pytest.approx(0.6)
        assert cdf.evaluate(1.0) == 1.0

    def test_quantiles(self):
        cdf = ErrorCDF("test", np.linspace(-1, 1, 101))
        assert cdf.quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert cdf.absolute_quantile(1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_fraction_within(self):
        cdf = ErrorCDF("test", np.array([-0.3, -0.05, 0.02, 0.5]))
        assert cdf.fraction_within(0.1) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            cdf.fraction_within(-0.1)

    def test_mean_absolute_error(self):
        cdf = ErrorCDF("test", np.array([-0.2, 0.2]))
        assert cdf.mean_absolute_error() == pytest.approx(0.2)

    def test_curve_shape(self):
        cdf = ErrorCDF("test", np.random.default_rng(0).normal(size=200))
        curve = cdf.curve(num_points=50)
        assert curve["x"].shape == (50,)
        assert np.all(np.diff(curve["cdf"]) >= 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ErrorCDF("empty", np.array([]))

    def test_compare_cdfs(self):
        good = ErrorCDF("good", np.array([-0.01, 0.02, 0.01]))
        bad = ErrorCDF("bad", np.array([-0.5, 0.4, 0.6]))
        rows = compare_cdfs([good, bad])
        assert rows[0]["label"] == "good"
        assert rows[0]["mean_abs_error"] < rows[1]["mean_abs_error"]
        assert rows[0]["within_10pct"] == 1.0
        with pytest.raises(ValueError):
            compare_cdfs([])


class TestReportFormatting:
    def test_metrics_table_alignment(self):
        rows = [{"label": "a", "value": 1.0}, {"label": "longer-name", "value": 0.25}]
        table = format_metrics_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("label")
        assert len(lines) == 4
        assert "longer-name" in lines[3]

    def test_metrics_table_empty_raises(self):
        with pytest.raises(ValueError):
            format_metrics_table([])

    def test_cdf_table_contains_labels_and_summary(self):
        cdf_a = ErrorCDF("model-A", np.random.default_rng(0).normal(0, 0.05, 100))
        cdf_b = ErrorCDF("model-B", np.random.default_rng(1).normal(0, 0.2, 100))
        table = format_cdf_table([cdf_a, cdf_b])
        assert "model-A" in table and "model-B" in table
        assert "Summary:" in table

    def test_cdf_table_empty_raises(self):
        with pytest.raises(ValueError):
            format_cdf_table([])


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "--output", "x", "--samples", "5"])
        assert args.command == "generate"
        assert args.samples == 5

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_train_evaluate_round_trip(self, tmp_path):
        dataset_path = str(tmp_path / "dataset")
        checkpoint_path = str(tmp_path / "model")
        assert main(["generate", "--topology", "nsfnet", "--samples", "6",
                     "--seed", "1", "--output", dataset_path]) == 0
        assert main(["train", "--dataset", dataset_path, "--model", "extended",
                     "--epochs", "2", "--state-dim", "6", "--iterations", "2",
                     "--output", checkpoint_path]) == 0
        assert main(["evaluate", "--dataset", dataset_path, "--model", "extended",
                     "--state-dim", "6", "--iterations", "2",
                     "--weights", checkpoint_path]) == 0

    def test_generate_random_topology(self, tmp_path):
        dataset_path = str(tmp_path / "random-dataset")
        assert main(["generate", "--topology", "random", "--random-nodes", "8",
                     "--samples", "2", "--output", dataset_path]) == 0
