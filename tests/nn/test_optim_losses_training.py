"""Tests for optimisers, losses, metrics, serialisation and the Trainer."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import metrics
from repro.nn.layers import MLP, Dense
from repro.nn.module import Module, Parameter
from repro.nn.optimizers import (
    Adam,
    ConstantSchedule,
    ExponentialDecay,
    Momentum,
    RMSProp,
    SGD,
    StepDecay,
    clip_gradients_by_norm,
)
from repro.nn.serialization import load_checkpoint, load_parameters, save_checkpoint, save_parameters
from repro.nn.tensor import Tensor
from repro.nn.training import EarlyStopping, History, Trainer, TrainingConfig

RNG = np.random.default_rng(21)


class Quadratic(Module):
    """Simple quadratic bowl f(w) = ||w - target||^2 for optimiser tests."""

    def __init__(self, dim=4, target=3.0):
        super().__init__()
        self.w = Parameter(np.zeros(dim))
        self.target = target

    def loss(self) -> Tensor:
        return ((self.w - self.target) ** 2).sum()


@pytest.mark.parametrize("optimizer_cls,kwargs", [
    (SGD, {"learning_rate": 0.1}),
    (Momentum, {"learning_rate": 0.05, "momentum": 0.9}),
    (Momentum, {"learning_rate": 0.05, "momentum": 0.9, "nesterov": True}),
    (RMSProp, {"learning_rate": 0.05}),
    (Adam, {"learning_rate": 0.2}),
])
def test_optimizers_converge_on_quadratic(optimizer_cls, kwargs):
    model = Quadratic()
    optimizer = optimizer_cls(model.parameters(), **kwargs)
    for _ in range(200):
        optimizer.zero_grad()
        loss = model.loss()
        loss.backward()
        optimizer.step()
    np.testing.assert_allclose(model.w.data, 3.0, atol=0.05)


def test_weight_decay_pulls_towards_zero():
    model = Quadratic(target=0.0)
    model.w.data = np.full(4, 5.0)
    optimizer = SGD(model.parameters(), learning_rate=0.01, weight_decay=1.0)
    for _ in range(100):
        optimizer.zero_grad()
        # Loss gradient is zero at w=0 target, decay should still shrink w.
        loss = (model.w * 0.0).sum()
        loss.backward()
        optimizer.step()
    assert np.all(np.abs(model.w.data) < 5.0)


def test_optimizer_requires_parameters():
    with pytest.raises(ValueError):
        SGD([], learning_rate=0.1)


def test_gradient_clipping_scales_norm():
    params = [Parameter(np.zeros(3))]
    params[0].grad = np.array([3.0, 4.0, 0.0])
    norm_before = clip_gradients_by_norm(params, max_norm=1.0)
    assert norm_before == pytest.approx(5.0)
    assert np.linalg.norm(params[0].grad) == pytest.approx(1.0, rel=1e-6)


def test_gradient_clipping_noop_below_threshold():
    params = [Parameter(np.zeros(2))]
    params[0].grad = np.array([0.3, 0.4])
    clip_gradients_by_norm(params, max_norm=10.0)
    np.testing.assert_allclose(params[0].grad, [0.3, 0.4])


def test_gradient_clipping_empty():
    assert clip_gradients_by_norm([Parameter(np.zeros(2))], 1.0) == 0.0


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.01)
        assert schedule(0) == schedule(1000) == 0.01

    def test_exponential_decay(self):
        schedule = ExponentialDecay(1.0, decay_steps=10, decay_rate=0.5)
        assert schedule(10) == pytest.approx(0.5)
        assert schedule(20) == pytest.approx(0.25)

    def test_step_decay(self):
        schedule = StepDecay(1.0, every=5, factor=10.0)
        assert schedule(4) == pytest.approx(1.0)
        assert schedule(5) == pytest.approx(0.1)

    def test_schedule_in_optimizer(self):
        model = Quadratic()
        optimizer = SGD(model.parameters(), learning_rate=ExponentialDecay(0.1, 10, 0.5))
        assert optimizer.learning_rate == pytest.approx(0.1)
        for _ in range(10):
            optimizer.zero_grad()
            model.loss().backward()
            optimizer.step()
        assert optimizer.learning_rate < 0.1

    def test_invalid_schedules(self):
        with pytest.raises(ValueError):
            ConstantSchedule(-1.0)
        with pytest.raises(ValueError):
            ExponentialDecay(1.0, 0, 0.5)
        with pytest.raises(ValueError):
            StepDecay(1.0, 5, 0.5)


class TestLosses:
    def test_mse_value(self):
        loss = nn.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_mae_value(self):
        loss = nn.mae_loss(Tensor([1.0, -2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(1.5)

    def test_huber_quadratic_region(self):
        loss = nn.huber_loss(Tensor([0.5]), Tensor([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(0.125)

    def test_huber_linear_region(self):
        loss = nn.huber_loss(Tensor([3.0]), Tensor([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(2.5)

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            nn.huber_loss(Tensor([1.0]), Tensor([0.0]), delta=0.0)

    def test_mape(self):
        loss = nn.mape_loss(Tensor([1.1]), Tensor([1.0]))
        assert loss.item() == pytest.approx(0.1, rel=1e-6)

    def test_log_mse_scale_invariance(self):
        small = nn.log_mse_loss(Tensor([0.002]), Tensor([0.001]))
        large = nn.log_mse_loss(Tensor([2.0]), Tensor([1.0]))
        assert small.item() == pytest.approx(large.item(), rel=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.mse_loss(Tensor([1.0, 2.0]), Tensor([1.0]))

    def test_losses_differentiable(self):
        for loss_fn in (nn.mse_loss, nn.mae_loss, nn.huber_loss, nn.mape_loss, nn.log_mse_loss):
            pred = Tensor(np.array([1.5, 2.5]), requires_grad=True)
            loss_fn(pred, Tensor([1.0, 2.0])).backward()
            assert pred.grad is not None


class TestMetrics:
    def test_relative_errors_signed(self):
        err = metrics.relative_errors([1.2, 0.8], [1.0, 1.0])
        np.testing.assert_allclose(err, [0.2, -0.2], atol=1e-12)

    def test_mean_relative_error(self):
        assert metrics.mean_relative_error([1.2, 0.8], [1.0, 1.0]) == pytest.approx(0.2)

    def test_mape_is_percent(self):
        assert metrics.mean_absolute_percentage_error([1.1], [1.0]) == pytest.approx(10.0)

    def test_r2_perfect(self):
        assert metrics.r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_r2_mean_predictor_zero(self):
        targets = [1.0, 2.0, 3.0]
        assert metrics.r2_score([2.0, 2.0, 2.0], targets) == pytest.approx(0.0)

    def test_pearson_linear(self):
        x = np.linspace(0, 1, 20)
        assert metrics.pearson_correlation(2 * x + 1, x) == pytest.approx(1.0)

    def test_pearson_degenerate(self):
        assert metrics.pearson_correlation([1.0, 1.0], [1.0, 2.0]) == 0.0

    def test_rmse(self):
        assert metrics.root_mean_squared_error([3.0], [0.0]) == pytest.approx(3.0)

    def test_cdf_monotonic_and_normalised(self):
        values = RNG.normal(size=500)
        xs, cdf = metrics.cumulative_distribution(values, num_points=100)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)
        assert xs[0] == pytest.approx(values.min())

    def test_cdf_empty_raises(self):
        with pytest.raises(ValueError):
            metrics.cumulative_distribution([])

    def test_quantiles(self):
        out = metrics.error_quantiles(np.arange(101))
        assert out["p50"] == pytest.approx(50.0)
        assert out["p99"] == pytest.approx(99.0)

    def test_mismatched_sizes_raise(self):
        with pytest.raises(ValueError):
            metrics.mean_relative_error([1.0], [1.0, 2.0])

    @given(st.lists(st.floats(0.1, 100), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_relative_error_zero_for_perfect_predictions(self, targets):
        err = metrics.relative_errors(targets, targets)
        np.testing.assert_allclose(err, 0.0, atol=1e-12)


class TestSerialization:
    def test_round_trip(self, tmp_path):
        model = MLP(3, [8], 1, rng=np.random.default_rng(0))
        path = save_parameters(model, str(tmp_path / "model"))
        clone = MLP(3, [8], 1, rng=np.random.default_rng(99))
        load_parameters(clone, path)
        x = Tensor(RNG.normal(size=(4, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_parameters(MLP(2, [2], 1), str(tmp_path / "missing"))

    def test_strict_mismatch_raises(self, tmp_path):
        model = Dense(2, 2)
        path = save_parameters(model, str(tmp_path / "dense"))
        other = Dense(3, 2)
        with pytest.raises((KeyError, ValueError)):
            load_parameters(other, path)

    def test_checkpoint_metadata(self, tmp_path):
        model = Dense(2, 2)
        save_checkpoint(model, str(tmp_path / "ckpt"), metadata={"epoch": 7})
        meta = load_checkpoint(Dense(2, 2), str(tmp_path / "ckpt"))
        assert meta["epoch"] == 7

    def test_state_dict_load_shape_check(self):
        model = Dense(2, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestTrainer:
    @staticmethod
    def _make_regression(n=48, seed=5):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 3))
        y = x @ np.array([[1.0], [-2.0], [0.5]]) + 0.1
        return [(x[i:i + 8], y[i:i + 8]) for i in range(0, n, 8)]

    @staticmethod
    def _loss_fn(model, item):
        x, y = item
        return nn.mse_loss(model(Tensor(x)), Tensor(y))

    def test_loss_decreases(self):
        batches = self._make_regression()
        model = MLP(3, [16], 1, rng=np.random.default_rng(1))
        trainer = Trainer(model, Adam(model.parameters(), 0.01), self._loss_fn,
                          TrainingConfig(epochs=30, seed=1))
        history = trainer.fit(batches)
        assert history.train_loss[-1] < history.train_loss[0] * 0.2

    def test_validation_recorded(self):
        batches = self._make_regression()
        model = MLP(3, [8], 1, rng=np.random.default_rng(2))
        trainer = Trainer(model, Adam(model.parameters(), 0.01), self._loss_fn,
                          TrainingConfig(epochs=3))
        history = trainer.fit(batches[:4], val_items=batches[4:])
        assert len(history.val_loss) == 3
        assert history.best_val_loss is not None

    def test_early_stopping_stops(self):
        batches = self._make_regression()
        model = MLP(3, [4], 1, rng=np.random.default_rng(3))
        # Zero learning rate: loss never improves, early stopping must fire.
        trainer = Trainer(model, SGD(model.parameters(), 1e-12), self._loss_fn,
                          TrainingConfig(epochs=50))
        stopper = EarlyStopping(patience=3, min_delta=1e-6)
        history = trainer.fit(batches, early_stopping=stopper)
        assert len(history.epochs) <= 6
        assert stopper.stopped_epoch is not None

    def test_empty_training_set_raises(self):
        model = MLP(3, [4], 1)
        trainer = Trainer(model, SGD(model.parameters(), 0.1), self._loss_fn)
        with pytest.raises(ValueError):
            trainer.fit([])

    def test_loss_fn_must_return_tensor(self):
        model = MLP(3, [4], 1)
        trainer = Trainer(model, SGD(model.parameters(), 0.1), lambda m, item: 1.0)
        with pytest.raises(TypeError):
            trainer.train_step((np.zeros((2, 3)), np.zeros((2, 1))))

    def test_gradient_clipping_config(self):
        batches = self._make_regression(n=16)
        model = MLP(3, [4], 1, rng=np.random.default_rng(4))
        trainer = Trainer(model, Adam(model.parameters(), 0.01), self._loss_fn,
                          TrainingConfig(epochs=2, gradient_clip_norm=0.5))
        trainer.fit(batches)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(gradient_clip_norm=-1)
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)

    def test_history_dict(self):
        history = History()
        history.record(1, 0.5, 0.6, 0.1)
        out = history.as_dict()
        assert out["train_loss"] == [0.5]
        assert out["val_loss"] == [0.6]


class TestModuleBasics:
    def test_named_parameters_nested(self):
        model = MLP(2, [3], 1, rng=np.random.default_rng(0))
        names = [name for name, _ in model.named_parameters()]
        assert any("layer0" in n for n in names)
        assert all("." in n for n in names)

    def test_num_parameters(self):
        model = Dense(3, 2)
        assert model.num_parameters() == 3 * 2 + 2

    def test_zero_grad_clears(self):
        model = Dense(2, 1)
        (model(Tensor(np.ones((1, 2)))) ** 2).sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_train_eval_propagates(self):
        model = nn.Sequential([Dense(2, 2), Dropout(0.5)])
        model.eval()
        assert not model.layers[1].training
        model.train()
        assert model.layers[1].training


from repro.nn.layers import Dropout  # noqa: E402  (used in TestModuleBasics)


class TestOptimizerStateDict:
    """The optimiser state must round-trip its moment buffers, not just the
    step count — resuming Adam with zeroed moments applies the bias
    correction 1/(1 - beta**step_count) to the wrong statistics."""

    @pytest.mark.parametrize("optimizer_cls,buffer_names", [
        (SGD, ()),
        (Momentum, ("velocity",)),
        (RMSProp, ("mean_square",)),
        (Adam, ("first_moment", "second_moment")),
    ])
    def test_state_round_trip_restores_buffers(self, optimizer_cls, buffer_names):
        model = Quadratic()
        optimizer = optimizer_cls(model.parameters(), learning_rate=0.05)
        for _ in range(5):
            optimizer.zero_grad()
            model.loss().backward()
            optimizer.step()
        state = optimizer.state_dict()
        assert state["step_count"] == 5
        for name in buffer_names:
            assert name in state
            assert any(np.abs(buffer).max() > 0 for buffer in state[name])

        fresh_model = Quadratic()
        fresh = optimizer_cls(fresh_model.parameters(), learning_rate=0.05)
        fresh.load_state_dict(state)
        assert fresh.step_count == 5
        for name in buffer_names:
            for restored, original in zip(getattr(fresh, f"_{name}"),
                                          getattr(optimizer, f"_{name}")):
                assert np.array_equal(restored, original)

    def test_state_dict_is_a_copy(self):
        model = Quadratic()
        optimizer = Adam(model.parameters(), learning_rate=0.05)
        optimizer.zero_grad()
        model.loss().backward()
        optimizer.step()
        state = optimizer.state_dict()
        state["first_moment"][0][...] = 123.0
        assert np.abs(optimizer._first_moment[0]).max() < 100

    def test_resumed_adam_matches_uninterrupted_run(self):
        def run(steps, optimizer=None, model=None):
            model = model if model is not None else Quadratic()
            optimizer = optimizer if optimizer is not None else Adam(
                model.parameters(), learning_rate=0.1)
            for _ in range(steps):
                optimizer.zero_grad()
                model.loss().backward()
                optimizer.step()
            return model, optimizer

        straight_model, _ = run(10)
        half_model, half_optimizer = run(5)
        state = half_optimizer.state_dict()
        resumed_model = Quadratic()
        resumed_model.load_state_dict(half_model.state_dict())
        resumed_optimizer = Adam(resumed_model.parameters(), learning_rate=0.1)
        resumed_optimizer.load_state_dict(state)
        run(5, optimizer=resumed_optimizer, model=resumed_model)
        assert np.array_equal(resumed_model.w.data, straight_model.w.data)

    def test_missing_buffers_raise(self):
        model = Quadratic()
        optimizer = Adam(model.parameters())
        with pytest.raises(KeyError, match="first_moment"):
            optimizer.load_state_dict({"step_count": 3})

    def test_shape_mismatch_raises(self):
        small = Quadratic(dim=2)
        large = Quadratic(dim=4)
        source = Momentum(large.parameters(), learning_rate=0.05)
        source.zero_grad()
        large.loss().backward()
        source.step()
        target = Momentum(small.parameters(), learning_rate=0.05)
        with pytest.raises(ValueError, match="shape"):
            target.load_state_dict(source.state_dict())

    def test_buffer_count_mismatch_raises(self):
        model = Quadratic()
        optimizer = Momentum(model.parameters(), learning_rate=0.05)
        state = optimizer.state_dict()
        state["velocity"] = state["velocity"] + [np.zeros(4)]
        with pytest.raises(ValueError, match="buffers"):
            optimizer.load_state_dict(state)


class TestEvaluateModeRestore:
    """Trainer.evaluate must restore the model's prior train/eval mode."""

    @staticmethod
    def _trainer():
        model = Dense(2, 1, rng=np.random.default_rng(3))
        optimizer = SGD(model.parameters(), learning_rate=0.01)

        def loss_fn(m, item):
            x, y = item
            return ((m(Tensor(x)) - Tensor(y)) ** 2).sum()

        items = [(np.ones((1, 2)), np.zeros((1, 1)))]
        return Trainer(model, optimizer, loss_fn), items

    def test_training_model_returns_to_training(self):
        trainer, items = self._trainer()
        trainer.model.train()
        trainer.evaluate(items)
        assert trainer.model.training

    def test_eval_model_stays_in_eval(self):
        trainer, items = self._trainer()
        trainer.model.eval()
        trainer.evaluate(items)
        assert not trainer.model.training
