"""Parametric gradient checks: every op × both dtypes, via the harness.

Complements ``test_tensor_autograd.py`` (float64-only, structural cases):
here every differentiable Tensor operation, the functional activations, the
fused masked-update nodes and both recurrent cells are verified against
float64 central differences in **float64 and float32**, and their outputs
are required to carry the requested dtype (catching silent upcasts).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.recurrent import GRUCell, LSTMCell, run_rnn_over_sequence
from repro.nn.tensor import (
    Tensor,
    concat,
    gather_segment_sum,
    masked_where,
    segment_mean,
    segment_sum,
    stack,
    where,
)

from tests.nn.gradcheck import gradcheck, module_gradcheck

RNG = np.random.default_rng(42)
DTYPES = ["float64", "float32"]


def _away_from(values: np.ndarray, point: float, margin: float = 0.2) -> np.ndarray:
    """Nudge entries within ``margin`` of a kink so finite differences hold."""
    values = values.copy()
    values[np.abs(values - point) < margin] += 2 * margin
    return values


# --------------------------------------------------------------------- #
# One case per Tensor operation: (id, fn, input arrays)
# --------------------------------------------------------------------- #
_MAT_A = RNG.normal(size=(4, 3))
_SEGMENT_IDS = np.array([0, 2, 2, 1, 0])
_GATHER_IDS = np.array([0, 2, 2, 1])
_GATHER_IDS_2D = np.array([[0, 1], [2, 0]])
_ENTRY_ROWS = np.array([0, 0, 1, 2, 3, 3])
_ENTRY_COLS = np.array([0, 1, 1, 0, 0, 1])
_ENTRY_SEGMENTS = np.array([0, 1, 0, 2, 2, 1])
_ROW_MASK = np.array([True, False, True, True, False])
_WHERE_COND = RNG.normal(size=(4, 3)) > 0

OP_CASES = [
    ("add_broadcast", lambda a, b: a + b, [RNG.normal(size=(4, 3)), RNG.normal(size=(3,))]),
    ("radd_scalar", lambda a: 2.5 + a, [RNG.normal(size=(3, 2))]),
    ("sub", lambda a, b: a - b, [RNG.normal(size=(4,)), RNG.normal(size=(4,))]),
    ("rsub_scalar", lambda a: 1.0 - a, [RNG.normal(size=(5,))]),
    ("neg", lambda a: -a, [RNG.normal(size=(3, 2))]),
    ("mul_broadcast", lambda a, b: a * b, [RNG.normal(size=(4, 3)), RNG.normal(size=(4, 1))]),
    ("rmul_scalar", lambda a: 3.0 * a, [RNG.normal(size=(4,))]),
    ("div", lambda a, b: a / b,
     [RNG.normal(size=(3, 3)), _away_from(RNG.normal(size=(3, 3)), 0.0, 0.5)]),
    ("rdiv_scalar", lambda a: 2.0 / a, [_away_from(RNG.normal(size=(4,)), 0.0, 0.5)]),
    ("pow", lambda a: a ** 3, [RNG.normal(size=(5,))]),
    ("matmul_22", lambda a, b: a.matmul(b), [_MAT_A, RNG.normal(size=(3, 2))]),
    ("matmul_21", lambda a, b: a.matmul(b), [_MAT_A, RNG.normal(size=(3,))]),
    ("matmul_12", lambda a, b: a.matmul(b), [RNG.normal(size=(4,)), RNG.normal(size=(4, 2))]),
    ("sum_all", lambda a: a.sum(), [RNG.normal(size=(3, 4))]),
    ("sum_axis_keepdims", lambda a: a.sum(axis=1, keepdims=True) * a,
     [RNG.normal(size=(4, 3))]),
    ("mean_axis", lambda a: a.mean(axis=0), [RNG.normal(size=(5, 3))]),
    ("max_axis", lambda a: a.max(axis=1), [RNG.normal(size=(4, 3))]),
    ("max_all", lambda a: a.max(), [RNG.normal(size=(7,))]),
    ("exp", lambda a: a.exp(), [RNG.normal(size=(6,))]),
    ("log", lambda a: (a * a + 1.0).log(), [RNG.normal(size=(6,))]),
    ("sqrt", lambda a: (a * a + 1.0).sqrt(), [RNG.normal(size=(5,))]),
    ("abs", lambda a: a.abs(), [_away_from(RNG.normal(size=(6,)), 0.0)]),
    ("tanh", lambda a: a.tanh(), [RNG.normal(size=(4, 2))]),
    ("sigmoid", lambda a: a.sigmoid(), [RNG.normal(size=(4, 2))]),
    ("relu", lambda a: a.relu(), [_away_from(RNG.normal(size=(4, 3)), 0.0)]),
    ("softplus", lambda a: a.softplus(), [RNG.normal(size=(7,))]),
    ("clip", lambda a: a.clip(-1.0, 1.0),
     [_away_from(_away_from(3 * RNG.normal(size=(8,)), 1.0), -1.0)]),
    ("reshape", lambda a: a.reshape(6), [RNG.normal(size=(2, 3))]),
    ("flatten", lambda a: a.flatten(), [RNG.normal(size=(2, 2, 2))]),
    ("squeeze", lambda a: a.squeeze(1), [RNG.normal(size=(4, 1, 2))]),
    ("expand_dims", lambda a: a.expand_dims(1) * 2.0, [RNG.normal(size=(4,))]),
    ("transpose", lambda a: a.transpose(), [RNG.normal(size=(3, 4))]),
    ("transpose_axes", lambda a: a.transpose((1, 2, 0)), [RNG.normal(size=(2, 3, 2))]),
    ("getitem_slice", lambda a: a[1:3, :], [RNG.normal(size=(5, 2))]),
    ("getitem_advanced", lambda a: a[(_ENTRY_ROWS[:4], _ENTRY_COLS[:4])],
     [RNG.normal(size=(4, 2))]),
    ("gather_1d", lambda a: a.gather(_GATHER_IDS), [RNG.normal(size=(3, 4))]),
    ("gather_2d", lambda a: a.gather(_GATHER_IDS_2D), [RNG.normal(size=(3, 2))]),
    ("concat", lambda a, b: concat([a, b], axis=0),
     [RNG.normal(size=(3, 3)), RNG.normal(size=(2, 3))]),
    ("stack", lambda a, b: stack([a, b], axis=1),
     [RNG.normal(size=(3,)), RNG.normal(size=(3,))]),
    ("where", lambda a, b: where(_WHERE_COND, a, b),
     [RNG.normal(size=(4, 3)), RNG.normal(size=(4, 3))]),
    ("masked_where", lambda a, b: masked_where(_ROW_MASK, a, b),
     [RNG.normal(size=(5, 3)), RNG.normal(size=(5, 3))]),
    ("segment_sum", lambda a: segment_sum(a, _SEGMENT_IDS, 3), [RNG.normal(size=(5, 2))]),
    ("segment_mean", lambda a: segment_mean(a, _SEGMENT_IDS, 4), [RNG.normal(size=(5, 2))]),
    ("gather_segment_sum_rows",
     lambda a: gather_segment_sum(a, _GATHER_IDS, np.array([0, 1, 1, 0]), 2),
     [RNG.normal(size=(3, 4))]),
    ("gather_segment_sum_entries",
     lambda a: gather_segment_sum(a, (_ENTRY_ROWS, _ENTRY_COLS), _ENTRY_SEGMENTS, 3),
     [RNG.normal(size=(4, 2, 3))]),
    # Functional activations (where-based composites).
    ("leaky_relu", lambda a: F.leaky_relu(a), [_away_from(RNG.normal(size=(4, 3)), 0.0)]),
    ("elu", lambda a: F.elu(a), [_away_from(RNG.normal(size=(4, 3)), 0.0)]),
    ("selu", lambda a: F.selu(a), [_away_from(RNG.normal(size=(4, 3)), 0.0)]),
    ("softmax", lambda a: F.softmax(a, axis=-1), [RNG.normal(size=(3, 4))]),
    ("l2_norm", lambda a, b: F.l2_norm([a, b]),
     [RNG.normal(size=(3, 2)), RNG.normal(size=(4,))]),
]


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("name,fn,arrays", OP_CASES, ids=[c[0] for c in OP_CASES])
def test_op_gradients(name, fn, arrays, dtype):
    gradcheck(fn, arrays, dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_astype_upcast_gradient(dtype):
    # Casting up to float64 keeps the numerical reference noise-free; the
    # output intentionally carries float64 so the dtype check is disabled.
    gradcheck(lambda a: a.astype("float64") * 2.0,
              [RNG.normal(size=(4, 3))], dtype=dtype, check_dtype=False)


def test_astype_downcast_backward_exact():
    # Down-casts cannot be finite-differenced (the float32 rounding swamps
    # the step), but the backward contract is exact: the gradient comes
    # back cast to the source dtype, numerically unchanged.
    x = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
    y = x.astype("float32")
    assert y.dtype == np.float32
    cotangent = RNG.normal(size=(3, 2)).astype(np.float32)
    y.backward(cotangent)
    assert x.grad.dtype == np.float64
    np.testing.assert_allclose(x.grad, cotangent.astype(np.float64), rtol=0, atol=0)


# --------------------------------------------------------------------- #
# Recurrent cells and the masked sequence scan
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("dtype", DTYPES)
def test_gru_cell_gradients(dtype):
    module_gradcheck(
        lambda: GRUCell(3, 4, rng=np.random.default_rng(0)),
        [RNG.normal(size=(5, 3)), RNG.normal(size=(5, 4))],
        dtype=dtype,
    )


@pytest.mark.parametrize("dtype", DTYPES)
def test_lstm_cell_gradients(dtype):
    module_gradcheck(
        lambda: LSTMCell(3, 4, rng=np.random.default_rng(1)),
        [RNG.normal(size=(5, 3)), RNG.normal(size=(5, 8))],
        dtype=dtype,
    )


_SCAN_MASK = np.array([
    [1.0, 1.0, 1.0],
    [1.0, 1.0, 0.0],
    [1.0, 0.0, 0.0],
    [1.0, 1.0, 1.0],
])  # step 0 fully valid (fast path), steps 1-2 ragged (fused masked_where)


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("output_index", [0, 1], ids=["outputs", "final_state"])
def test_run_rnn_over_sequence_gradients(dtype, output_index):
    module_gradcheck(
        lambda: GRUCell(3, 4, rng=np.random.default_rng(2)),
        [RNG.normal(size=(4, 3, 3)), RNG.normal(size=(4, 4))],
        forward=lambda cell, sequence, initial: run_rnn_over_sequence(
            cell, sequence, _SCAN_MASK, initial_state=initial)[output_index],
        dtype=dtype,
    )


@pytest.mark.parametrize("dtype", DTYPES)
def test_masked_where_one_sided_gradients(dtype):
    """Only one operand requires grad: the pooled buffer path still splits right."""
    new_values = RNG.normal(size=(5, 3))
    constant_old = Tensor(RNG.normal(size=(5, 3)).astype(np.dtype(dtype)))
    gradcheck(lambda a: masked_where(_ROW_MASK, a, constant_old),
              [new_values], dtype=dtype)
    constant_new = Tensor(RNG.normal(size=(5, 3)).astype(np.dtype(dtype)))
    gradcheck(lambda b: masked_where(_ROW_MASK, constant_new, b),
              [RNG.normal(size=(5, 3))], dtype=dtype)


def test_masked_where_rejects_bad_shapes():
    a = Tensor(np.ones((3, 2)))
    with pytest.raises(ValueError):
        masked_where(np.array([True, False]), a, Tensor(np.ones((3, 2))))
    with pytest.raises(ValueError):
        masked_where(np.array([True, False, True]), a, Tensor(np.ones((2, 2))))


def test_gather_segment_sum_rejects_bad_ids():
    data = Tensor(np.ones((3, 2)))
    with pytest.raises(ValueError):
        gather_segment_sum(data, np.array([0, 1]), np.array([0, 5]), 3)
    with pytest.raises(ValueError):
        gather_segment_sum(data, np.array([0, 1]), np.array([0]), 3)


@pytest.mark.parametrize("dtype", DTYPES)
def test_gather_segment_sum_matches_unfused(dtype):
    """The fused node computes exactly segment_sum(data[idx]) — same forward."""
    data = RNG.normal(size=(4, 2, 3)).astype(np.dtype(dtype))
    fused = gather_segment_sum(Tensor(data), (_ENTRY_ROWS, _ENTRY_COLS),
                               _ENTRY_SEGMENTS, 3)
    unfused = segment_sum(Tensor(data)[(_ENTRY_ROWS, _ENTRY_COLS)],
                          _ENTRY_SEGMENTS, 3)
    np.testing.assert_allclose(fused.data, unfused.data, rtol=1e-6)
    assert fused.dtype == np.dtype(dtype)
