"""Gradient-correctness tests for the autograd Tensor.

Every differentiable operation is checked against central finite differences
on random inputs; structural behaviours (broadcasting, graph reuse, no_grad)
get dedicated tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import (no_grad as _no_grad, is_grad_enabled as _is_grad_enabled,
                             zeros as _zeros, ones as _ones, randn as _randn)


class _T:
    no_grad = staticmethod(_no_grad)
    is_grad_enabled = staticmethod(_is_grad_enabled)
    zeros = staticmethod(_zeros)
    ones = staticmethod(_ones)
    randn = staticmethod(_randn)


T = _T
from repro.nn.tensor import Tensor, concat, segment_mean, segment_sum, stack, where


def numerical_gradient(fn, x: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = fn(x)
        flat[i] = original - epsilon
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return grad


def check_gradient(make_output, x_value: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradient with the numerical gradient for ``make_output``."""
    x = Tensor(x_value.copy(), requires_grad=True)
    out = make_output(x)
    out.backward()

    def scalar_fn(value: np.ndarray) -> float:
        return float(make_output(Tensor(value)).data)

    expected = numerical_gradient(scalar_fn, x_value.copy())
    np.testing.assert_allclose(x.grad, expected, atol=atol, rtol=1e-4)


RNG = np.random.default_rng(7)


class TestElementwiseGradients:
    def test_add_mul(self):
        check_gradient(lambda x: ((x * 3.0 + 2.0) * x).sum(), RNG.normal(size=(4, 3)))

    def test_sub_div(self):
        check_gradient(lambda x: ((x - 1.5) / (x * x + 2.0)).sum(), RNG.normal(size=(3, 3)))

    def test_pow(self):
        check_gradient(lambda x: (x ** 3).sum(), RNG.normal(size=(5,)))

    def test_neg(self):
        check_gradient(lambda x: (-x * 2.0).sum(), RNG.normal(size=(2, 2)))

    def test_exp_log(self):
        check_gradient(lambda x: (x.exp() + (x * x + 1.0).log()).sum(), RNG.normal(size=(6,)))

    def test_tanh(self):
        check_gradient(lambda x: x.tanh().sum(), RNG.normal(size=(4, 2)))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid().sum(), RNG.normal(size=(4, 2)))

    def test_relu(self):
        # Keep values away from the kink at 0.
        values = RNG.normal(size=(4, 3))
        values[np.abs(values) < 0.1] = 0.5
        check_gradient(lambda x: x.relu().sum(), values)

    def test_softplus(self):
        check_gradient(lambda x: x.softplus().sum(), RNG.normal(size=(7,)))

    def test_abs(self):
        values = RNG.normal(size=(5,))
        values[np.abs(values) < 0.1] = 0.7
        check_gradient(lambda x: x.abs().sum(), values)

    def test_sqrt(self):
        check_gradient(lambda x: (x * x + 1.0).sqrt().sum(), RNG.normal(size=(5,)))

    def test_clip(self):
        values = RNG.normal(size=(8,)) * 3
        values[np.abs(np.abs(values) - 1.0) < 0.05] = 0.0
        check_gradient(lambda x: x.clip(-1.0, 1.0).sum(), values)

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor(np.array([-500.0, 500.0]))
        out = x.sigmoid()
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)


class TestMatmulAndReductions:
    def test_matmul_left(self):
        right = RNG.normal(size=(3, 2))
        check_gradient(lambda x: (x.matmul(right)).sum(), RNG.normal(size=(4, 3)))

    def test_matmul_right(self):
        left = Tensor(RNG.normal(size=(4, 3)))
        check_gradient(lambda x: (left.matmul(x) ** 2).sum(), RNG.normal(size=(3, 2)))

    def test_mean_axis(self):
        check_gradient(lambda x: (x.mean(axis=0) ** 2).sum(), RNG.normal(size=(5, 3)))

    def test_sum_keepdims(self):
        check_gradient(lambda x: (x.sum(axis=1, keepdims=True) * x).sum(), RNG.normal(size=(4, 3)))

    def test_max(self):
        values = RNG.normal(size=(4, 3))
        check_gradient(lambda x: x.max(axis=1).sum(), values)

    def test_broadcast_add(self):
        bias = RNG.normal(size=(3,))
        check_gradient(lambda x: ((x + bias) ** 2).sum(), RNG.normal(size=(4, 3)))

    def test_broadcast_grad_shape(self):
        a = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        ((a * b).sum()).backward()
        assert a.grad.shape == (4, 3)
        assert b.grad.shape == (3,)


class TestShapeOps:
    def test_reshape(self):
        check_gradient(lambda x: (x.reshape(6) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_transpose(self):
        weight = RNG.normal(size=(4, 2))
        check_gradient(lambda x: (x.transpose().matmul(weight)).sum(), RNG.normal(size=(4, 3)))

    def test_getitem_slice(self):
        check_gradient(lambda x: (x[1:3, :] ** 2).sum(), RNG.normal(size=(5, 2)))

    def test_getitem_column(self):
        check_gradient(lambda x: (x[:, 0] * 2.0).sum(), RNG.normal(size=(4, 3)))

    def test_gather(self):
        indices = np.array([0, 2, 2, 1])
        check_gradient(lambda x: (x.gather(indices) ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_gather_2d_indices(self):
        indices = np.array([[0, 1], [2, 0]])
        check_gradient(lambda x: (x.gather(indices) ** 2).sum(), RNG.normal(size=(3, 2)))

    def test_concat(self):
        b = Tensor(RNG.normal(size=(2, 3)))
        check_gradient(lambda x: (concat([x, b], axis=0) ** 2).sum(), RNG.normal(size=(3, 3)))

    def test_stack(self):
        b = Tensor(RNG.normal(size=(3,)))
        check_gradient(lambda x: (stack([x, b], axis=0) ** 2).sum(), RNG.normal(size=(3,)))

    def test_squeeze_expand(self):
        check_gradient(lambda x: (x.expand_dims(1).squeeze(1) ** 2).sum(), RNG.normal(size=(4,)))


class TestSegmentOps:
    def test_segment_sum_values(self):
        data = Tensor(np.arange(12, dtype=float).reshape(6, 2))
        ids = np.array([0, 0, 1, 2, 2, 2])
        out = segment_sum(data, ids, 3)
        expected = np.array([[2.0, 4.0], [4.0, 5.0], [24.0, 27.0]])
        np.testing.assert_allclose(out.data, expected)

    def test_segment_sum_gradient(self):
        ids = np.array([0, 1, 1, 0, 2])
        check_gradient(lambda x: (segment_sum(x, ids, 3) ** 2).sum(), RNG.normal(size=(5, 2)))

    def test_segment_sum_empty_segment(self):
        data = Tensor(np.ones((2, 2)))
        out = segment_sum(data, np.array([0, 2]), 4)
        np.testing.assert_allclose(out.data[1], 0.0)
        np.testing.assert_allclose(out.data[3], 0.0)

    def test_segment_mean(self):
        data = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = segment_mean(data, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [6.0]])

    def test_segment_sum_rejects_bad_ids(self):
        data = Tensor(np.ones((3, 1)))
        with pytest.raises(ValueError):
            segment_sum(data, np.array([0, 1, 5]), 3)

    def test_segment_sum_rejects_wrong_length(self):
        data = Tensor(np.ones((3, 1)))
        with pytest.raises(ValueError):
            segment_sum(data, np.array([0, 1]), 3)


class TestWhere:
    def test_where_gradient(self):
        condition = np.array([True, False, True, False])
        b = Tensor(RNG.normal(size=(4,)))
        check_gradient(lambda x: (where(condition, x * 2.0, b) ** 2).sum(), RNG.normal(size=(4,)))

    def test_where_selects(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])


class TestGraphMechanics:
    def test_reused_tensor_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with T.no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_grad_disabled_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with T.no_grad():
                raise RuntimeError("boom")
        assert T.is_grad_enabled()

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_explicit_grad_shape_checked(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with pytest.raises(ValueError):
            y.backward(np.ones(4))

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x.sum()).backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_item_and_len(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_factories(self):
        assert T.zeros((2, 2)).data.sum() == 0.0
        assert T.ones((2, 2)).data.sum() == 4.0
        assert T.randn((3, 3), rng=np.random.default_rng(0)).shape == (3, 3)

    def test_explicit_dtype_wins_over_input_dtype(self):
        from repro.nn.tensor import default_dtype
        source = Tensor(np.ones(3))  # float64
        assert Tensor(source, dtype="float32").dtype == np.float32
        assert Tensor(np.ones(3, dtype=np.float64), dtype="float32").dtype == np.float32
        # Without an explicit dtype, float arrays keep theirs even when the
        # ambient default differs.
        with default_dtype("float32"):
            assert Tensor(np.ones(3, dtype=np.float64)).dtype == np.float64
            assert Tensor([1.0, 2.0]).dtype == np.float32


class TestHypothesisProperties:
    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_sum_linearity(self, values):
        x = Tensor(np.array(values), requires_grad=True)
        (x.sum() * 2.0).backward()
        np.testing.assert_allclose(x.grad, 2.0 * np.ones(len(values)))

    @given(st.integers(2, 20), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_segment_sum_preserves_total(self, rows, cols):
        rng = np.random.default_rng(rows * 31 + cols)
        data = rng.normal(size=(rows, cols))
        ids = rng.integers(0, 4, size=rows)
        out = segment_sum(Tensor(data), ids, 4)
        np.testing.assert_allclose(out.data.sum(axis=0), data.sum(axis=0), atol=1e-9)

    @given(st.lists(st.floats(-5, 5), min_size=2, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_tanh_bounded(self, values):
        out = Tensor(np.array(values)).tanh()
        assert np.all(np.abs(out.data) <= 1.0)
