"""Tests for dense layers, normalisation, embeddings and recurrent cells."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.layers import MLP, Dense, Dropout, Embedding, LayerNorm, Sequential, get_activation
from repro.nn.recurrent import GRUCell, LSTMCell, run_rnn_over_sequence
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(11)


class TestDense:
    def test_output_shape(self):
        layer = Dense(5, 3, rng=RNG)
        out = layer(Tensor(RNG.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_linear_is_affine(self):
        layer = Dense(2, 1, rng=RNG)
        x1 = np.array([[1.0, 0.0]])
        x2 = np.array([[0.0, 1.0]])
        both = np.array([[1.0, 1.0]])
        y1 = layer(Tensor(x1)).data - layer.bias.data
        y2 = layer(Tensor(x2)).data - layer.bias.data
        y_both = layer(Tensor(both)).data - layer.bias.data
        np.testing.assert_allclose(y_both, y1 + y2, atol=1e-10)

    def test_activation_applied(self):
        layer = Dense(3, 4, activation="relu", rng=RNG)
        out = layer(Tensor(RNG.normal(size=(10, 3))))
        assert np.all(out.data >= 0)

    def test_no_bias(self):
        layer = Dense(3, 2, use_bias=False, rng=RNG)
        assert len(layer.parameters()) == 1
        out = layer(Tensor(np.zeros((4, 3))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_wrong_input_dim_raises(self):
        layer = Dense(3, 2, rng=RNG)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((4, 5))))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Dense(0, 2)

    def test_gradients_flow_to_weights(self):
        layer = Dense(3, 2, rng=RNG)
        loss = (layer(Tensor(RNG.normal(size=(5, 3)))) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert layer.weight.grad.shape == (3, 2)

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            get_activation("not-an-activation")

    def test_callable_activation_passthrough(self):
        layer = Dense(2, 2, activation=lambda x: x * 0.0, rng=RNG)
        out = layer(Tensor(np.ones((1, 2))))
        np.testing.assert_allclose(out.data, 0.0)


class TestSequentialAndMLP:
    def test_sequential_composition(self):
        model = Sequential([Dense(4, 8, activation="relu", rng=RNG), Dense(8, 1, rng=RNG)])
        out = model(Tensor(RNG.normal(size=(3, 4))))
        assert out.shape == (3, 1)
        assert len(model) == 2
        assert isinstance(model[0], Dense)

    def test_mlp_shapes_and_params(self):
        mlp = MLP(6, [16, 8], 2, rng=RNG)
        out = mlp(Tensor(RNG.normal(size=(5, 6))))
        assert out.shape == (5, 2)
        # 3 dense layers, each with weight + bias.
        assert len(mlp.parameters()) == 6

    def test_mlp_trains_on_toy_regression(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] * 2.0 - x[:, 1:] * 0.5 + 0.3)
        mlp = MLP(2, [16], 1, rng=rng)
        optimizer = nn.Adam(mlp.parameters(), learning_rate=0.01)
        first_loss = None
        for _ in range(150):
            optimizer.zero_grad()
            loss = nn.mse_loss(mlp(Tensor(x)), Tensor(y))
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.1


class TestDropoutAndNorm:
    def test_dropout_eval_identity(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(RNG.normal(size=(10, 10)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_dropout_training_zeroes_entries(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((50, 50))))
        fraction_zero = float((out.data == 0).mean())
        assert 0.3 < fraction_zero < 0.7

    def test_dropout_scales_survivors(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((20, 20))))
        surviving = out.data[out.data != 0]
        np.testing.assert_allclose(surviving, 2.0)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_layernorm_statistics(self):
        layer = LayerNorm(8)
        out = layer(Tensor(RNG.normal(size=(4, 8)) * 5 + 3))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_learnable_shift(self):
        layer = LayerNorm(4)
        layer.bias.data = np.full(4, 7.0)
        out = layer(Tensor(RNG.normal(size=(2, 4))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 7.0, atol=1e-6)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=RNG)
        out = emb([1, 2, 3])
        assert out.shape == (3, 4)

    def test_out_of_range_raises(self):
        emb = Embedding(5, 2, rng=RNG)
        with pytest.raises(IndexError):
            emb([7])

    def test_gradient_reaches_rows(self):
        emb = Embedding(6, 3, rng=RNG)
        out = emb([2, 2, 4])
        (out ** 2).sum().backward()
        grad_rows = np.abs(emb.weight.grad).sum(axis=1)
        assert grad_rows[2] > 0 and grad_rows[4] > 0
        assert grad_rows[0] == 0


class TestGRUCell:
    def test_state_shape(self):
        cell = GRUCell(4, 8, rng=RNG)
        state = cell.initial_state(5)
        new_state = cell(Tensor(RNG.normal(size=(5, 4))), state)
        assert new_state.shape == (5, 8)

    def test_state_bounded_by_tanh_dynamics(self):
        cell = GRUCell(3, 6, rng=RNG)
        state = cell.initial_state(2)
        for _ in range(50):
            state = cell(Tensor(RNG.normal(size=(2, 3))), state)
        assert np.all(np.abs(state.data) <= 1.0 + 1e-9)

    def test_gradient_flows_through_time(self):
        cell = GRUCell(2, 4, rng=RNG)
        state = cell.initial_state(1)
        inputs = Tensor(RNG.normal(size=(1, 2)), requires_grad=True)
        for _ in range(3):
            state = cell(inputs, state)
        state.sum().backward()
        assert inputs.grad is not None
        assert np.abs(inputs.grad).sum() > 0
        assert cell.weight_input.grad is not None

    def test_zero_update_gate_keeps_candidate(self):
        # With all weights zero the update gate is 0.5 and candidate 0, so the
        # state decays towards zero.
        cell = GRUCell(2, 3, rng=RNG)
        for param in cell.parameters():
            param.data = np.zeros_like(param.data)
        state = Tensor(np.ones((1, 3)))
        new_state = cell(Tensor(np.zeros((1, 2))), state)
        np.testing.assert_allclose(new_state.data, 0.5)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            GRUCell(0, 4)


class TestLSTMCell:
    def test_packed_state_shapes(self):
        cell = LSTMCell(3, 5, rng=RNG)
        state = cell.initial_state(4)
        assert state.shape == (4, 10)
        new_state = cell(Tensor(RNG.normal(size=(4, 3))), state)
        assert new_state.shape == (4, 10)
        h, c = cell.split_state(new_state)
        assert h.shape == (4, 5) and c.shape == (4, 5)

    def test_hidden_output(self):
        cell = LSTMCell(2, 3, rng=RNG)
        state = cell(Tensor(RNG.normal(size=(1, 2))), cell.initial_state(1))
        np.testing.assert_allclose(cell.hidden_output(state).data, state.data[:, :3])

    def test_gradients(self):
        cell = LSTMCell(2, 3, rng=RNG)
        state = cell(Tensor(RNG.normal(size=(2, 2))), cell.initial_state(2))
        state.sum().backward()
        assert cell.weight_input.grad is not None


class TestSequenceScan:
    def test_output_shapes(self):
        cell = GRUCell(3, 4, rng=RNG)
        sequence = Tensor(RNG.normal(size=(2, 5, 3)))
        mask = np.ones((2, 5))
        outputs, final = run_rnn_over_sequence(cell, sequence, mask)
        assert outputs.shape == (2, 5, 4)
        assert final.shape == (2, 4)

    def test_mask_freezes_state(self):
        cell = GRUCell(2, 3, rng=RNG)
        sequence = Tensor(RNG.normal(size=(1, 4, 2)))
        # Only the first step is valid; the remaining are padding.
        mask = np.array([[1.0, 0.0, 0.0, 0.0]])
        outputs, final = run_rnn_over_sequence(cell, sequence, mask)
        np.testing.assert_allclose(final.data, outputs.data[:, 0, :])
        np.testing.assert_allclose(outputs.data[:, 3, :], outputs.data[:, 0, :])

    def test_different_lengths_per_sequence(self):
        cell = GRUCell(2, 3, rng=RNG)
        sequence = Tensor(RNG.normal(size=(2, 3, 2)))
        mask = np.array([[1.0, 1.0, 1.0], [1.0, 0.0, 0.0]])
        outputs, final = run_rnn_over_sequence(cell, sequence, mask)
        np.testing.assert_allclose(final.data[1], outputs.data[1, 0, :])

    def test_bad_mask_shape_raises(self):
        cell = GRUCell(2, 3, rng=RNG)
        with pytest.raises(ValueError):
            run_rnn_over_sequence(cell, Tensor(np.zeros((2, 3, 2))), np.ones((3, 2)))

    def test_bad_sequence_rank_raises(self):
        cell = GRUCell(2, 3, rng=RNG)
        with pytest.raises(ValueError):
            run_rnn_over_sequence(cell, Tensor(np.zeros((2, 3))), np.ones((2, 3)))


class TestFunctionalExtras:
    def test_softmax_sums_to_one(self):
        out = F.softmax(Tensor(RNG.normal(size=(4, 6))))
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-9)

    def test_one_hot(self):
        out = F.one_hot([0, 2], 3)
        np.testing.assert_allclose(out.data, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot([3], 3)

    def test_leaky_relu_negative_slope(self):
        out = F.leaky_relu(Tensor(np.array([-2.0, 2.0])), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 2.0])

    def test_elu_continuity(self):
        out = F.elu(Tensor(np.array([-1e-9, 1e-9])))
        np.testing.assert_allclose(out.data, [0.0, 0.0], atol=1e-8)

    def test_l2_norm(self):
        total = F.l2_norm([Tensor(np.array([3.0])), Tensor(np.array([4.0]))])
        assert total.item() == pytest.approx(25.0)

    def test_l2_norm_empty(self):
        assert F.l2_norm([]).item() == 0.0

    def test_gather_function(self):
        out = F.gather(Tensor(np.arange(6).reshape(3, 2)), np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[4, 5], [0, 1]])
