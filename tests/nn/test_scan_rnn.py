"""Gradient and equivalence checks for the streaming checkpointed RNN scan.

:func:`repro.nn.recurrent.scan_rnn` replaces the stacked masked scan with a
checkpoint-and-recompute formulation fused with the per-step aggregation.
Its hand-written joint backward is held against

* float64 central differences (via the reusable gradcheck harness) for both
  cell types and both supported precisions, covering input, initial-state
  and parameter gradients;
* the stacked reference formulation (``run_rnn_over_sequence`` +
  ``gather_segment_sum``) which the rest of the suite already verifies —
  forward values and every gradient must agree within rounding;
* structural cases: unused outputs (the loss touching only the aggregated
  messages, or only the final state), multiple gather sources with
  interleaved schedules, full-padding columns, and ``no_grad`` streaming.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.recurrent import (
    GRUCell,
    LSTMCell,
    ScanScatter,
    run_rnn_over_sequence,
    scan_rnn,
)
from repro.nn.tensor import Tensor, gather_segment_sum, make_multi_output, no_grad

from tests.nn.gradcheck import module_gradcheck

DTYPES = ["float64", "float32"]

NUM_PATHS = 3
NUM_STEPS = 4
NUM_ENTITIES = 5
NUM_SEGMENTS = 4
INPUT_DIM = 2

#: Ragged validity: lengths 4 / 2 / 3 — exercises masked and fully-valid steps.
MASK = np.array([[1, 1, 1, 1],
                 [1, 1, 0, 0],
                 [1, 1, 1, 0]], dtype=np.float64)
STEP_ROWS = np.array([[0, 2, 1, 4],
                      [3, 0, 0, 0],
                      [1, 4, 2, 0]], dtype=np.int64)
STEP_SOURCES = np.zeros(NUM_STEPS, dtype=np.int64)


def _scatter_spec() -> ScanScatter:
    """One emission per valid (path, step) entry into a fixed segment."""
    rng = np.random.default_rng(7)
    rows, segment_ids = [], []
    for step in range(NUM_STEPS):
        valid_paths = np.nonzero(MASK[:, step] > 0)[0].astype(np.int64)
        rows.append(valid_paths)
        segment_ids.append(rng.integers(0, NUM_SEGMENTS, size=valid_paths.size,
                                        dtype=np.int64))
    return ScanScatter(rows=rows, segment_ids=segment_ids, num_segments=NUM_SEGMENTS)


SCATTER = _scatter_spec()


def _stacked_reference(cell, source: Tensor, initial: Tensor):
    """The stacked formulation of the identical computation."""
    columns = [source.gather(STEP_ROWS[:, step]) for step in range(NUM_STEPS)]
    sequence = F.stack(columns, axis=1)
    outputs, final = run_rnn_over_sequence(cell, sequence, MASK, initial_state=initial)
    entry_rows = np.concatenate(SCATTER.rows)
    entry_steps = np.concatenate(
        [np.full(SCATTER.rows[s].size, s, dtype=np.int64) for s in range(NUM_STEPS)])
    entry_segments = np.concatenate(SCATTER.segment_ids)
    aggregated = gather_segment_sum(outputs, (entry_rows, entry_steps),
                                    entry_segments, NUM_SEGMENTS)
    return aggregated, final


def _make_cell_factory(cell_cls, hidden: int):
    return lambda: cell_cls(INPUT_DIM, hidden, rng=np.random.default_rng(3))


def _initial_state(cell_cls, hidden: int) -> np.ndarray:
    state_size = 2 * hidden if cell_cls is LSTMCell else hidden
    return np.random.default_rng(11).normal(size=(NUM_PATHS, state_size)) * 0.4


def _source_array() -> np.ndarray:
    return np.random.default_rng(5).normal(size=(NUM_ENTITIES, INPUT_DIM))


# --------------------------------------------------------------------- #
# Central-difference gradchecks (inputs, initial state and parameters)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("cell_cls,hidden", [(GRUCell, 3), (LSTMCell, 2)])
def test_scan_rnn_gradcheck_both_outputs(cell_cls, hidden, dtype):
    """Joint backward vs float64 central differences, loss over both outputs."""

    def forward(cell, source, initial):
        aggregated, final = scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS,
                                     MASK, initial_state=initial, scatter=SCATTER)
        return F.concat([aggregated.reshape(-1), final.reshape(-1)], axis=0)

    module_gradcheck(_make_cell_factory(cell_cls, hidden),
                     [_source_array(), _initial_state(cell_cls, hidden)],
                     forward=forward, dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("output_index", [0, 1])
def test_scan_rnn_gradcheck_single_output(output_index, dtype):
    """Gradients stay correct when the loss reaches only one scan output."""

    def forward(cell, source, initial):
        outputs = scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS, MASK,
                           initial_state=initial, scatter=SCATTER)
        return outputs[output_index]

    module_gradcheck(_make_cell_factory(GRUCell, 3),
                     [_source_array(), _initial_state(GRUCell, 3)],
                     forward=forward, dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_scan_rnn_gradcheck_no_scatter(dtype):
    """Without a scatter spec the scan reduces to a masked final-state scan."""

    def forward(cell, source, initial):
        aggregated, final = scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS,
                                     MASK, initial_state=initial)
        assert aggregated is None
        return final

    module_gradcheck(_make_cell_factory(GRUCell, 3),
                     [_source_array(), _initial_state(GRUCell, 3)],
                     forward=forward, dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_scan_rnn_gradcheck_two_sources_interleaved(dtype):
    """Alternating gather sources (the extended model's schedule shape)."""
    step_sources = np.array([0, 1, 0, 1], dtype=np.int64)
    second_source = np.random.default_rng(13).normal(size=(NUM_ENTITIES, INPUT_DIM))

    def forward(cell, source_a, source_b, initial):
        aggregated, final = scan_rnn(cell, (source_a, source_b), step_sources,
                                     STEP_ROWS, MASK, initial_state=initial,
                                     scatter=SCATTER)
        return F.concat([aggregated.reshape(-1), final.reshape(-1)], axis=0)

    module_gradcheck(_make_cell_factory(GRUCell, 3),
                     [_source_array(), second_source, _initial_state(GRUCell, 3)],
                     forward=forward, dtype=dtype)


# --------------------------------------------------------------------- #
# Equivalence with the stacked formulation
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("cell_cls,hidden", [(GRUCell, 3), (LSTMCell, 2)])
def test_scan_rnn_matches_stacked_forward_and_gradients(cell_cls, hidden):
    """Streaming forward values and all gradients match the stacked scan."""

    def run(streaming: bool):
        cell = _make_cell_factory(cell_cls, hidden)()
        source = Tensor(_source_array(), requires_grad=True)
        initial = Tensor(_initial_state(cell_cls, hidden), requires_grad=True)
        if streaming:
            aggregated, final = scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS,
                                         MASK, initial_state=initial, scatter=SCATTER)
        else:
            aggregated, final = _stacked_reference(cell, source, initial)
        weights = np.random.default_rng(17).normal(
            size=NUM_SEGMENTS * aggregated.shape[1] + initial.data.size)
        combined = F.concat([aggregated.reshape(-1), final.reshape(-1)], axis=0)
        (combined * weights).sum().backward()
        grads = {name: p.grad.copy() for name, p in cell.named_parameters()}
        return (aggregated.data.copy(), final.data.copy(),
                source.grad.copy(), initial.grad.copy(), grads)

    agg_s, final_s, source_s, init_s, params_s = run(streaming=True)
    agg_r, final_r, source_r, init_r, params_r = run(streaming=False)
    np.testing.assert_allclose(agg_s, agg_r, atol=1e-12, rtol=1e-10)
    np.testing.assert_allclose(final_s, final_r, atol=1e-12, rtol=1e-10)
    np.testing.assert_allclose(source_s, source_r, atol=1e-10, rtol=1e-8)
    np.testing.assert_allclose(init_s, init_r, atol=1e-10, rtol=1e-8)
    for name in params_r:
        np.testing.assert_allclose(params_s[name], params_r[name],
                                   atol=1e-10, rtol=1e-8, err_msg=name)


def test_scan_rnn_streams_under_no_grad():
    """Inference path: plain tensors out, no graph, values identical."""
    cell = _make_cell_factory(GRUCell, 3)()
    source = Tensor(_source_array(), requires_grad=True)
    initial = Tensor(_initial_state(GRUCell, 3))
    with no_grad():
        aggregated, final = scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS,
                                     MASK, initial_state=initial, scatter=SCATTER)
    assert not aggregated.requires_grad and not final.requires_grad
    assert aggregated._parents == () and final._parents == ()
    reference_agg, reference_final = scan_rnn(cell, (source,), STEP_SOURCES,
                                              STEP_ROWS, MASK, initial_state=initial,
                                              scatter=SCATTER)
    np.testing.assert_allclose(aggregated.data, reference_agg.data, atol=1e-12)
    np.testing.assert_allclose(final.data, reference_final.data, atol=1e-12)


def test_scan_rnn_validates_shapes():
    cell = _make_cell_factory(GRUCell, 3)()
    source = Tensor(_source_array())
    with pytest.raises(ValueError):
        scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS[:, :2], MASK)
    with pytest.raises(ValueError):
        scan_rnn(cell, (source,), STEP_SOURCES[:2], STEP_ROWS, MASK)
    with pytest.raises(ValueError):
        scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS, MASK[:, :2])
    with pytest.raises(ValueError):
        bad = ScanScatter(rows=SCATTER.rows[:-1], segment_ids=SCATTER.segment_ids[:-1],
                          num_segments=NUM_SEGMENTS)
        scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS, MASK, scatter=bad)


# --------------------------------------------------------------------- #
# The multi-output node primitive
# --------------------------------------------------------------------- #
class TestMakeMultiOutput:
    def test_joint_backward_sees_all_output_grads(self):
        parent = Tensor(np.arange(3.0), requires_grad=True)
        received = {}

        def backward(grads):
            received["grads"] = grads
            parent._accumulate(grads[0] + 2.0 * grads[1])

        first, second = make_multi_output(
            [parent.data * 2.0, parent.data * 3.0], [parent], backward)
        (first.sum() + (second * 2.0).sum()).backward()
        g_first, g_second = received["grads"]
        np.testing.assert_allclose(g_first, np.ones(3))
        np.testing.assert_allclose(g_second, 2.0 * np.ones(3))
        np.testing.assert_allclose(parent.grad, np.ones(3) + 2.0 * 2.0 * np.ones(3))

    def test_unused_output_grad_is_none(self):
        parent = Tensor(np.arange(3.0), requires_grad=True)
        received = {}

        def backward(grads):
            received["grads"] = grads
            parent._accumulate(grads[0])

        first, _second = make_multi_output(
            [parent.data * 2.0, parent.data * 3.0], [parent], backward)
        first.sum().backward()
        assert received["grads"][1] is None
        np.testing.assert_allclose(parent.grad, np.ones(3))

    def test_detached_when_no_parent_requires_grad(self):
        parent = Tensor(np.arange(3.0))
        outputs = make_multi_output([parent.data * 2.0], [parent],
                                    lambda grads: None)
        assert not outputs[0].requires_grad
