"""Gradient and equivalence checks for the compiled scan kernels.

:mod:`repro.nn.scan_kernels` replaces the interpreted per-step tape of
:func:`repro.nn.recurrent.scan_rnn` with precompiled index plans and
raw-NumPy step kernels whose backward is a hand-derived closed-form VJP.
That VJP is held against

* float64 central differences (the reusable gradcheck harness) for both
  cell types and both supported precisions, over plain and interleaved
  multi-source plans, with the loss reaching both outputs or only one;
* the interpreted streaming scan itself — forward values and every
  gradient must agree within rounding on the same spec;
* structural edge cases the model planner produces: a step whose mask
  column is entirely invalid, a single-path bucket, and ragged buckets
  where the trailing steps keep only one path alive.

Cells without a compiled kernel must fall back to the interpreted scan,
and a spec compiled for a different shape (or a different scatter
arrangement) must be rejected loudly rather than silently misindex.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.initializers import glorot_uniform
from repro.nn.module import Parameter
from repro.nn.recurrent import (
    GRUCell,
    LSTMCell,
    RNNCellBase,
    ScanScatter,
    scan_rnn,
)
from repro.nn.scan_kernels import compile_scan_spec, compile_step_kernel
from repro.nn.tensor import Tensor, no_grad

from tests.nn.gradcheck import module_gradcheck
from tests.support import float_tolerance

DTYPES = ["float64", "float32"]

NUM_PATHS = 3
NUM_STEPS = 4
NUM_ENTITIES = 5
NUM_SEGMENTS = 4
INPUT_DIM = 2

#: Ragged validity: lengths 4 / 2 / 3 — masked and fully-valid steps.
MASK = np.array([[1, 1, 1, 1],
                 [1, 1, 0, 0],
                 [1, 1, 1, 0]], dtype=np.float64)
STEP_ROWS = np.array([[0, 2, 1, 4],
                      [3, 0, 0, 0],
                      [1, 4, 2, 0]], dtype=np.int64)
STEP_SOURCES = np.zeros(NUM_STEPS, dtype=np.int64)

#: Same shape with step 1 entirely invalid — the planner's "no bucket
#: member reaches this hop" case, a forward/backward no-op.
MASK_WITH_GAP = np.array([[1, 0, 1, 1],
                          [1, 0, 0, 0],
                          [1, 0, 1, 0]], dtype=np.float64)


def _scatter_spec(mask: np.ndarray) -> ScanScatter:
    """One emission per valid (path, step) entry into a fixed segment."""
    rng = np.random.default_rng(7)
    rows, segment_ids = [], []
    for step in range(mask.shape[1]):
        valid_paths = np.nonzero(mask[:, step] > 0)[0].astype(np.int64)
        rows.append(valid_paths)
        segment_ids.append(rng.integers(0, NUM_SEGMENTS, size=valid_paths.size,
                                        dtype=np.int64))
    return ScanScatter(rows=rows, segment_ids=segment_ids,
                       num_segments=NUM_SEGMENTS)


SCATTER = _scatter_spec(MASK)
SCATTER_WITH_GAP = _scatter_spec(MASK_WITH_GAP)


def _make_cell_factory(cell_cls, hidden: int):
    return lambda: cell_cls(INPUT_DIM, hidden, rng=np.random.default_rng(3))


def _initial_state(cell_cls, hidden: int, num_paths: int = NUM_PATHS) -> np.ndarray:
    state_size = 2 * hidden if cell_cls is LSTMCell else hidden
    return np.random.default_rng(11).normal(size=(num_paths, state_size)) * 0.4


def _source_array(seed: int = 5) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(NUM_ENTITIES, INPUT_DIM))


# --------------------------------------------------------------------- #
# Central-difference gradchecks through the compiled executor
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("cell_cls,hidden", [(GRUCell, 3), (LSTMCell, 2)])
def test_compiled_scan_gradcheck_both_outputs(cell_cls, hidden, dtype):
    """Closed-form VJPs vs float64 central differences, both cell types."""
    spec = compile_scan_spec(STEP_SOURCES, STEP_ROWS, MASK, SCATTER)

    def forward(cell, source, initial):
        aggregated, final = scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS,
                                     MASK, initial_state=initial,
                                     scatter=SCATTER, compiled=spec)
        return F.concat([aggregated.reshape(-1), final.reshape(-1)], axis=0)

    module_gradcheck(_make_cell_factory(cell_cls, hidden),
                     [_source_array(), _initial_state(cell_cls, hidden)],
                     forward=forward, dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("output_index", [0, 1])
def test_compiled_scan_gradcheck_single_output(output_index, dtype):
    """Gradients stay correct when the loss reaches only one scan output."""
    spec = compile_scan_spec(STEP_SOURCES, STEP_ROWS, MASK, SCATTER)

    def forward(cell, source, initial):
        outputs = scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS, MASK,
                           initial_state=initial, scatter=SCATTER,
                           compiled=spec)
        return outputs[output_index]

    module_gradcheck(_make_cell_factory(GRUCell, 3),
                     [_source_array(), _initial_state(GRUCell, 3)],
                     forward=forward, dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_compiled_scan_gradcheck_no_scatter(dtype):
    """A compiled scan without emissions is a masked final-state scan."""
    spec = compile_scan_spec(STEP_SOURCES, STEP_ROWS, MASK)

    def forward(cell, source, initial):
        aggregated, final = scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS,
                                     MASK, initial_state=initial, compiled=spec)
        assert aggregated is None
        return final

    module_gradcheck(_make_cell_factory(GRUCell, 3),
                     [_source_array(), _initial_state(GRUCell, 3)],
                     forward=forward, dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("cell_cls,hidden", [(GRUCell, 3), (LSTMCell, 2)])
def test_compiled_scan_gradcheck_interleaved(cell_cls, hidden, dtype):
    """Alternating gather sources (the extended model's schedule shape)."""
    step_sources = np.array([0, 1, 0, 1], dtype=np.int64)
    spec = compile_scan_spec(step_sources, STEP_ROWS, MASK, SCATTER)
    second_source = _source_array(seed=13)

    def forward(cell, source_a, source_b, initial):
        aggregated, final = scan_rnn(cell, (source_a, source_b), step_sources,
                                     STEP_ROWS, MASK, initial_state=initial,
                                     scatter=SCATTER, compiled=spec)
        return F.concat([aggregated.reshape(-1), final.reshape(-1)], axis=0)

    module_gradcheck(_make_cell_factory(cell_cls, hidden),
                     [_source_array(), second_source,
                      _initial_state(cell_cls, hidden)],
                     forward=forward, dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_compiled_scan_gradcheck_all_invalid_step(dtype):
    """A fully-invalid step must be a no-op in both passes."""
    spec = compile_scan_spec(STEP_SOURCES, STEP_ROWS, MASK_WITH_GAP,
                             SCATTER_WITH_GAP)
    assert spec.steps[1].valid_count == 0

    def forward(cell, source, initial):
        aggregated, final = scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS,
                                     MASK_WITH_GAP, initial_state=initial,
                                     scatter=SCATTER_WITH_GAP, compiled=spec)
        return F.concat([aggregated.reshape(-1), final.reshape(-1)], axis=0)

    module_gradcheck(_make_cell_factory(GRUCell, 3),
                     [_source_array(), _initial_state(GRUCell, 3)],
                     forward=forward, dtype=dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_compiled_scan_gradcheck_single_path_bucket(dtype):
    """A bucket holding a single path (the planner's smallest bucket)."""
    step_rows = STEP_ROWS[:1]
    mask = MASK[:1]
    scatter = _scatter_spec(mask)
    spec = compile_scan_spec(STEP_SOURCES, step_rows, mask, scatter)

    def forward(cell, source, initial):
        aggregated, final = scan_rnn(cell, (source,), STEP_SOURCES, step_rows,
                                     mask, initial_state=initial,
                                     scatter=scatter, compiled=spec)
        return F.concat([aggregated.reshape(-1), final.reshape(-1)], axis=0)

    module_gradcheck(_make_cell_factory(GRUCell, 3),
                     [_source_array(), _initial_state(GRUCell, 3, num_paths=1)],
                     forward=forward, dtype=dtype)


# --------------------------------------------------------------------- #
# Equivalence with the interpreted streaming scan
# --------------------------------------------------------------------- #
def _run_both_modes(cell_cls, hidden, step_sources, step_rows, mask, scatter):
    """Run the identical scan compiled and interpreted; return outputs+grads."""
    spec = compile_scan_spec(step_sources, step_rows, mask, scatter)

    def run(compiled):
        cell = _make_cell_factory(cell_cls, hidden)()
        source = Tensor(_source_array(), requires_grad=True)
        initial = Tensor(_initial_state(cell_cls, hidden, step_rows.shape[0]),
                         requires_grad=True)
        aggregated, final = scan_rnn(cell, (source,), step_sources, step_rows,
                                     mask, initial_state=initial,
                                     scatter=scatter, compiled=compiled)
        weights = np.random.default_rng(17).normal(
            size=NUM_SEGMENTS * final.shape[1] + initial.data.size)
        combined = F.concat([aggregated.reshape(-1), final.reshape(-1)], axis=0)
        (combined * weights).sum().backward()
        grads = {name: p.grad.copy() for name, p in cell.named_parameters()}
        return (aggregated.data.copy(), final.data.copy(),
                source.grad.copy(), initial.grad.copy(), grads)

    return run(spec), run(None)


@pytest.mark.parametrize("mask,scatter", [
    (MASK, SCATTER),
    (MASK_WITH_GAP, SCATTER_WITH_GAP),
], ids=["ragged", "all-invalid-step"])
@pytest.mark.parametrize("cell_cls,hidden", [(GRUCell, 3), (LSTMCell, 2)])
def test_compiled_matches_interpreted(cell_cls, hidden, mask, scatter):
    """Compiled forward values and all gradients match the interpreted scan."""
    compiled, interpreted = _run_both_modes(cell_cls, hidden, STEP_SOURCES,
                                            STEP_ROWS, mask, scatter)
    agg_c, final_c, source_c, init_c, params_c = compiled
    agg_i, final_i, source_i, init_i, params_i = interpreted
    forward_tol = float_tolerance(1e-12, 1e-6)
    grad_tol = float_tolerance(1e-10, 1e-5)
    np.testing.assert_allclose(agg_c, agg_i, atol=forward_tol, rtol=forward_tol)
    np.testing.assert_allclose(final_c, final_i, atol=forward_tol, rtol=forward_tol)
    np.testing.assert_allclose(source_c, source_i, atol=grad_tol, rtol=grad_tol)
    np.testing.assert_allclose(init_c, init_i, atol=grad_tol, rtol=grad_tol)
    for name in params_i:
        np.testing.assert_allclose(params_c[name], params_i[name],
                                   atol=grad_tol, rtol=grad_tol, err_msg=name)


def test_compiled_matches_interpreted_ragged_final_bucket():
    """Trailing steps that keep only one path alive (ragged final bucket)."""
    mask = np.array([[1, 1, 1, 1],
                     [1, 0, 0, 0],
                     [1, 1, 0, 0]], dtype=np.float64)
    scatter = _scatter_spec(mask)
    compiled, interpreted = _run_both_modes(GRUCell, 3, STEP_SOURCES,
                                            STEP_ROWS, mask, scatter)
    tol = float_tolerance(1e-10, 1e-5)
    for computed, reference in zip(compiled, interpreted):
        if isinstance(computed, dict):
            for name in reference:
                np.testing.assert_allclose(computed[name], reference[name],
                                           atol=tol, rtol=tol, err_msg=name)
        else:
            np.testing.assert_allclose(computed, reference, atol=tol, rtol=tol)


def test_compiled_scan_streams_under_no_grad():
    """Inference path: plain tensors out, no graph, values identical."""
    spec = compile_scan_spec(STEP_SOURCES, STEP_ROWS, MASK, SCATTER)
    cell = _make_cell_factory(GRUCell, 3)()
    source = Tensor(_source_array(), requires_grad=True)
    initial = Tensor(_initial_state(GRUCell, 3))
    initial_copy = initial.data.copy()
    with no_grad():
        aggregated, final = scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS,
                                     MASK, initial_state=initial,
                                     scatter=SCATTER, compiled=spec)
    assert not aggregated.requires_grad and not final.requires_grad
    assert aggregated._parents == () and final._parents == ()
    # The double-buffered stepping must never recycle the caller's state.
    np.testing.assert_array_equal(initial.data, initial_copy)
    reference_agg, reference_final = scan_rnn(
        cell, (source,), STEP_SOURCES, STEP_ROWS, MASK, initial_state=initial,
        scatter=SCATTER, compiled=spec)
    np.testing.assert_allclose(aggregated.data, reference_agg.data, atol=1e-12)
    np.testing.assert_allclose(final.data, reference_final.data, atol=1e-12)


# --------------------------------------------------------------------- #
# Fallback and validation
# --------------------------------------------------------------------- #
class _TanhCell(RNNCellBase):
    """A cell with no compiled kernel — must fall back to the tape."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator = None) -> None:
        super().__init__(input_size, hidden_size)
        generator = rng if rng is not None else np.random.default_rng()
        self.weight = Parameter(
            glorot_uniform((input_size, hidden_size), rng=generator),
            name="weight")

    def forward(self, inputs, state):
        return (inputs.matmul(self.weight) + state).tanh()


def test_unknown_cell_has_no_kernel_and_falls_back():
    cell = _TanhCell(INPUT_DIM, 3, rng=np.random.default_rng(3))
    assert compile_step_kernel(cell) is None
    spec = compile_scan_spec(STEP_SOURCES, STEP_ROWS, MASK, SCATTER)
    source = Tensor(_source_array(), requires_grad=True)
    initial = Tensor(np.zeros((NUM_PATHS, 3)))
    compiled_agg, compiled_final = scan_rnn(
        cell, (source,), STEP_SOURCES, STEP_ROWS, MASK, initial_state=initial,
        scatter=SCATTER, compiled=spec)
    plain_agg, plain_final = scan_rnn(
        cell, (source,), STEP_SOURCES, STEP_ROWS, MASK, initial_state=initial,
        scatter=SCATTER)
    np.testing.assert_array_equal(compiled_agg.data, plain_agg.data)
    np.testing.assert_array_equal(compiled_final.data, plain_final.data)
    # The fallback is a real tape: gradients flow.
    compiled_final.sum().backward()
    assert source.grad is not None


def test_kernel_not_compiled_for_subclasses():
    """Subclasses may override forward(), so only the exact classes compile."""
    class TweakedGRU(GRUCell):
        pass

    assert compile_step_kernel(TweakedGRU(INPUT_DIM, 3)) is None


def test_spec_shape_mismatch_rejected():
    cell = _make_cell_factory(GRUCell, 3)()
    source = Tensor(_source_array())
    small_spec = compile_scan_spec(STEP_SOURCES[:2], STEP_ROWS[:, :2],
                                   MASK[:, :2], None)
    with pytest.raises(ValueError, match="compiled spec"):
        scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS, MASK,
                 compiled=small_spec)


def test_spec_scatter_mismatch_rejected():
    cell = _make_cell_factory(GRUCell, 3)()
    source = Tensor(_source_array())
    spec_with_scatter = compile_scan_spec(STEP_SOURCES, STEP_ROWS, MASK, SCATTER)
    with pytest.raises(ValueError, match="disagree"):
        scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS, MASK,
                 compiled=spec_with_scatter)
    spec_without = compile_scan_spec(STEP_SOURCES, STEP_ROWS, MASK, None)
    with pytest.raises(ValueError, match="disagree"):
        scan_rnn(cell, (source,), STEP_SOURCES, STEP_ROWS, MASK,
                 scatter=SCATTER, compiled=spec_without)


def test_compile_scan_spec_validates_shapes():
    with pytest.raises(ValueError):
        compile_scan_spec(STEP_SOURCES, STEP_ROWS.ravel(), MASK)
    with pytest.raises(ValueError):
        compile_scan_spec(STEP_SOURCES, STEP_ROWS, MASK[:, :2])
