"""Reusable finite-difference gradient-checking harness.

The autograd substrate hand-writes every backward pass, so each op must be
held against a numerical reference — in *both* supported precisions now that
the stack is dtype-configurable.  The harness implements the standard
recipe:

* the **numerical** gradient is a central difference evaluated entirely in
  float64 (the function under test follows the dtype of its inputs because
  :func:`repro.nn.tensor._as_array` preserves float array dtypes), so the
  reference is never polluted by float32 rounding;
* the **analytic** gradient runs the same function on tensors cast to the
  requested dtype and back-propagates a fixed random cotangent (a plain
  ``.sum()`` would let sign errors across elements cancel);
* tolerances are per-dtype: float64 checks are tight, float32 checks are
  loose enough for accumulated single-precision rounding yet still orders
  of magnitude below any formula error.

``gradcheck`` covers free functions and tensor methods;
``module_gradcheck`` covers :class:`~repro.nn.module.Module` subclasses
(recurrent cells, layers) by numerically differentiating a float64 twin of
the module with identical weights and comparing input *and* parameter
gradients.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.nn.module import Module
from repro.nn.tensor import Tensor, default_dtype, no_grad, resolve_dtype

__all__ = ["TOLERANCES", "numerical_gradient", "gradcheck", "module_gradcheck"]

#: Per-dtype defaults: finite-difference step and comparison tolerances.
TOLERANCES: Dict[str, Dict[str, float]] = {
    "float64": {"eps": 1e-6, "atol": 1e-6, "rtol": 1e-5},
    # The analytic side accumulates float32 rounding (~1e-7 relative per op);
    # formula errors show up at relative errors of order 1.
    "float32": {"eps": 1e-6, "atol": 2e-3, "rtol": 2e-3},
}


def _settings(dtype, eps, atol, rtol):
    resolved = resolve_dtype(dtype)
    defaults = TOLERANCES[resolved.name]
    return (resolved,
            defaults["eps"] if eps is None else eps,
            defaults["atol"] if atol is None else atol,
            defaults["rtol"] if rtol is None else rtol)


def _cotangent(shape, seed: int = 1234) -> np.ndarray:
    """A fixed random projection so per-element errors cannot cancel."""
    return np.random.default_rng(seed).normal(size=shape)


def numerical_gradient(fn: Callable[..., float], arrays: Sequence[np.ndarray],
                       index: int, eps: float) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*arrays)`` w.r.t. one input."""
    base = [np.array(a, dtype=np.float64) for a in arrays]
    grad = np.zeros_like(base[index])
    flat_input = base[index].ravel()
    flat_grad = grad.ravel()
    for position in range(flat_input.size):
        original = flat_input[position]
        flat_input[position] = original + eps
        plus = fn(*base)
        flat_input[position] = original - eps
        minus = fn(*base)
        flat_input[position] = original
        flat_grad[position] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn: Callable[..., Tensor], arrays: Sequence[np.ndarray],
              dtype="float64", eps: float = None, atol: float = None,
              rtol: float = None, check_dtype: bool = True) -> None:
    """Check analytic vs numerical gradients of ``fn`` at the given dtype.

    ``fn`` receives one :class:`Tensor` per input array and returns a tensor
    of any shape; it must route every input through differentiable ops.
    Raises ``AssertionError`` on mismatch.  With ``check_dtype`` the output
    must carry the requested dtype — this guards fused float32 paths against
    silently upcasting to float64.
    """
    resolved, eps, atol, rtol = _settings(dtype, eps, atol, rtol)
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]

    inputs = [Tensor(a.astype(resolved), requires_grad=True) for a in arrays]
    output = fn(*inputs)
    if check_dtype and output.dtype != resolved:
        raise AssertionError(
            f"output dtype {output.dtype} does not match requested {resolved}")
    weights = _cotangent(output.shape)
    (output * weights.astype(resolved)).sum().backward()

    def scalar_fn(*values: np.ndarray) -> float:
        with no_grad():
            result = fn(*(Tensor(v) for v in values))
        return float((result.data * weights).sum())

    for position, tensor_input in enumerate(inputs):
        assert tensor_input.grad is not None, f"no gradient reached input {position}"
        if check_dtype and tensor_input.grad.dtype != resolved:
            raise AssertionError(
                f"gradient dtype {tensor_input.grad.dtype} for input {position} "
                f"does not match requested {resolved}")
        expected = numerical_gradient(scalar_fn, arrays, position, eps)
        np.testing.assert_allclose(
            tensor_input.grad.astype(np.float64), expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for input {position} at dtype {resolved}")


def module_gradcheck(factory: Callable[[], Module],
                     arrays: Sequence[np.ndarray],
                     forward: Callable[..., Tensor] = None,
                     dtype="float64", eps: float = None, atol: float = None,
                     rtol: float = None) -> None:
    """Gradient-check a module's inputs *and* parameters at the given dtype.

    ``factory`` must build an identically-initialised module every call
    (fix its rng seed); one instance is built at ``dtype`` for the analytic
    pass and one at float64 for the numerical reference, so the float32
    check compares single-precision backward against a double-precision
    finite difference.  ``forward`` defaults to ``module(*inputs)``.
    """
    resolved, eps, atol, rtol = _settings(dtype, eps, atol, rtol)
    if forward is None:
        forward = lambda module, *inputs: module(*inputs)  # noqa: E731
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]

    with default_dtype(resolved):
        module = factory()
    with default_dtype(np.float64):
        reference = factory()

    inputs = [Tensor(a.astype(resolved), requires_grad=True) for a in arrays]
    module.zero_grad()
    output = forward(module, *inputs)
    if output.dtype != resolved:
        raise AssertionError(
            f"module output dtype {output.dtype} does not match requested {resolved}")
    weights = _cotangent(output.shape)
    (output * weights.astype(resolved)).sum().backward()

    parameters = list(module.named_parameters())
    reference_parameters = dict(reference.named_parameters())

    def scalar_fn(*values: np.ndarray) -> float:
        with no_grad():
            result = forward(reference, *(Tensor(v) for v in values))
        return float((result.data * weights).sum())

    # Input gradients.
    for position, tensor_input in enumerate(inputs):
        assert tensor_input.grad is not None, f"no gradient reached input {position}"
        expected = numerical_gradient(scalar_fn, arrays, position, eps)
        np.testing.assert_allclose(
            tensor_input.grad.astype(np.float64), expected, atol=atol, rtol=rtol,
            err_msg=f"input {position} gradient mismatch at dtype {resolved}")

    # Parameter gradients: perturb the float64 twin's weights in place
    # (``.flat`` assignment works for any memory layout, unlike a ravel view).
    for name, parameter in parameters:
        assert parameter.grad is not None, f"no gradient reached parameter {name}"
        twin = reference_parameters[name]
        grad = np.zeros_like(twin.data)
        for position in range(twin.data.size):
            original = twin.data.flat[position]
            twin.data.flat[position] = original + eps
            plus = scalar_fn(*arrays)
            twin.data.flat[position] = original - eps
            minus = scalar_fn(*arrays)
            twin.data.flat[position] = original
            grad.flat[position] = (plus - minus) / (2.0 * eps)
        np.testing.assert_allclose(
            parameter.grad.astype(np.float64), grad, atol=atol, rtol=rtol,
            err_msg=f"parameter {name} gradient mismatch at dtype {resolved}")
