"""Tests for flat parameter/gradient vectors and the gradient worker pool."""

import numpy as np
import pytest

from repro.nn.layers import MLP
from repro.nn.losses import mse_loss
from repro.nn.parallel import (
    GradientWorkerPool,
    SerialGradientExecutor,
    make_gradient_executor,
    path_weighted_average,
)
from repro.nn.tensor import Tensor


def _make_model(seed: int = 7) -> MLP:
    return MLP(3, [8, 4], 1, rng=np.random.default_rng(seed))


# ---------------------------------------------------------------------- #
# Flat vector pack / unpack
# ---------------------------------------------------------------------- #
class TestParameterVectors:
    def test_round_trip_is_exact(self):
        model = _make_model()
        vector = model.parameters_vector()
        assert vector.ndim == 1
        assert vector.size == model.num_parameters()
        other = _make_model(seed=99)
        assert not np.array_equal(other.parameters_vector(), vector)
        other.load_parameters_vector(vector)
        assert np.array_equal(other.parameters_vector(), vector)
        for p_a, p_b in zip(model.parameters(), other.parameters()):
            assert np.array_equal(p_a.data, p_b.data)
            assert p_a.data.dtype == p_b.data.dtype

    def test_gradient_round_trip_and_missing_grads_are_zeros(self):
        model = _make_model()
        x = Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        loss = mse_loss(model(x), Tensor(np.zeros((5, 1))))
        loss.backward()
        grads = model.gradients_vector()
        assert grads.shape == model.parameters_vector().shape
        assert np.abs(grads).max() > 0
        fresh = _make_model()
        fresh.load_gradients_vector(grads)
        assert np.array_equal(fresh.gradients_vector(), grads)
        fresh.zero_grad()
        for p in fresh.parameters():
            p.grad = None
        assert np.array_equal(fresh.gradients_vector(), np.zeros_like(grads))

    def test_wrong_size_raises(self):
        model = _make_model()
        with pytest.raises(ValueError, match="flat vector"):
            model.load_parameters_vector(np.zeros(3))
        with pytest.raises(ValueError, match="flat vector"):
            model.load_gradients_vector(np.zeros((2, 2)))


# ---------------------------------------------------------------------- #
# Path-weighted averaging
# ---------------------------------------------------------------------- #
class TestPathWeightedAverage:
    def test_single_vector_returned_unchanged(self):
        vector = np.array([1.0, 2.0, 3.0])
        assert path_weighted_average([vector], [17]) is not None
        assert np.array_equal(path_weighted_average([vector], [17]), vector)

    def test_weighted_formula(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        averaged = path_weighted_average([a, b], [3, 1])
        assert np.allclose(averaged, [0.75, 0.25])

    def test_preserves_float32(self):
        a = np.ones(4, dtype=np.float32)
        b = np.zeros(4, dtype=np.float32)
        averaged = path_weighted_average([a, b], [1, 1])
        assert averaged.dtype == np.float32

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            path_weighted_average([], [])
        with pytest.raises(ValueError):
            path_weighted_average([np.ones(2)], [1, 2])


# ---------------------------------------------------------------------- #
# Execution engines
# ---------------------------------------------------------------------- #
def _toy_batches(seed: int = 3):
    """Tiny tensorised batches for engine tests."""
    from repro.datasets import DatasetConfig, generate_dataset
    from repro.datasets.batching import make_batches
    from repro.datasets.normalization import FeatureNormalizer
    from repro.topology import ring_topology

    samples = generate_dataset(ring_topology(4),
                               DatasetConfig(num_samples=4, seed=seed,
                                             small_queue_fraction=0.5))
    normalizer = FeatureNormalizer().fit(samples)
    items = [normalizer.tensorize(s) for s in samples]
    return make_batches(items, 2)


def _toy_routenet(seed: int = 5):
    from repro.models import ExtendedRouteNet, RouteNetConfig

    return ExtendedRouteNet(RouteNetConfig(
        link_state_dim=6, path_state_dim=6, node_state_dim=6,
        message_passing_iterations=2, seed=seed))


class TestExecutors:
    def test_process_pool_matches_serial_gradients(self):
        model = _toy_routenet()
        batches = _toy_batches()
        params = model.parameters_vector()
        with GradientWorkerPool(model, num_workers=2) as pool, \
                SerialGradientExecutor(model, num_workers=2) as serial:
            pool.set_batches(batches)
            serial.set_batches(batches)
            pooled = pool.run_group(params, [0, 1])
            direct = serial.run_group(params, [0, 1])
        for (grad_p, loss_p, paths_p), (grad_s, loss_s, paths_s) in zip(pooled, direct):
            assert np.array_equal(grad_p, grad_s)
            assert loss_p == loss_s
            assert paths_p == paths_s

    def test_more_batches_than_workers_round_robins(self):
        model = _toy_routenet()
        batches = _toy_batches()
        params = model.parameters_vector()
        with GradientWorkerPool(model, num_workers=2) as pool:
            pool.set_batches(batches)
            results = pool.run_group(params, [0, 1, 0])
        assert len(results) == 3
        # Same batch dispatched to different workers gives identical results.
        assert np.array_equal(results[0][0], results[2][0])

    def test_worker_error_propagates_with_traceback(self):
        model = _toy_routenet()
        batches = _toy_batches()
        with GradientWorkerPool(model, num_workers=1) as pool:
            pool.set_batches(batches)
            with pytest.raises(RuntimeError, match="IndexError"):
                pool.run_group(model.parameters_vector(), [42])
            # The worker survives a failed task and keeps serving.
            results = pool.run_group(model.parameters_vector(), [0])
            assert len(results) == 1

    def test_close_is_idempotent(self):
        pool = GradientWorkerPool(_toy_routenet(), num_workers=1)
        pool.close()
        pool.close()

    def test_ensure_batches_uploads_once_for_same_objects(self):
        executor = SerialGradientExecutor(_toy_routenet(), num_workers=2)
        batches = _toy_batches()
        uploads = []
        original = executor.set_batches

        def counting(batch_list):
            uploads.append(len(batch_list))
            original(batch_list)

        executor.set_batches = counting
        executor.ensure_batches(batches)
        executor.ensure_batches(batches)
        executor.ensure_batches(list(batches))  # same objects, new list
        assert uploads == [len(batches)]
        executor.ensure_batches(_toy_batches())  # fresh objects re-upload
        assert len(uploads) == 2

    def test_make_gradient_executor_backends(self):
        model = _toy_routenet()
        assert isinstance(make_gradient_executor(model, 2, backend="serial"),
                          SerialGradientExecutor)
        pool = make_gradient_executor(model, 1, backend="process")
        assert isinstance(pool, GradientWorkerPool)
        pool.close()
        with pytest.raises(ValueError, match="backend"):
            make_gradient_executor(model, 1, backend="threads")

    def test_num_workers_validated(self):
        with pytest.raises(ValueError):
            SerialGradientExecutor(_toy_routenet(), num_workers=0)
        with pytest.raises(ValueError):
            GradientWorkerPool(_toy_routenet(), num_workers=0)
