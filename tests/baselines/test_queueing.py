"""Tests for the queueing-theory baselines (M/M/1 and M/M/1/K network models)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    MM1KModel,
    MM1Model,
    mm1_waiting_time,
    mm1k_blocking_probability,
    mm1k_mean_queue_length,
)
from repro.routing import shortest_path_routing
from repro.topology import Topology, linear_topology, nsfnet_topology
from repro.traffic import TrafficMatrix, uniform_traffic


class TestSingleQueueFormulas:
    def test_mm1_known_value(self):
        # mu=10, lambda=5 -> sojourn = 1/(10-5) = 0.2
        assert mm1_waiting_time(5.0, 10.0) == pytest.approx(0.2)

    def test_mm1_overload_is_infinite(self):
        assert mm1_waiting_time(10.0, 10.0) == float("inf")
        assert mm1_waiting_time(12.0, 10.0) == float("inf")

    def test_mm1_validation(self):
        with pytest.raises(ValueError):
            mm1_waiting_time(-1.0, 1.0)
        with pytest.raises(ValueError):
            mm1_waiting_time(1.0, 0.0)

    def test_blocking_probability_bounds(self):
        p = mm1k_blocking_probability(5.0, 10.0, capacity=3)
        assert 0.0 < p < 1.0

    def test_blocking_probability_zero_arrivals(self):
        assert mm1k_blocking_probability(0.0, 10.0, 5) == 0.0

    def test_blocking_probability_rho_one(self):
        # At rho = 1 the M/M/1/K blocking probability is 1/(K+1).
        assert mm1k_blocking_probability(10.0, 10.0, 4) == pytest.approx(1 / 5)

    def test_blocking_increases_with_load(self):
        low = mm1k_blocking_probability(2.0, 10.0, 3)
        high = mm1k_blocking_probability(8.0, 10.0, 3)
        assert high > low

    def test_blocking_decreases_with_capacity(self):
        small = mm1k_blocking_probability(8.0, 10.0, 2)
        large = mm1k_blocking_probability(8.0, 10.0, 20)
        assert large < small

    def test_mean_queue_length_limits(self):
        assert mm1k_mean_queue_length(0.0, 10.0, 5) == 0.0
        assert mm1k_mean_queue_length(10.0, 10.0, 4) == pytest.approx(2.0)

    def test_mm1k_approaches_mm1_for_large_buffers(self):
        lam, mu = 6.0, 10.0
        mm1_length = lam / (mu - lam)
        mm1k_length = mm1k_mean_queue_length(lam, mu, capacity=200)
        assert mm1k_length == pytest.approx(mm1_length, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1k_blocking_probability(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            mm1k_mean_queue_length(1.0, 0.0, 2)

    @given(st.floats(0.05, 0.95), st.integers(1, 40))
    @settings(max_examples=50, deadline=None)
    def test_blocking_probability_is_probability(self, rho, capacity):
        p = mm1k_blocking_probability(rho * 10.0, 10.0, capacity)
        assert 0.0 <= p <= 1.0

    @given(st.floats(0.05, 0.95), st.integers(1, 40))
    @settings(max_examples=50, deadline=None)
    def test_mean_length_bounded_by_capacity(self, rho, capacity):
        length = mm1k_mean_queue_length(rho * 10.0, 10.0, capacity)
        assert 0.0 <= length <= capacity


def _two_node_scenario(capacity=1e6, queue_size=32, demand=0.5e6):
    topology = Topology("pair")
    topology.add_node(0, queue_size=queue_size)
    topology.add_node(1, queue_size=queue_size)
    topology.add_link(0, 1, capacity=capacity, propagation_delay=0.0, bidirectional=True)
    routing = shortest_path_routing(topology)
    traffic = TrafficMatrix.zeros(2)
    traffic.set_demand(0, 1, demand)
    return topology, routing, traffic


class TestNetworkModels:
    def test_mm1_single_link_matches_formula(self):
        topology, routing, traffic = _two_node_scenario()
        model = MM1Model(mean_packet_size_bits=8000.0)
        prediction = model.predict(topology, routing, traffic)
        mu = 1e6 / 8000.0
        lam = 0.5e6 / 8000.0
        assert prediction.delay(0, 1) == pytest.approx(1.0 / (mu - lam))
        # The reverse direction carries no traffic: pure service time.
        assert prediction.delay(1, 0) == pytest.approx(1.0 / mu)

    def test_mm1k_adds_loss_for_tiny_queue(self):
        topology, routing, traffic = _two_node_scenario(queue_size=1, demand=0.9e6)
        prediction = MM1KModel().predict(topology, routing, traffic)
        assert prediction.loss(0, 1) > 0.05
        # The MM1 model reports no loss at all.
        mm1_prediction = MM1Model().predict(topology, routing, traffic)
        assert mm1_prediction.loss(0, 1) == 0.0

    def test_mm1k_delay_smaller_with_tiny_queue(self):
        """Finite buffers bound queueing delay: K=1 must beat K=64 on delay."""
        _, routing, traffic = _two_node_scenario(demand=0.9e6)
        topology_small, _, _ = _two_node_scenario(queue_size=1, demand=0.9e6)
        topology_big, _, _ = _two_node_scenario(queue_size=64, demand=0.9e6)
        model = MM1KModel()
        small = model.predict(topology_small, routing, traffic).delay(0, 1)
        big = model.predict(topology_big, routing, traffic).delay(0, 1)
        assert small < big

    def test_mm1_ignores_queue_sizes(self):
        _, routing, traffic = _two_node_scenario(demand=0.7e6)
        topology_small, _, _ = _two_node_scenario(queue_size=1, demand=0.7e6)
        topology_big, _, _ = _two_node_scenario(queue_size=64, demand=0.7e6)
        model = MM1Model()
        assert (model.predict(topology_small, routing, traffic).delay(0, 1)
                == pytest.approx(model.predict(topology_big, routing, traffic).delay(0, 1)))

    def test_path_delay_sums_links(self):
        topology = linear_topology(3, capacity=1e6, propagation_delay=0.001)
        routing = shortest_path_routing(topology)
        traffic = TrafficMatrix.zeros(3)
        traffic.set_demand(0, 2, 0.3e6)
        prediction = MM1Model().predict(topology, routing, traffic)
        single_hop = prediction.delay(1, 2)
        two_hop = prediction.delay(0, 2)
        # Two identical hops plus two propagation delays.
        assert two_hop == pytest.approx(2 * single_hop, rel=1e-9)

    def test_utilizations_reported(self):
        topology, routing, traffic = _two_node_scenario(demand=0.4e6)
        prediction = MM1KModel().predict(topology, routing, traffic)
        link_index = topology.link_index(0, 1)
        assert prediction.link_utilizations[link_index] == pytest.approx(0.4, rel=1e-6)

    def test_thinning_reduces_downstream_load(self):
        """With a lossy first hop, the second hop must see less traffic."""
        topology = linear_topology(3, capacity=1e6)
        topology.set_queue_size(0, 1)      # first hop: tiny buffer, heavy loss
        topology.set_queue_size(1, 64)
        routing = shortest_path_routing(topology)
        traffic = TrafficMatrix.zeros(3)
        traffic.set_demand(0, 2, 0.95e6)
        prediction = MM1KModel(fixed_point_iterations=10).predict(topology, routing, traffic)
        first_link = topology.link_index(0, 1)
        second_link = topology.link_index(1, 2)
        assert (prediction.link_utilizations[second_link]
                < prediction.link_utilizations[first_link])

    def test_predict_delays_shape_and_order(self):
        topology = nsfnet_topology(capacity=10e6)
        routing = shortest_path_routing(topology)
        traffic = uniform_traffic(14, 1e4, 1e5, rng=np.random.default_rng(0))
        delays = MM1KModel().predict_delays(topology, routing, traffic)
        assert delays.shape == (routing.num_paths,)
        assert np.all(delays > 0)
        assert np.all(np.isfinite(delays))

    def test_mismatched_traffic_raises(self):
        topology, routing, _ = _two_node_scenario()
        with pytest.raises(ValueError):
            MM1Model().predict(topology, routing, TrafficMatrix.zeros(5))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MM1Model(mean_packet_size_bits=0)
        with pytest.raises(ValueError):
            MM1KModel(fixed_point_iterations=0)

    def test_mm1k_close_to_mm1_with_huge_buffers_light_load(self):
        topology, routing, traffic = _two_node_scenario(queue_size=5000, demand=0.3e6)
        mm1 = MM1Model().predict(topology, routing, traffic).delay(0, 1)
        mm1k = MM1KModel().predict(topology, routing, traffic).delay(0, 1)
        assert mm1k == pytest.approx(mm1, rel=1e-3)
