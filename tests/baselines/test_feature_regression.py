"""Tests for the hand-crafted-feature ridge-regression baseline."""

import numpy as np
import pytest

from repro.baselines import PathFeatureExtractor, RidgeRegressionBaseline
from repro.datasets import DatasetConfig, generate_dataset
from repro.topology import nsfnet_topology, ring_topology


def _dataset(num_samples=8, seed=0, num_nodes=6):
    config = DatasetConfig(num_samples=num_samples, seed=seed, small_queue_fraction=0.5,
                           utilization_range=(0.4, 0.85))
    return generate_dataset(ring_topology(num_nodes), config)


class TestPathFeatureExtractor:
    def test_shape_and_names(self):
        samples = _dataset(1)
        features = PathFeatureExtractor().extract(samples[0])
        assert features.shape == (samples[0].num_paths, len(PathFeatureExtractor.FEATURE_NAMES))
        assert np.all(np.isfinite(features))

    def test_path_length_feature(self):
        samples = _dataset(1)
        sample = samples[0]
        features = PathFeatureExtractor().extract(sample)
        lengths = np.array([len(sample.routing.link_path(*pair)) for pair in sample.pair_order])
        np.testing.assert_allclose(features[:, 0], lengths)

    def test_queue_size_features_reflect_topology(self):
        samples = _dataset(1, seed=3)
        sample = samples[0]
        features = PathFeatureExtractor().extract(sample)
        min_queue_column = list(PathFeatureExtractor.FEATURE_NAMES).index("min_queue_size")
        queue_sizes = sample.topology.queue_sizes()
        for row, pair in enumerate(sample.pair_order):
            nodes = sample.routing.path(*pair)[:-1]
            assert features[row, min_queue_column] == min(queue_sizes[n] for n in nodes)

    def test_invalid_packet_size(self):
        with pytest.raises(ValueError):
            PathFeatureExtractor(mean_packet_size_bits=0)


class TestRidgeRegressionBaseline:
    def test_fit_predict_shapes(self):
        samples = _dataset(6)
        model = RidgeRegressionBaseline().fit(samples[:5])
        predicted = model.predict(samples[5])
        assert predicted.shape == samples[5].delays.shape

    def test_reasonable_accuracy_in_distribution(self):
        samples = _dataset(10, seed=5)
        model = RidgeRegressionBaseline().fit(samples[:8])
        metrics = model.evaluate(samples[8:])
        # The analytic ground truth is fairly smooth in these features, so the
        # regression should land well under 50% mean relative error.
        assert metrics["mean_relative_error"] < 0.5
        assert metrics["num_paths"] == sum(s.num_paths for s in samples[8:])

    def test_generalizes_to_other_topology_poorly_or_well_but_runs(self):
        samples = _dataset(6, seed=7)
        model = RidgeRegressionBaseline().fit(samples)
        nsfnet_samples = generate_dataset(nsfnet_topology(),
                                          DatasetConfig(num_samples=1, seed=7))
        predicted = model.predict(nsfnet_samples[0])
        assert predicted.shape == nsfnet_samples[0].delays.shape
        assert np.all(np.isfinite(predicted))

    def test_unfitted_predict_raises(self):
        samples = _dataset(1)
        with pytest.raises(RuntimeError):
            RidgeRegressionBaseline().predict(samples[0])

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            RidgeRegressionBaseline().fit([])
        with pytest.raises(ValueError):
            RidgeRegressionBaseline().fit(_dataset(1)).evaluate([])

    def test_invalid_regularization(self):
        with pytest.raises(ValueError):
            RidgeRegressionBaseline(regularization=-1.0)

    def test_regularization_shrinks_weights(self):
        samples = _dataset(6, seed=9)
        light = RidgeRegressionBaseline(regularization=1e-6).fit(samples)
        heavy = RidgeRegressionBaseline(regularization=1e3).fit(samples)
        assert np.linalg.norm(heavy._weights[:-1]) < np.linalg.norm(light._weights[:-1])
