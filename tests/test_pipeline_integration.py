"""End-to-end integration tests of the experiment pipeline and the public API."""

import numpy as np
import pytest

import repro
from repro.pipeline import run_fig2_experiment
from repro.topology import ring_topology


class TestPublicAPI:
    def test_version_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_main_symbols_importable(self):
        assert repro.RouteNet is not None
        assert repro.ExtendedRouteNet is not None
        assert repro.nsfnet_topology().num_nodes == 14
        assert repro.geant2_topology().num_nodes == 24

    def test_subpackages_reachable(self):
        assert hasattr(repro.nn, "Tensor")
        assert hasattr(repro.simulator, "simulate_network")
        assert hasattr(repro.baselines, "MM1KModel")


class TestFig2Pipeline:
    def test_tiny_experiment_end_to_end(self):
        """A miniature Fig. 2 run: both models train, all four curves exist."""
        result = run_fig2_experiment(
            train_topology=ring_topology(6),
            generalization_topology=ring_topology(8),
            num_train_samples=6,
            num_eval_samples=3,
            epochs=2,
            state_dim=6,
            message_passing_iterations=2,
            seed=0,
        )
        assert set(result.cdfs) == {"extended-ring", "original-ring"} or len(result.cdfs) == 4
        # With two ring topologies of the same name the labels collapse; check counts instead.
        assert len(result.metrics) == len(result.cdfs)
        for cdf in result.cdfs.values():
            assert np.all(np.isfinite(cdf.errors))
        report = result.report()
        assert "Summary:" in report
        rows = result.summary_rows()
        assert all("mean_abs_error" in row for row in rows)
        assert result.dataset_sizes["train"] == 6
        assert set(result.training_seconds) == {"extended", "original"}

    def test_distinct_topology_labels(self):
        result = run_fig2_experiment(
            train_topology=ring_topology(5),
            generalization_topology=repro.nsfnet_topology(),
            num_train_samples=5,
            num_eval_samples=2,
            epochs=1,
            state_dim=6,
            message_passing_iterations=2,
            seed=1,
        )
        assert set(result.cdfs) == {
            "extended-ring", "extended-nsfnet", "original-ring", "original-nsfnet"}
        assert result.mean_error("extended-ring") >= 0.0
