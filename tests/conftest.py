"""Shared test configuration: precision selection for the whole suite.

Setting ``REPRO_DTYPE=float32`` (the second tier-1 CI job) switches the
process-wide default dtype before collection, so every model, trainer and
tensorisation that does not pin a precision explicitly runs in float32.
Tests that compare independently-computed float results use
:func:`tests.support.float_tolerance` so their tolerances track the active
precision; tests that construct tensors from explicit float64 arrays (e.g.
the finite-difference checks) are unaffected, because the tensor layer
preserves explicit float dtypes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.nn.tensor import get_default_dtype, set_default_dtype

_ENV_DTYPE = os.environ.get("REPRO_DTYPE")


def pytest_configure(config):
    if _ENV_DTYPE:
        set_default_dtype(_ENV_DTYPE)


@pytest.fixture(scope="session")
def active_dtype() -> np.dtype:
    """The suite-wide default floating dtype (float64 unless REPRO_DTYPE)."""
    return np.dtype(get_default_dtype())
