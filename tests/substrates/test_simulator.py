"""Tests for the discrete-event packet simulator.

Includes unit tests of the engine/queue/link/source components and
integration tests that validate end-to-end delays against queueing theory on
scenarios with known closed-form answers.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import shortest_path_routing
from repro.simulator import (
    DropTailQueue,
    Flow,
    Packet,
    PoissonSource,
    SimulationConfig,
    Simulator,
    simulate_network,
)
from repro.simulator.events import EventQueue
from repro.simulator.link import Link
from repro.simulator.traffic_sources import ConstantBitRateSource, OnOffSource
from repro.topology import Topology, linear_topology, nsfnet_topology
from repro.traffic import TrafficMatrix, uniform_traffic


class TestEventQueue:
    def test_chronological_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_ties_fifo(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append(1))
        queue.push(1.0, lambda: fired.append(2))
        queue.pop().callback()
        queue.pop().callback()
        assert fired == [1, 2]

    def test_cancel(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None
        assert len(queue) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(5.0, lambda: None)
        assert queue.peek_time() == 5.0


class TestSimulatorEngine:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]
        assert sim.events_processed == 2

    def test_run_until_exclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=4)
        assert sim.events_processed == 4

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(5)
        packets = [Packet(i, (0, 1), 8000, 0.0) for i in range(3)]
        for p in packets:
            assert queue.enqueue(p, now=0.0)
        assert queue.dequeue(1.0) is packets[0]
        assert queue.dequeue(2.0) is packets[1]

    def test_drop_when_full(self):
        queue = DropTailQueue(2)
        assert queue.enqueue(Packet(0, (0, 1), 1, 0.0), 0.0)
        assert queue.enqueue(Packet(1, (0, 1), 1, 0.0), 0.0)
        overflow = Packet(2, (0, 1), 1, 0.0)
        assert not queue.enqueue(overflow, 0.0)
        assert overflow.dropped
        assert queue.drops == 1
        assert queue.drop_ratio == pytest.approx(1 / 3)

    def test_capacity_one_behaviour(self):
        queue = DropTailQueue(1)
        assert queue.enqueue(Packet(0, (0, 1), 1, 0.0), 0.0)
        assert not queue.enqueue(Packet(1, (0, 1), 1, 0.0), 0.0)
        queue.dequeue(0.5)
        assert queue.enqueue(Packet(2, (0, 1), 1, 0.0), 1.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    def test_occupancy_statistics(self):
        queue = DropTailQueue(10)
        queue.enqueue(Packet(0, (0, 1), 1, 0.0), 0.0)
        queue.enqueue(Packet(1, (0, 1), 1, 0.0), 0.0)
        # Two packets waiting for the whole first second, then one.
        queue.dequeue(1.0)
        assert queue.average_occupancy(2.0) == pytest.approx((2 * 1.0 + 1 * 1.0) / 2.0)
        assert queue.max_occupancy == 2

    def test_dequeue_empty(self):
        assert DropTailQueue(2).dequeue(0.0) is None

    @given(st.integers(1, 8), st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_never_exceeds_capacity(self, capacity, arrivals):
        queue = DropTailQueue(capacity)
        for i in range(arrivals):
            queue.enqueue(Packet(i, (0, 1), 1, 0.0), float(i))
            assert len(queue) <= capacity


class TestLink:
    def _make_link(self, capacity=8000.0, prop=0.0, queue=4):
        sim = Simulator()
        delivered = []
        link = Link(sim, 0, 1, capacity, prop, queue, delivered.append)
        return sim, link, delivered

    def test_serialisation_delay(self):
        sim, link, delivered = self._make_link(capacity=8000.0)
        packet = Packet(0, (0, 1), size_bits=8000.0, created_at=0.0)
        link.send(packet)
        sim.run()
        assert sim.now == pytest.approx(1.0)
        assert delivered == [packet]

    def test_propagation_delay_added(self):
        sim, link, delivered = self._make_link(capacity=8000.0, prop=0.25)
        link.send(Packet(0, (0, 1), 8000.0, 0.0))
        sim.run()
        assert sim.now == pytest.approx(1.25)

    def test_back_to_back_transmissions_serialise(self):
        sim, link, delivered = self._make_link(capacity=8000.0)
        link.send(Packet(0, (0, 1), 8000.0, 0.0))
        link.send(Packet(1, (0, 1), 8000.0, 0.0))
        sim.run()
        assert len(delivered) == 2
        assert sim.now == pytest.approx(2.0)

    def test_queue_overflow_drops(self):
        sim, link, delivered = self._make_link(queue=1)
        assert link.send(Packet(0, (0, 1), 8000.0, 0.0))   # starts transmitting
        assert link.send(Packet(1, (0, 1), 8000.0, 0.0))   # waits in queue
        assert not link.send(Packet(2, (0, 1), 8000.0, 0.0))  # queue full -> drop
        sim.run()
        assert len(delivered) == 2

    def test_utilization(self):
        sim, link, _ = self._make_link(capacity=8000.0)
        link.send(Packet(0, (0, 1), 4000.0, 0.0))
        sim.run()
        assert link.utilization(1.0) == pytest.approx(0.5)

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 0, 1, 0.0, 0.0, 1, lambda p: None)
        with pytest.raises(ValueError):
            Link(sim, 0, 1, 1.0, -1.0, 1, lambda p: None)


class TestTrafficSources:
    def test_poisson_rate(self):
        sim = Simulator()
        packets = []
        source = PoissonSource(sim, (0, 1), rate_bps=80_000.0, sink=packets.append,
                               mean_packet_size_bits=8000.0,
                               rng=np.random.default_rng(0))
        source.start(stop_time=50.0)
        sim.run(until=50.0)
        # Expect about 10 packets/s * 50 s = 500 packets.
        assert 400 <= len(packets) <= 600

    def test_cbr_deterministic(self):
        sim = Simulator()
        packets = []
        source = ConstantBitRateSource(sim, (0, 1), rate_bps=8000.0, sink=packets.append,
                                       mean_packet_size_bits=8000.0,
                                       rng=np.random.default_rng(0))
        source.start(stop_time=5.5)
        sim.run(until=10.0)
        assert len(packets) == 5
        assert all(p.size_bits == 8000.0 for p in packets)

    def test_onoff_long_run_rate(self):
        sim = Simulator()
        packets = []
        source = OnOffSource(sim, (0, 1), rate_bps=80_000.0, sink=packets.append,
                             mean_packet_size_bits=8000.0,
                             rng=np.random.default_rng(1),
                             mean_on_time=0.5, mean_off_time=0.5)
        source.start(stop_time=100.0)
        sim.run(until=100.0)
        # 10 packets/s on average over 100 s; allow generous tolerance for burstiness.
        assert 600 <= len(packets) <= 1400

    def test_zero_rate_source_idle(self):
        sim = Simulator()
        packets = []
        source = PoissonSource(sim, (0, 1), rate_bps=0.0, sink=packets.append)
        source.start(stop_time=10.0)
        sim.run()
        assert packets == []

    def test_stop(self):
        sim = Simulator()
        packets = []
        source = PoissonSource(sim, (0, 1), 80_000.0, packets.append,
                               rng=np.random.default_rng(2))
        source.start()
        sim.run(max_events=20)
        source.stop()
        count = len(packets)
        sim.run(max_events=100)
        assert len(packets) <= count + 1

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PoissonSource(sim, (0, 1), -1.0, lambda p: None)
        with pytest.raises(ValueError):
            PoissonSource(sim, (0, 1), 1.0, lambda p: None, mean_packet_size_bits=0)
        with pytest.raises(ValueError):
            OnOffSource(sim, (0, 1), 1.0, lambda p: None, mean_on_time=0.0)


class TestFlowDataclass:
    def test_valid(self):
        flow = Flow(0, 1, 1e6)
        assert flow.pair == (0, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Flow(0, 0, 1.0)
        with pytest.raises(ValueError):
            Flow(0, 1, -1.0)
        with pytest.raises(ValueError):
            Flow(0, 1, 1.0, source_model="quantum")


def _two_node_topology(capacity=1e6, queue_size=64):
    topology = Topology("pair")
    topology.add_node(0, queue_size=queue_size)
    topology.add_node(1, queue_size=queue_size)
    topology.add_link(0, 1, capacity=capacity, propagation_delay=0.0, bidirectional=True)
    return topology


class TestNetworkSimulation:
    def test_single_flow_delivery(self):
        topology = _two_node_topology()
        routing = shortest_path_routing(topology)
        traffic = TrafficMatrix.zeros(2)
        traffic.set_demand(0, 1, 100e3)  # 10% utilisation
        result = simulate_network(topology, routing, traffic,
                                  SimulationConfig(duration=5.0, warmup=0.5, seed=1))
        stats = result.flow_stats[(0, 1)]
        assert stats.packets_delivered > 0
        assert stats.loss_ratio < 0.01
        assert stats.average_delay > 0

    def test_mm1_delay_matches_theory(self):
        """At 50% load an M/M/1 queue has sojourn time 1/(mu - lambda)."""
        capacity = 1e6
        packet_bits = 8000.0
        utilisation = 0.5
        topology = _two_node_topology(capacity=capacity, queue_size=10_000)
        routing = shortest_path_routing(topology)
        traffic = TrafficMatrix.zeros(2)
        traffic.set_demand(0, 1, utilisation * capacity)
        result = simulate_network(
            topology, routing, traffic,
            SimulationConfig(duration=60.0, warmup=5.0, seed=3,
                             mean_packet_size_bits=packet_bits))
        stats = result.flow_stats[(0, 1)]
        mu = capacity / packet_bits
        lam = utilisation * mu
        expected = 1.0 / (mu - lam)
        assert stats.average_delay == pytest.approx(expected, rel=0.15)

    def test_tiny_queue_increases_loss_and_reduces_delay(self):
        """A 1-packet buffer must drop traffic and bound queueing delay."""
        capacity = 1e6
        traffic = TrafficMatrix.zeros(2)
        traffic.set_demand(0, 1, 0.9 * capacity)
        config = SimulationConfig(duration=30.0, warmup=2.0, seed=5)

        big = _two_node_topology(capacity=capacity, queue_size=64)
        small = _two_node_topology(capacity=capacity, queue_size=1)
        result_big = simulate_network(big, shortest_path_routing(big), traffic, config)
        result_small = simulate_network(small, shortest_path_routing(small), traffic, config)

        stats_big = result_big.flow_stats[(0, 1)]
        stats_small = result_small.flow_stats[(0, 1)]
        assert stats_small.loss_ratio > stats_big.loss_ratio
        assert stats_small.average_delay < stats_big.average_delay

    def test_multihop_delay_accumulates(self):
        topology = linear_topology(4, capacity=1e6, propagation_delay=0.001)
        routing = shortest_path_routing(topology)
        traffic = TrafficMatrix.zeros(4)
        traffic.set_demand(0, 3, 50e3)
        traffic.set_demand(0, 1, 50e3)
        result = simulate_network(topology, routing, traffic,
                                  SimulationConfig(duration=10.0, warmup=1.0, seed=7))
        long_path = result.flow_stats[(0, 3)].average_delay
        short_path = result.flow_stats[(0, 1)].average_delay
        assert long_path > short_path * 2

    def test_link_utilization_reported(self):
        topology = _two_node_topology(capacity=1e6)
        routing = shortest_path_routing(topology)
        traffic = TrafficMatrix.zeros(2)
        traffic.set_demand(0, 1, 400e3)
        result = simulate_network(topology, routing, traffic,
                                  SimulationConfig(duration=20.0, warmup=2.0, seed=11))
        forward_link = topology.link_index(0, 1)
        assert result.link_stats[forward_link].utilization == pytest.approx(0.4, abs=0.08)
        reverse_link = topology.link_index(1, 0)
        assert result.link_stats[reverse_link].utilization == pytest.approx(0.0, abs=1e-6)

    def test_deterministic_given_seed(self):
        topology = nsfnet_topology(capacity=1e6)
        routing = shortest_path_routing(topology)
        traffic = uniform_traffic(14, 1e3, 2e4, rng=np.random.default_rng(0))
        config = SimulationConfig(duration=2.0, warmup=0.2, seed=42)
        r1 = simulate_network(topology, routing, traffic, config)
        r2 = simulate_network(topology, routing, traffic, config)
        d1 = r1.delays_vector(routing.pairs())
        d2 = r2.delays_vector(routing.pairs())
        np.testing.assert_allclose(d1, d2, equal_nan=True)

    def test_mismatched_traffic_size_raises(self):
        topology = _two_node_topology()
        routing = shortest_path_routing(topology)
        with pytest.raises(ValueError):
            simulate_network(topology, routing, TrafficMatrix.zeros(5))

    def test_traffic_without_route_raises(self):
        topology = _two_node_topology()
        routing = shortest_path_routing(topology, pairs=[(0, 1)])
        traffic = TrafficMatrix.zeros(2)
        traffic.set_demand(1, 0, 1e5)
        with pytest.raises(ValueError):
            simulate_network(topology, routing, traffic)

    def test_result_vectors_and_counters(self):
        topology = _two_node_topology()
        routing = shortest_path_routing(topology)
        traffic = TrafficMatrix.zeros(2)
        traffic.set_demand(0, 1, 2e5)
        result = simulate_network(topology, routing, traffic,
                                  SimulationConfig(duration=5.0, warmup=0.5, seed=2))
        delays = result.delays_vector([(0, 1), (1, 0)])
        assert delays[0] > 0
        assert math.isnan(delays[1])
        losses = result.loss_vector([(0, 1)])
        assert 0.0 <= losses[0] <= 1.0
        assert result.total_packets_generated >= result.total_packets_delivered
        assert 0.0 <= result.overall_loss_ratio <= 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration=0)
        with pytest.raises(ValueError):
            SimulationConfig(warmup=-1)
        with pytest.raises(ValueError):
            SimulationConfig(source_model="bogus")
        with pytest.raises(ValueError):
            SimulationConfig(mean_packet_size_bits=0)

    def test_onoff_source_model_runs(self):
        topology = _two_node_topology()
        routing = shortest_path_routing(topology)
        traffic = TrafficMatrix.zeros(2)
        traffic.set_demand(0, 1, 1e5)
        result = simulate_network(topology, routing, traffic,
                                  SimulationConfig(duration=5.0, warmup=0.5, seed=9,
                                                   source_model="onoff"))
        assert result.flow_stats[(0, 1)].packets_delivered > 0
