"""Tests for the strict-priority scheduling extension of the simulator.

The paper names "different forwarding behaviors" (scheduling) alongside
queue sizes as the device features future GNN models should capture; the
substrate therefore supports per-node scheduling disciplines and per-flow
traffic classes.  These tests check the queue mechanics and the end-to-end
effect: under congestion, high-priority flows keep low delays while
low-priority flows absorb the queueing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import shortest_path_routing
from repro.simulator import (
    Packet,
    PriorityDropTailQueue,
    SimulationConfig,
    simulate_network,
)
from repro.topology import Topology
from repro.topology.graph import NodeSpec
from repro.topology.io import topology_from_dict, topology_to_dict
from repro.traffic import TrafficMatrix


def _packet(packet_id, priority):
    return Packet(packet_id, (0, 1), 8000.0, 0.0, priority=priority)


class TestPriorityDropTailQueue:
    def test_high_priority_served_first(self):
        queue = PriorityDropTailQueue(10, num_classes=2)
        queue.enqueue(_packet(0, priority=1), 0.0)
        queue.enqueue(_packet(1, priority=0), 0.0)
        queue.enqueue(_packet(2, priority=1), 0.0)
        assert queue.dequeue(0.1).packet_id == 1
        assert queue.dequeue(0.2).packet_id == 0
        assert queue.dequeue(0.3).packet_id == 2

    def test_fifo_within_class(self):
        queue = PriorityDropTailQueue(10, num_classes=2)
        for i in range(3):
            queue.enqueue(_packet(i, priority=0), 0.0)
        assert [queue.dequeue(0.0).packet_id for _ in range(3)] == [0, 1, 2]

    def test_shared_buffer_drop_tail(self):
        queue = PriorityDropTailQueue(2, num_classes=2)
        assert queue.enqueue(_packet(0, 1), 0.0)
        assert queue.enqueue(_packet(1, 1), 0.0)
        # Buffer full: even a high-priority arrival is dropped (shared buffer).
        assert not queue.enqueue(_packet(2, 0), 0.0)
        assert queue.drops == 1

    def test_priority_clamped_to_classes(self):
        queue = PriorityDropTailQueue(5, num_classes=2)
        queue.enqueue(_packet(0, priority=7), 0.0)
        assert queue.class_occupancy(1) == 1

    def test_class_occupancy_bounds(self):
        queue = PriorityDropTailQueue(5, num_classes=2)
        with pytest.raises(ValueError):
            queue.class_occupancy(5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PriorityDropTailQueue(5, num_classes=0)

    def test_empty_dequeue(self):
        assert PriorityDropTailQueue(3).dequeue(0.0) is None

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_never_exceeds_capacity_property(self, priorities):
        queue = PriorityDropTailQueue(4, num_classes=2)
        for index, priority in enumerate(priorities):
            queue.enqueue(_packet(index, priority), float(index))
            assert len(queue) <= 4


class TestNodeSchedulingSpec:
    def test_default_is_fifo(self):
        assert NodeSpec().scheduling == "fifo"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(scheduling="wfq")

    def test_set_scheduling_preserves_queue_size(self):
        topology = Topology()
        topology.add_node(0, queue_size=7)
        topology.set_scheduling(0, "priority")
        assert topology.node_spec(0).scheduling == "priority"
        assert topology.node_spec(0).queue_size == 7
        assert topology.scheduling_policies() == {0: "priority"}

    def test_scheduling_survives_copy_and_io(self):
        topology = Topology()
        topology.add_node(0, queue_size=4, scheduling="priority")
        topology.add_node(1)
        topology.add_link(0, 1, bidirectional=True)
        assert topology.copy().node_spec(0).scheduling == "priority"
        rebuilt = topology_from_dict(topology_to_dict(topology))
        assert rebuilt.node_spec(0).scheduling == "priority"
        assert rebuilt.node_spec(1).scheduling == "fifo"

    def test_set_queue_size_preserves_scheduling(self):
        topology = Topology()
        topology.add_node(0, scheduling="priority")
        topology.set_queue_size(0, 3)
        assert topology.node_spec(0).scheduling == "priority"


def _shared_bottleneck(scheduling: str):
    """Two sources share one congested 1 Mbps link towards node 2."""
    topology = Topology("bottleneck")
    topology.add_node(0, queue_size=64, scheduling=scheduling)
    topology.add_node(1, queue_size=64)
    topology.add_node(2, queue_size=64)
    topology.add_link(0, 1, capacity=1e6, propagation_delay=0.0, bidirectional=True)
    topology.add_link(1, 2, capacity=10e6, propagation_delay=0.0, bidirectional=True)
    routing = shortest_path_routing(topology)
    traffic = TrafficMatrix.zeros(3)
    traffic.set_demand(0, 1, 0.45e6)
    traffic.set_demand(0, 2, 0.45e6)
    return topology, routing, traffic


class TestEndToEndPriorityEffect:
    def test_priority_flow_gets_lower_delay(self):
        topology, routing, traffic = _shared_bottleneck("priority")
        config = SimulationConfig(duration=20.0, warmup=2.0, seed=4,
                                  flow_priorities={(0, 2): 0, (0, 1): 1})
        result = simulate_network(topology, routing, traffic, config)
        high = result.flow_stats[(0, 2)].average_delay
        low = result.flow_stats[(0, 1)].average_delay
        assert high < low

    def test_fifo_treats_classes_equally(self):
        topology, routing, traffic = _shared_bottleneck("fifo")
        config = SimulationConfig(duration=20.0, warmup=2.0, seed=4,
                                  flow_priorities={(0, 2): 0, (0, 1): 1})
        result = simulate_network(topology, routing, traffic, config)
        high = result.flow_stats[(0, 2)].average_delay
        low = result.flow_stats[(0, 1)].average_delay
        # Same shared FIFO: both classes see similar queueing (within 25%).
        assert high == pytest.approx(low, rel=0.25)

    def test_invalid_priority_config(self):
        with pytest.raises(ValueError):
            SimulationConfig(flow_priorities={(0, 1): 5}, num_traffic_classes=2)
        with pytest.raises(ValueError):
            SimulationConfig(num_traffic_classes=0)
