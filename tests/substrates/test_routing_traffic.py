"""Tests for routing schemes, routing matrices and traffic-matrix generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import (
    RoutingScheme,
    k_shortest_paths,
    next_hop_tables,
    random_variation_routing,
    routing_matrix,
    shortest_path_routing,
    weighted_shortest_path_routing,
)
from repro.topology import geant2_topology, linear_topology, nsfnet_topology, ring_topology
from repro.traffic import (
    TrafficMatrix,
    bimodal_traffic,
    gravity_traffic,
    hotspot_traffic,
    scaled_to_utilization,
    uniform_traffic,
)


class TestRoutingScheme:
    def test_shortest_path_routing_covers_all_pairs(self):
        topology = nsfnet_topology()
        scheme = shortest_path_routing(topology)
        assert scheme.num_paths == 14 * 13

    def test_paths_are_valid(self):
        topology = ring_topology(6)
        scheme = shortest_path_routing(topology)
        for (source, destination), path in scheme.items():
            assert path[0] == source and path[-1] == destination
            for u, v in zip(path[:-1], path[1:]):
                assert topology.has_link(u, v)

    def test_deterministic(self):
        topology = geant2_topology()
        s1 = shortest_path_routing(topology)
        s2 = shortest_path_routing(topology)
        assert s1.node_paths() == s2.node_paths()

    def test_link_path_matches_node_path(self):
        topology = linear_topology(4)
        scheme = shortest_path_routing(topology)
        node_path = scheme.path(0, 3)
        link_path = scheme.link_path(0, 3)
        assert len(link_path) == len(node_path) - 1
        assert link_path == topology.path_links(node_path)

    def test_invalid_paths_rejected(self):
        topology = linear_topology(4)
        with pytest.raises(ValueError):
            RoutingScheme(topology, {(0, 3): [0, 2, 3]})      # missing link 0->2
        with pytest.raises(ValueError):
            RoutingScheme(topology, {(0, 3): [0, 1, 2]})      # wrong endpoint
        with pytest.raises(ValueError):
            RoutingScheme(topology, {(0, 3): [0]})            # too short
        with pytest.raises(ValueError):
            RoutingScheme(topology, {(0, 0): [0, 1, 0]})      # same endpoints
        with pytest.raises(ValueError):
            RoutingScheme(topology, {(0, 2): [0, 1, 0, 1, 2]})  # revisits nodes

    def test_missing_pair_raises(self):
        topology = linear_topology(3)
        scheme = RoutingScheme(topology, {(0, 2): [0, 1, 2]})
        with pytest.raises(KeyError):
            scheme.path(2, 0)
        assert scheme.has_path(0, 2)
        assert not scheme.has_path(2, 0)

    def test_next_hop(self):
        topology = linear_topology(4)
        scheme = shortest_path_routing(topology)
        assert scheme.next_hop(0, 3) == 1
        assert scheme.next_hop(1, 3) == 2
        assert scheme.next_hop(3, 0) == 2

    def test_average_path_length(self):
        topology = linear_topology(3)
        scheme = shortest_path_routing(topology)
        # Pairs: (0,1)=1, (0,2)=2, (1,0)=1, (1,2)=1, (2,0)=2, (2,1)=1 -> mean 8/6.
        assert scheme.average_path_length() == pytest.approx(8 / 6)

    def test_paths_through_link_and_node(self):
        topology = linear_topology(3)
        scheme = shortest_path_routing(topology)
        middle_pairs = scheme.paths_through_node(1)
        assert (0, 2) in middle_pairs and (2, 0) in middle_pairs
        link01 = topology.link_index(0, 1)
        assert (0, 1) in scheme.paths_through_link(link01)
        assert (2, 1) not in scheme.paths_through_link(link01)

    def test_serialisation_round_trip(self):
        topology = nsfnet_topology()
        scheme = shortest_path_routing(topology)
        rebuilt = RoutingScheme.from_dict(topology, scheme.to_dict())
        assert rebuilt.node_paths() == scheme.node_paths()

    def test_weighted_routing_prefers_capacity(self):
        topology = ring_topology(4)
        # Make one direction of the ring slow.
        scheme_hops = shortest_path_routing(topology)
        scheme_cap = weighted_shortest_path_routing(topology, weight="inverse_capacity")
        assert scheme_hops.num_paths == scheme_cap.num_paths

    def test_subset_of_pairs(self):
        topology = nsfnet_topology()
        scheme = shortest_path_routing(topology, pairs=[(0, 5), (3, 9)])
        assert scheme.pairs() == [(0, 5), (3, 9)]


class TestKShortestAndRandomRouting:
    def test_k_shortest_ordered(self):
        topology = ring_topology(6)
        paths = k_shortest_paths(topology, 0, 3, k=2)
        assert len(paths) == 2
        assert len(paths[0]) <= len(paths[1])

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            k_shortest_paths(ring_topology(4), 0, 1, k=0)

    def test_random_variation_reproducible(self):
        topology = geant2_topology()
        pairs = [(0, 7), (3, 20), (5, 23)]
        s1 = random_variation_routing(topology, k=3, rng=np.random.default_rng(5), pairs=pairs)
        s2 = random_variation_routing(topology, k=3, rng=np.random.default_rng(5), pairs=pairs)
        assert s1.node_paths() == s2.node_paths()

    def test_random_variation_valid(self):
        topology = nsfnet_topology()
        scheme = random_variation_routing(topology, k=2, rng=np.random.default_rng(0))
        assert scheme.num_paths == 14 * 13


class TestRoutingTables:
    def test_routing_matrix_shape_and_content(self):
        topology = linear_topology(3)
        scheme = shortest_path_routing(topology)
        matrix = routing_matrix(scheme)
        assert matrix.shape == (6, topology.num_links)
        row = scheme.pairs().index((0, 2))
        assert matrix[row].sum() == 2

    def test_routing_matrix_row_lengths(self):
        topology = nsfnet_topology()
        scheme = shortest_path_routing(topology)
        matrix = routing_matrix(scheme)
        lengths = [len(p) for p in scheme.link_paths()]
        np.testing.assert_array_equal(matrix.sum(axis=1), lengths)

    def test_next_hop_tables(self):
        topology = linear_topology(4)
        scheme = shortest_path_routing(topology)
        tables = next_hop_tables(scheme)
        assert tables[0][3] == 1
        assert tables[2][0] == 1

    def test_next_hop_conflict_detected(self):
        topology = ring_topology(4)
        # Two paths to node 2 through node 1 disagreeing on the next hop is
        # impossible in a ring of 4 with simple paths, so build it manually.
        paths = {
            (0, 2): [0, 1, 2],
            (1, 2): [1, 0, 3, 2],
        }
        scheme = RoutingScheme(topology, paths)
        with pytest.raises(ValueError):
            next_hop_tables(scheme)


class TestTrafficMatrix:
    def test_basic_accessors(self):
        tm = TrafficMatrix.zeros(4)
        tm.set_demand(0, 1, 100.0)
        assert tm.demand(0, 1) == 100.0
        assert tm.demand(1, 0) == 0.0
        assert tm.total_demand() == 100.0
        assert tm.nonzero_pairs() == [(0, 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficMatrix(np.ones((3, 2)))
        with pytest.raises(ValueError):
            TrafficMatrix(-np.ones((3, 3)))
        with pytest.raises(ValueError):
            TrafficMatrix(np.eye(3))
        with pytest.raises(ValueError):
            TrafficMatrix.zeros(1)

    def test_self_demand_forbidden(self):
        tm = TrafficMatrix.zeros(3)
        with pytest.raises(ValueError):
            tm.set_demand(1, 1, 5.0)
        assert tm.demand(2, 2) == 0.0

    def test_scale(self):
        tm = TrafficMatrix.zeros(3)
        tm.set_demand(0, 1, 10.0)
        scaled = tm.scale(2.5)
        assert scaled.demand(0, 1) == 25.0
        assert tm.demand(0, 1) == 10.0

    def test_as_vector_order(self):
        tm = TrafficMatrix.zeros(3)
        tm.set_demand(0, 1, 1.0)
        tm.set_demand(2, 0, 3.0)
        vec = tm.as_vector([(2, 0), (0, 1)])
        np.testing.assert_allclose(vec, [3.0, 1.0])

    def test_dict_round_trip(self):
        tm = uniform_traffic(5, 10, 20, rng=np.random.default_rng(0))
        rebuilt = TrafficMatrix.from_dict(tm.to_dict())
        assert rebuilt == tm

    def test_equality(self):
        a = TrafficMatrix.zeros(3)
        b = TrafficMatrix.zeros(3)
        assert a == b
        b.set_demand(0, 1, 1.0)
        assert a != b


class TestTrafficGenerators:
    def test_uniform_bounds(self):
        tm = uniform_traffic(6, 100, 200, rng=np.random.default_rng(0))
        values = [d for _, _, d in tm.pairs()]
        assert all(100 <= v <= 200 for v in values)
        assert len(values) == 30

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_traffic(1, 0, 1)
        with pytest.raises(ValueError):
            uniform_traffic(3, 5, 1)

    def test_gravity_total(self):
        tm = gravity_traffic(8, total_traffic=1e6, rng=np.random.default_rng(1))
        assert tm.total_demand() == pytest.approx(1e6)

    def test_gravity_validation(self):
        with pytest.raises(ValueError):
            gravity_traffic(5, 0)

    def test_bimodal_levels(self):
        tm = bimodal_traffic(10, low=1.0, high=100.0, high_fraction=0.3,
                             rng=np.random.default_rng(2))
        values = {d for _, _, d in tm.pairs()}
        assert values <= {1.0, 100.0}
        assert 100.0 in values

    def test_hotspot(self):
        tm = hotspot_traffic(6, background=10.0, hotspot_node=2, hotspot_demand=500.0,
                             rng=np.random.default_rng(3))
        assert tm.demand(0, 2) == 500.0
        assert tm.demand(2, 0) != 500.0
        with pytest.raises(ValueError):
            hotspot_traffic(4, 1.0, hotspot_node=9, hotspot_demand=10.0)

    def test_scaled_to_utilization(self):
        topology = nsfnet_topology(capacity=10e6)
        scheme = shortest_path_routing(topology)
        tm = uniform_traffic(14, 1e4, 5e4, rng=np.random.default_rng(4))
        scaled = scaled_to_utilization(tm, scheme, 0.7)
        matrix = routing_matrix(scheme)
        loads = matrix.T @ scaled.as_vector(scheme.pairs())
        peak = (loads / np.array(topology.capacities())).max()
        assert peak == pytest.approx(0.7, rel=1e-9)

    def test_scaled_requires_traffic(self):
        topology = nsfnet_topology()
        scheme = shortest_path_routing(topology)
        with pytest.raises(ValueError):
            scaled_to_utilization(TrafficMatrix.zeros(14), scheme, 0.5)

    @given(st.integers(3, 8), st.floats(0.1, 0.95))
    @settings(max_examples=20, deadline=None)
    def test_scaling_property(self, n, target):
        topology = ring_topology(n)
        scheme = shortest_path_routing(topology)
        tm = uniform_traffic(n, 1e3, 1e5, rng=np.random.default_rng(n))
        scaled = scaled_to_utilization(tm, scheme, target)
        matrix = routing_matrix(scheme)
        loads = matrix.T @ scaled.as_vector(scheme.pairs())
        peak = (loads / np.array(topology.capacities())).max()
        assert peak == pytest.approx(target, rel=1e-9)
