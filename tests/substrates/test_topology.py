"""Tests for the topology substrate: Topology class, NSFNET/GEANT2, generators, I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    Topology,
    assign_queue_sizes,
    geant2_topology,
    grid_topology,
    linear_topology,
    load_topology,
    nsfnet_topology,
    random_topology,
    ring_topology,
    save_topology,
    scale_free_topology,
    star_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.topology.graph import DEFAULT_QUEUE_SIZE, SMALL_QUEUE_SIZE, LinkSpec, NodeSpec


class TestTopologyBasics:
    def make_triangle(self):
        topology = Topology("triangle")
        for node in range(3):
            topology.add_node(node, queue_size=16)
        topology.add_link(0, 1, capacity=1e6, bidirectional=True)
        topology.add_link(1, 2, capacity=2e6, bidirectional=True)
        topology.add_link(0, 2, capacity=3e6, bidirectional=True)
        return topology

    def test_counts(self):
        topology = self.make_triangle()
        assert topology.num_nodes == 3
        assert topology.num_links == 6

    def test_link_index_round_trip(self):
        topology = self.make_triangle()
        for index in range(topology.num_links):
            spec = topology.link_by_index(index)
            assert topology.link_index(spec.source, spec.target) == index

    def test_queue_sizes(self):
        topology = self.make_triangle()
        assert topology.queue_sizes() == {0: 16, 1: 16, 2: 16}
        topology.set_queue_size(1, 1)
        assert topology.queue_sizes()[1] == 1

    def test_neighbors(self):
        topology = self.make_triangle()
        assert topology.successors(0) == [1, 2]
        assert topology.predecessors(2) == [0, 1]
        assert topology.degree(0) == 2

    def test_shortest_path(self):
        topology = self.make_triangle()
        assert topology.shortest_path(0, 2) == [0, 2]

    def test_path_links(self):
        topology = self.make_triangle()
        links = topology.path_links([0, 1, 2])
        assert links == [topology.link_index(0, 1), topology.link_index(1, 2)]

    def test_path_links_too_short(self):
        with pytest.raises(ValueError):
            self.make_triangle().path_links([0])

    def test_strongly_connected(self):
        topology = self.make_triangle()
        assert topology.is_strongly_connected()
        lonely = Topology()
        lonely.add_node(0)
        lonely.add_node(1)
        assert not lonely.is_strongly_connected()

    def test_missing_node_raises(self):
        topology = Topology()
        topology.add_node(0)
        with pytest.raises(KeyError):
            topology.add_link(0, 5)

    def test_duplicate_link_raises(self):
        topology = self.make_triangle()
        with pytest.raises(ValueError):
            topology.add_link(0, 1)

    def test_unknown_lookups_raise(self):
        topology = self.make_triangle()
        with pytest.raises(KeyError):
            topology.node_spec(99)
        with pytest.raises(KeyError):
            topology.link_spec(2, 2)
        with pytest.raises(KeyError):
            topology.link_index(1, 1)

    def test_copy_is_deep(self):
        topology = self.make_triangle()
        clone = topology.copy()
        clone.set_queue_size(0, 1)
        assert topology.queue_sizes()[0] == 16
        assert clone == clone and topology != clone

    def test_pairs(self):
        pairs = list(self.make_triangle().pairs())
        assert len(pairs) == 6
        assert (0, 0) not in pairs

    def test_weighted_shortest_path(self):
        topology = Topology()
        for node in range(3):
            topology.add_node(node)
        # Direct link is slow, two-hop path has much higher capacity.
        topology.add_link(0, 2, capacity=1e5)
        topology.add_link(0, 1, capacity=1e9)
        topology.add_link(1, 2, capacity=1e9)
        assert topology.shortest_path(0, 2) == [0, 2]
        assert topology.shortest_path(0, 2, weight="inverse_capacity") == [0, 1, 2]

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            self.make_triangle().shortest_path(0, 1, weight="bogus")

    def test_repr(self):
        assert "nodes=3" in repr(self.make_triangle())


class TestSpecs:
    def test_node_spec_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(queue_size=0)

    def test_link_spec_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(0, 0)
        with pytest.raises(ValueError):
            LinkSpec(0, 1, capacity=0)
        with pytest.raises(ValueError):
            LinkSpec(0, 1, propagation_delay=-1)


class TestReferenceTopologies:
    def test_nsfnet_shape(self):
        topology = nsfnet_topology()
        assert topology.num_nodes == 14
        assert topology.num_links == 42
        assert topology.is_strongly_connected()

    def test_geant2_shape(self):
        topology = geant2_topology()
        assert topology.num_nodes == 24
        assert topology.num_links == 74
        assert topology.is_strongly_connected()

    def test_explicit_queue_sizes(self):
        sizes = [1] * 14
        topology = nsfnet_topology(queue_sizes=sizes)
        assert all(size == 1 for size in topology.queue_sizes().values())

    def test_wrong_queue_size_count(self):
        with pytest.raises(ValueError):
            nsfnet_topology(queue_sizes=[1, 2, 3])

    def test_mixed_queue_sizes_fraction(self):
        topology = geant2_topology(small_queue_fraction=0.5,
                                   rng=np.random.default_rng(0))
        sizes = list(topology.queue_sizes().values())
        assert sizes.count(1) == 12
        assert sizes.count(DEFAULT_QUEUE_SIZE) == 12

    def test_deterministic_with_seed(self):
        t1 = geant2_topology(small_queue_fraction=0.3, rng=np.random.default_rng(7))
        t2 = geant2_topology(small_queue_fraction=0.3, rng=np.random.default_rng(7))
        assert t1.queue_sizes() == t2.queue_sizes()

    def test_labels_present(self):
        topology = nsfnet_topology()
        assert topology.node_spec(0).label == "Seattle"
        assert geant2_topology().node_spec(22).label == "United Kingdom"


class TestGenerators:
    def test_linear(self):
        topology = linear_topology(5)
        assert topology.num_nodes == 5
        assert topology.num_links == 8
        assert topology.is_strongly_connected()

    def test_ring(self):
        topology = ring_topology(6)
        assert topology.num_links == 12
        assert topology.is_strongly_connected()

    def test_star(self):
        topology = star_topology(4)
        assert topology.num_nodes == 5
        assert topology.degree(0) == 4

    def test_grid(self):
        topology = grid_topology(3, 3)
        assert topology.num_nodes == 9
        assert topology.is_strongly_connected()

    def test_random_connected(self):
        topology = random_topology(12, average_degree=3, rng=np.random.default_rng(1))
        assert topology.num_nodes == 12
        assert topology.is_strongly_connected()

    def test_scale_free(self):
        topology = scale_free_topology(15, rng=np.random.default_rng(2))
        assert topology.num_nodes == 15
        assert topology.is_strongly_connected()

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            linear_topology(1)
        with pytest.raises(ValueError):
            ring_topology(2)
        with pytest.raises(ValueError):
            star_topology(1)
        with pytest.raises(ValueError):
            grid_topology(1, 1)
        with pytest.raises(ValueError):
            random_topology(2)
        with pytest.raises(ValueError):
            scale_free_topology(2, attachment=2)

    def test_assign_queue_sizes(self):
        topology = ring_topology(10)
        mixed = assign_queue_sizes(topology, 0.3, rng=np.random.default_rng(0))
        sizes = list(mixed.queue_sizes().values())
        assert sizes.count(SMALL_QUEUE_SIZE) == 3
        # Original untouched.
        assert all(s == DEFAULT_QUEUE_SIZE for s in topology.queue_sizes().values())

    def test_assign_queue_sizes_bad_fraction(self):
        with pytest.raises(ValueError):
            assign_queue_sizes(ring_topology(4), 1.5)

    @given(st.integers(3, 12))
    @settings(max_examples=20, deadline=None)
    def test_ring_always_strongly_connected(self, n):
        assert ring_topology(n).is_strongly_connected()


class TestTopologyIO:
    def test_dict_round_trip(self):
        topology = nsfnet_topology(small_queue_fraction=0.4, rng=np.random.default_rng(3))
        rebuilt = topology_from_dict(topology_to_dict(topology))
        assert rebuilt == topology
        assert rebuilt.queue_sizes() == topology.queue_sizes()

    def test_file_round_trip(self, tmp_path):
        topology = geant2_topology()
        path = save_topology(topology, str(tmp_path / "geant2.json"))
        assert load_topology(path) == topology

    def test_labels_survive(self):
        rebuilt = topology_from_dict(topology_to_dict(nsfnet_topology()))
        assert rebuilt.node_spec(1).label == "Palo Alto"
