"""Tests for the dataset substrate: samples, generators, normalisation,
tensorisation, splits and storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    AnalyticGroundTruth,
    DatasetConfig,
    DatasetGenerator,
    FeatureNormalizer,
    Sample,
    SimulationGroundTruth,
    generate_dataset,
    load_dataset,
    save_dataset,
    tensorize_sample,
    train_val_test_split,
)
from repro.routing import shortest_path_routing
from repro.topology import geant2_topology, linear_topology, nsfnet_topology, ring_topology
from repro.traffic import TrafficMatrix, scaled_to_utilization, uniform_traffic


def _small_scenario(num_nodes=5, utilization=0.5, seed=0, queue_sizes=None):
    topology = ring_topology(num_nodes)
    if queue_sizes is not None:
        for node, size in enumerate(queue_sizes):
            topology.set_queue_size(node, size)
    routing = shortest_path_routing(topology)
    traffic = uniform_traffic(num_nodes, 0.5, 1.5, rng=np.random.default_rng(seed))
    traffic = scaled_to_utilization(traffic, routing, utilization)
    return topology, routing, traffic


class TestSample:
    def _make(self):
        topology, routing, traffic = _small_scenario()
        delays = np.linspace(0.01, 0.02, routing.num_paths)
        return Sample(topology, routing, traffic, delays)

    def test_pair_order_and_lookup(self):
        sample = self._make()
        assert sample.num_paths == sample.routing.num_paths
        first_pair = sample.pair_order[0]
        assert sample.delay(*first_pair) == pytest.approx(sample.delays[0])

    def test_delay_shape_validated(self):
        topology, routing, traffic = _small_scenario()
        with pytest.raises(ValueError):
            Sample(topology, routing, traffic, np.ones(3))

    def test_negative_delay_rejected(self):
        topology, routing, traffic = _small_scenario()
        delays = np.ones(routing.num_paths)
        delays[0] = -1
        with pytest.raises(ValueError):
            Sample(topology, routing, traffic, delays)

    def test_jitter_shape_validated(self):
        topology, routing, traffic = _small_scenario()
        delays = np.ones(routing.num_paths)
        with pytest.raises(ValueError):
            Sample(topology, routing, traffic, delays, jitters=np.ones(2))

    def test_dict_round_trip(self):
        sample = self._make()
        rebuilt = Sample.from_dict(sample.to_dict())
        np.testing.assert_allclose(rebuilt.delays, sample.delays)
        assert rebuilt.pair_order == sample.pair_order
        assert rebuilt.queue_sizes() == sample.queue_sizes()


class TestAnalyticGroundTruth:
    def test_generates_valid_sample(self):
        topology, routing, traffic = _small_scenario()
        sample = AnalyticGroundTruth(noise_std=0.0).generate(
            topology, routing, traffic, rng=np.random.default_rng(0))
        assert sample.num_paths == routing.num_paths
        assert np.all(sample.delays > 0)
        assert np.all(sample.losses >= 0)
        assert sample.metadata["generator"] == "analytic-mm1k"

    def test_noise_reproducible_with_seed(self):
        topology, routing, traffic = _small_scenario()
        generator = AnalyticGroundTruth(noise_std=0.1)
        s1 = generator.generate(topology, routing, traffic, rng=np.random.default_rng(5))
        s2 = generator.generate(topology, routing, traffic, rng=np.random.default_rng(5))
        np.testing.assert_allclose(s1.delays, s2.delays)

    def test_zero_noise_is_deterministic(self):
        topology, routing, traffic = _small_scenario()
        generator = AnalyticGroundTruth(noise_std=0.0)
        s1 = generator.generate(topology, routing, traffic)
        s2 = generator.generate(topology, routing, traffic)
        np.testing.assert_allclose(s1.delays, s2.delays)

    def test_delay_depends_on_queue_size(self):
        """The key property for Fig. 2: queue sizes change path delays."""
        num_nodes = 5
        small = _small_scenario(num_nodes, utilization=0.85, queue_sizes=[1] * num_nodes)
        big = _small_scenario(num_nodes, utilization=0.85, queue_sizes=[64] * num_nodes)
        generator = AnalyticGroundTruth(noise_std=0.0)
        delays_small = generator.generate(*small).delays
        delays_big = generator.generate(*big).delays
        assert delays_small.mean() < delays_big.mean()

    def test_higher_load_higher_delay(self):
        low = _small_scenario(utilization=0.2)
        high = _small_scenario(utilization=0.9)
        generator = AnalyticGroundTruth(noise_std=0.0)
        assert (generator.generate(*low).delays.mean()
                < generator.generate(*high).delays.mean())

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            AnalyticGroundTruth(noise_std=-0.1)


class TestSimulationGroundTruth:
    def test_generates_valid_sample(self):
        topology, routing, traffic = _small_scenario(utilization=0.4)
        generator = SimulationGroundTruth(duration=1.0, warmup=0.2)
        sample = generator.generate(topology, routing, traffic,
                                    rng=np.random.default_rng(0))
        assert sample.num_paths == routing.num_paths
        assert np.all(np.isfinite(sample.delays))
        assert np.all(sample.delays > 0)
        assert sample.metadata["generator"] == "packet-simulator"

    def test_agrees_with_analytic_at_moderate_load(self):
        """DES and the analytic generator should agree within ~30% at 0.5 load."""
        topology, routing, traffic = _small_scenario(num_nodes=4, utilization=0.5,
                                                     seed=3)
        # Scale traffic to absolute rates suited to 10 Mbps links.
        simulated = SimulationGroundTruth(duration=4.0, warmup=0.5).generate(
            topology, routing, traffic, rng=np.random.default_rng(1))
        analytic = AnalyticGroundTruth(noise_std=0.0).generate(topology, routing, traffic)
        ratio = simulated.delays.mean() / analytic.delays.mean()
        assert 0.7 < ratio < 1.3


class TestDatasetGenerator:
    def test_generates_requested_count(self):
        config = DatasetConfig(num_samples=4, seed=0)
        samples = generate_dataset(ring_topology(5), config)
        assert len(samples) == 4
        assert all(isinstance(s, Sample) for s in samples)

    def test_deterministic_given_seed(self):
        config = DatasetConfig(num_samples=3, seed=7)
        s1 = generate_dataset(ring_topology(5), config)
        s2 = generate_dataset(ring_topology(5), config)
        for a, b in zip(s1, s2):
            np.testing.assert_allclose(a.delays, b.delays)
            assert a.queue_sizes() == b.queue_sizes()

    def test_queue_size_mix_respected(self):
        config = DatasetConfig(num_samples=3, small_queue_fraction=0.5, seed=1)
        samples = generate_dataset(nsfnet_topology(), config)
        for sample in samples:
            sizes = list(sample.queue_sizes().values())
            assert sizes.count(1) == 7

    def test_zero_small_fraction_keeps_default(self):
        config = DatasetConfig(num_samples=2, small_queue_fraction=0.0, seed=1)
        samples = generate_dataset(ring_topology(4), config)
        for sample in samples:
            assert all(size == config.default_queue_size
                       for size in sample.queue_sizes().values())

    def test_metadata_recorded(self):
        config = DatasetConfig(num_samples=1, seed=2)
        sample = generate_dataset(geant2_topology(), config)[0]
        assert sample.metadata["topology_name"] == "geant2"
        low, high = config.utilization_range
        assert low <= sample.metadata["target_utilization"] <= high

    def test_gravity_traffic_and_routing_variation(self):
        config = DatasetConfig(num_samples=2, traffic_model="gravity",
                               routing_variation=2, seed=3)
        samples = generate_dataset(ring_topology(6), config)
        assert len(samples) == 2

    def test_simulation_backend(self):
        config = DatasetConfig(num_samples=1, backend="simulation",
                               simulation_duration=0.5, seed=4,
                               utilization_range=(0.3, 0.4))
        sample = generate_dataset(ring_topology(4), config)[0]
        assert sample.metadata["generator"] == "packet-simulator"

    def test_progress_callback(self):
        calls = []
        config = DatasetConfig(num_samples=3, seed=5)
        DatasetGenerator(ring_topology(4), config).generate(
            progress=lambda done, total: calls.append((done, total)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            DatasetConfig(num_samples=0)
        with pytest.raises(ValueError):
            DatasetConfig(small_queue_fraction=2.0)
        with pytest.raises(ValueError):
            DatasetConfig(utilization_range=(0.0, 0.5))
        with pytest.raises(ValueError):
            DatasetConfig(traffic_model="chaotic")
        with pytest.raises(ValueError):
            DatasetConfig(routing_variation=0)
        with pytest.raises(ValueError):
            DatasetConfig(backend="quantum")


class TestNormalizer:
    def _samples(self):
        return generate_dataset(ring_topology(5), DatasetConfig(num_samples=3, seed=0))

    def test_normalized_statistics(self):
        samples = self._samples()
        normalizer = FeatureNormalizer().fit(samples)
        delays = np.concatenate([s.delays for s in samples])
        normalised = normalizer.normalize("delay", delays)
        assert abs(normalised.mean()) < 1e-9
        assert normalised.std() == pytest.approx(1.0, abs=1e-6)

    def test_round_trip(self):
        samples = self._samples()
        normalizer = FeatureNormalizer().fit(samples)
        values = np.array([0.01, 0.5, 2.0])
        np.testing.assert_allclose(
            normalizer.denormalize("delay", normalizer.normalize("delay", values)), values)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FeatureNormalizer().normalize("delay", np.ones(3))

    def test_unknown_field_raises(self):
        normalizer = FeatureNormalizer().fit(self._samples())
        with pytest.raises(KeyError):
            normalizer.normalize("bandwidth", np.ones(2))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            FeatureNormalizer().fit([])

    def test_serialisation(self):
        normalizer = FeatureNormalizer().fit(self._samples())
        rebuilt = FeatureNormalizer.from_dict(normalizer.to_dict())
        values = np.array([0.02, 0.03])
        np.testing.assert_allclose(rebuilt.normalize("delay", values),
                                   normalizer.normalize("delay", values))

    def test_tensorize_memoised_per_sample_target_dtype(self):
        samples = self._samples()
        normalizer = FeatureNormalizer().fit(samples)
        first = normalizer.tensorize(samples[0])
        assert normalizer.tensorize(samples[0]) is first
        assert normalizer.tensorize(samples[1]) is not first
        # A different precision is a different cache entry (pick the dtype
        # that is NOT the suite default so this holds under REPRO_DTYPE).
        other = "float32" if first.targets.dtype == np.float64 else "float64"
        assert normalizer.tensorize(samples[0], dtype=other) is not first
        assert normalizer.tensorize(samples[0], dtype=other).targets.dtype == np.dtype(other)

    def test_refit_invalidates_tensorize_cache(self):
        samples = self._samples()
        normalizer = FeatureNormalizer().fit(samples[:2])
        stale = normalizer.tensorize(samples[0])
        normalizer.fit(samples)  # different statistics
        fresh = normalizer.tensorize(samples[0])
        assert fresh is not stale
        np.testing.assert_allclose(
            fresh.targets, tensorize_sample(samples[0], normalizer).targets)


class TestTensorize:
    def _tensorized(self, topology=None):
        topology = topology if topology is not None else geant2_topology()
        config = DatasetConfig(num_samples=1, seed=0)
        sample = generate_dataset(topology, config)[0]
        normalizer = FeatureNormalizer().fit([sample])
        return sample, tensorize_sample(sample, normalizer)

    def test_shapes_consistent(self):
        sample, tensorized = self._tensorized()
        assert tensorized.num_paths == sample.num_paths
        assert tensorized.num_links == sample.topology.num_links
        assert tensorized.num_nodes == sample.topology.num_nodes
        assert tensorized.link_sequences.shape == tensorized.node_sequences.shape
        tensorized.validate()

    def test_sequences_match_routing(self):
        sample, tensorized = self._tensorized(nsfnet_topology())
        pair = sample.pair_order[10]
        row = 10
        length = tensorized.path_lengths[row]
        expected_links = sample.routing.link_path(*pair)
        expected_nodes = sample.routing.path(*pair)[:-1]
        np.testing.assert_array_equal(tensorized.link_sequences[row, :length], expected_links)
        np.testing.assert_array_equal(tensorized.node_sequences[row, :length], expected_nodes)
        assert tensorized.sequence_mask[row, length:].sum() == 0

    def test_unnormalized_passthrough(self):
        topology = linear_topology(3, capacity=5e6)
        routing = shortest_path_routing(topology)
        traffic = uniform_traffic(3, 1e5, 2e5, rng=np.random.default_rng(0))
        sample = AnalyticGroundTruth(noise_std=0.0).generate(topology, routing, traffic)
        tensorized = tensorize_sample(sample, normalizer=None)
        np.testing.assert_allclose(tensorized.link_features[:, 0], 5e6)
        np.testing.assert_allclose(tensorized.raw_delays, sample.delays)

    def test_node_feature_is_queue_size(self):
        topology = linear_topology(3)
        topology.set_queue_size(1, 1)
        routing = shortest_path_routing(topology)
        traffic = uniform_traffic(3, 1e5, 2e5, rng=np.random.default_rng(0))
        sample = AnalyticGroundTruth(noise_std=0.0).generate(topology, routing, traffic)
        tensorized = tensorize_sample(sample, normalizer=None)
        np.testing.assert_allclose(tensorized.node_features[:, 0], [32, 1, 32])

    @given(st.integers(3, 7), st.integers(0, 3))
    @settings(max_examples=15, deadline=None)
    def test_mask_lengths_property(self, num_nodes, seed):
        config = DatasetConfig(num_samples=1, seed=seed)
        sample = generate_dataset(ring_topology(num_nodes), config)[0]
        tensorized = tensorize_sample(sample, FeatureNormalizer().fit([sample]))
        lengths = tensorized.sequence_mask.sum(axis=1).astype(int)
        np.testing.assert_array_equal(lengths, tensorized.path_lengths)
        assert tensorized.max_path_length == lengths.max()


class TestSplitsAndStorage:
    def test_split_sizes(self):
        samples = generate_dataset(ring_topology(4), DatasetConfig(num_samples=10, seed=0))
        train, val, test = train_val_test_split(samples, 0.7, 0.2, seed=1)
        assert len(train) == 7 and len(val) == 2 and len(test) == 1
        assert len(train) + len(val) + len(test) == 10

    def test_split_deterministic(self):
        samples = generate_dataset(ring_topology(4), DatasetConfig(num_samples=6, seed=0))
        t1, v1, e1 = train_val_test_split(samples, seed=3)
        t2, v2, e2 = train_val_test_split(samples, seed=3)
        assert [id(s) for s in t1] == [id(s) for s in t2]

    def test_split_validation(self):
        samples = generate_dataset(ring_topology(4), DatasetConfig(num_samples=3, seed=0))
        with pytest.raises(ValueError):
            train_val_test_split([], 0.5, 0.2)
        with pytest.raises(ValueError):
            train_val_test_split(samples, 0.9, 0.2)

    def test_save_load_round_trip(self, tmp_path):
        samples = generate_dataset(ring_topology(4), DatasetConfig(num_samples=3, seed=0))
        normalizer = FeatureNormalizer().fit(samples)
        path = save_dataset(samples, str(tmp_path / "dataset"), normalizer=normalizer,
                            metadata={"purpose": "test"})
        loaded, loaded_normalizer, metadata = load_dataset(path)
        assert len(loaded) == 3
        assert metadata["purpose"] == "test"
        np.testing.assert_allclose(loaded[0].delays, samples[0].delays)
        assert loaded_normalizer.means == normalizer.means

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(str(tmp_path / "nope"))
