"""Tests for the sharded dataset store (formats 2 and 3) and the
storage-layer satellites: streamed atomic format-1 saves, format-version
validation and suffix-tolerant loading."""

import gzip
import json
import os

import numpy as np
import pytest

from repro.datasets import (
    DatasetConfig,
    FeatureNormalizer,
    ShardedDatasetReader,
    ShardedDatasetWriter,
    attach_normalizer,
    generate_dataset,
    is_sharded_store,
    load_dataset,
    save_dataset,
)
from repro.datasets.sharded import MANIFEST_NAME, shard_size_for
from repro.topology import ring_topology


@pytest.fixture(scope="module")
def samples():
    return generate_dataset(ring_topology(5),
                            DatasetConfig(num_samples=7, seed=11,
                                          small_queue_fraction=0.5))


@pytest.fixture(scope="module")
def normalizer(samples):
    return FeatureNormalizer().fit(samples)


class TestShardedWriterReader:
    def test_round_trip_with_shard_rolling(self, tmp_path, samples, normalizer):
        store = str(tmp_path / "store")
        with ShardedDatasetWriter(store, shard_size=3, normalizer=normalizer,
                                  metadata={"purpose": "test"}) as writer:
            for sample in samples:
                writer.write(sample)
            assert writer.num_samples == len(samples)
        reader = ShardedDatasetReader(store)
        assert len(reader) == 7
        assert reader.num_shards == 3  # 3 + 3 + 1
        assert [shard["num_samples"] for shard in reader.shards] == [3, 3, 1]
        assert reader.metadata == {"purpose": "test"}
        assert reader.normalizer.means == normalizer.means
        loaded = reader.read_all()
        assert len(loaded) == 7
        for original, rebuilt in zip(samples, loaded):
            np.testing.assert_allclose(rebuilt.delays, original.delays)
            assert rebuilt.pair_order == original.pair_order
            assert rebuilt.queue_sizes() == original.queue_sizes()

    def test_shard_files_and_manifest_layout(self, tmp_path, samples):
        store = str(tmp_path / "store")
        with ShardedDatasetWriter(store, shard_size=4) as writer:
            for sample in samples:
                writer.write(sample)
        names = sorted(os.listdir(store))
        assert names == [MANIFEST_NAME, "shard-00000.jsonl.gz", "shard-00001.jsonl.gz"]
        with open(os.path.join(store, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["format_version"] == 2
        assert manifest["total_samples"] == 7
        assert manifest["normalizer"] is None
        # Shards really are one JSON document per line.
        with gzip.open(os.path.join(store, "shard-00000.jsonl.gz"), "rt") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 4
        json.loads(lines[0])

    def test_iteration_matches_read_all_and_restarts(self, tmp_path, samples):
        store = str(tmp_path / "store")
        with ShardedDatasetWriter(store, shard_size=2) as writer:
            for sample in samples:
                writer.write(sample)
        reader = ShardedDatasetReader(store)
        first_pass = [s.delays for s in reader]
        second_pass = [s.delays for s in reader]  # fresh pass per iter()
        assert len(first_pass) == len(second_pass) == 7
        for a, b in zip(first_pass, second_pass):
            np.testing.assert_array_equal(a, b)

    def test_aborted_writer_leaves_no_manifest(self, tmp_path, samples):
        store = str(tmp_path / "store")
        with pytest.raises(RuntimeError):
            with ShardedDatasetWriter(store, shard_size=10) as writer:
                writer.write(samples[0])
                raise RuntimeError("simulated crash")
        assert not is_sharded_store(store)
        # No half-written temp shards left behind either.
        assert [n for n in os.listdir(store) if n.endswith(".tmp")] == []
        with pytest.raises(FileNotFoundError):
            ShardedDatasetReader(store)

    def test_rewrite_is_atomic_at_the_manifest(self, tmp_path, samples):
        """Rewriting an existing store must keep the old generation fully
        readable until the new manifest lands: new shards use fresh names,
        an aborted rewrite leaves the old data untouched, and a committed
        one swaps the contents and deletes the superseded shard files."""
        store = str(tmp_path / "store")
        with ShardedDatasetWriter(store, shard_size=2) as writer:
            for sample in samples:
                writer.write(sample)
        assert len(ShardedDatasetReader(store)) == 7

        # Mid-rewrite (shards already sealed) the old store still reads.
        rewriter = ShardedDatasetWriter(store, shard_size=1)
        rewriter.write(samples[0])
        rewriter.write(samples[1])
        assert len(ShardedDatasetReader(store)) == 7
        rewriter.abort()  # simulated crash: old data intact, no new residue
        assert len(ShardedDatasetReader(store)) == 7
        assert len([n for n in os.listdir(store)
                    if n.startswith("shard-")]) == 4

        with ShardedDatasetWriter(store, shard_size=4) as writer:
            for sample in samples[:4]:
                writer.write(sample)
        reader = ShardedDatasetReader(store)
        assert len(reader) == 4
        # The superseded generation's files were cleaned after the commit.
        on_disk = {n for n in os.listdir(store) if n.startswith("shard-")}
        assert on_disk == {shard["name"] for shard in reader.shards}

    def test_attach_normalizer_after_the_fact(self, tmp_path, samples, normalizer):
        store = str(tmp_path / "store")
        with ShardedDatasetWriter(store, shard_size=4) as writer:
            for sample in samples:
                writer.write(sample)
        assert ShardedDatasetReader(store).normalizer is None
        # The intended streaming flow: fit on a reader pass, then attach.
        fitted = FeatureNormalizer().fit(ShardedDatasetReader(store))
        attach_normalizer(store, fitted)
        assert ShardedDatasetReader(store).normalizer.means == fitted.means
        assert fitted.means == normalizer.means

    def test_truncated_shard_detected(self, tmp_path, samples):
        store = str(tmp_path / "store")
        with ShardedDatasetWriter(store, shard_size=4) as writer:
            for sample in samples:
                writer.write(sample)
        manifest_path = os.path.join(store, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["shards"][0]["num_samples"] += 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="truncated or corrupted"):
            list(ShardedDatasetReader(store))

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedDatasetWriter(str(tmp_path / "s"), shard_size=0)
        with pytest.raises(ValueError):
            shard_size_for(10, 0)
        assert shard_size_for(7, 3) == 3
        assert shard_size_for(0, 4) == 1

    def test_unknown_format_version_rejected(self, tmp_path, samples):
        store = str(tmp_path / "store")
        with ShardedDatasetWriter(store, shard_size=4) as writer:
            for sample in samples:
                writer.write(sample)
        manifest_path = os.path.join(store, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format_version"] = 9
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError) as excinfo:
            ShardedDatasetReader(store)
        # The error must name every supported version and the store path.
        message = str(excinfo.value)
        assert "9" in message and "2" in message and "3" in message
        assert store in message


class TestBinaryPayload:
    """Format 3: zero-parse binary npz shard payloads."""

    def test_round_trip_is_bit_exact_with_shard_rolling(self, tmp_path, samples,
                                                        normalizer):
        store = str(tmp_path / "store")
        with ShardedDatasetWriter(store, shard_size=3, normalizer=normalizer,
                                  metadata={"purpose": "test"},
                                  payload="binary") as writer:
            for sample in samples:
                writer.write(sample)
            assert writer.num_samples == len(samples)
        reader = ShardedDatasetReader(store)
        assert len(reader) == 7
        assert reader.num_shards == 3  # 3 + 3 + 1
        assert reader.metadata == {"purpose": "test"}
        assert reader.normalizer.means == normalizer.means
        loaded = reader.read_all()
        assert len(loaded) == 7
        for original, rebuilt in zip(samples, loaded):
            # float64 arrays hit disk verbatim: exact equality, not allclose.
            np.testing.assert_array_equal(rebuilt.delays, original.delays)
            if original.jitters is not None:
                np.testing.assert_array_equal(rebuilt.jitters, original.jitters)
            if original.losses is not None:
                np.testing.assert_array_equal(rebuilt.losses, original.losses)
            np.testing.assert_array_equal(rebuilt.traffic.matrix,
                                          original.traffic.matrix)
            assert rebuilt.pair_order == original.pair_order
            assert rebuilt.routing.node_paths() == original.routing.node_paths()
            assert rebuilt.queue_sizes() == original.queue_sizes()
            assert rebuilt.topology.name == original.topology.name
            assert rebuilt.metadata == original.metadata
            for link_a, link_b in zip(original.topology.links(),
                                      rebuilt.topology.links()):
                assert link_a == link_b

    def test_shard_files_and_manifest_layout(self, tmp_path, samples):
        store = str(tmp_path / "store")
        with ShardedDatasetWriter(store, shard_size=4,
                                  payload="binary") as writer:
            for sample in samples:
                writer.write(sample)
        names = sorted(os.listdir(store))
        assert names == [MANIFEST_NAME, "shard-00000.npz", "shard-00001.npz"]
        with open(os.path.join(store, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["format_version"] == 3
        assert manifest["payload"] == "binary"
        assert manifest["total_samples"] == 7
        # Shards really are npz archives: per-sample key prefixes + meta.
        with np.load(os.path.join(store, "shard-00000.npz"),
                     allow_pickle=False) as archive:
            keys = set(archive.files)
            assert "meta" in keys
            assert archive["meta"].shape == (4,)
            assert {k.split(".", 1)[0] for k in keys if k != "meta"} \
                == {"s00000", "s00001", "s00002", "s00003"}

    def test_iteration_and_reread(self, tmp_path, samples):
        store = str(tmp_path / "store")
        with ShardedDatasetWriter(store, shard_size=2,
                                  payload="binary") as writer:
            for sample in samples:
                writer.write(sample)
        reader = ShardedDatasetReader(store)
        first_pass = [s.delays for s in reader]
        second_pass = [s.delays for s in reader]
        assert len(first_pass) == len(second_pass) == 7
        for a, b in zip(first_pass, second_pass):
            np.testing.assert_array_equal(a, b)

    def test_truncated_binary_shard_detected(self, tmp_path, samples):
        store = str(tmp_path / "store")
        with ShardedDatasetWriter(store, shard_size=4,
                                  payload="binary") as writer:
            for sample in samples:
                writer.write(sample)
        manifest_path = os.path.join(store, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["shards"][0]["num_samples"] += 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="truncated or corrupted"):
            list(ShardedDatasetReader(store))

    def test_payload_validated(self, tmp_path):
        with pytest.raises(ValueError, match="payload"):
            ShardedDatasetWriter(str(tmp_path / "s"), payload="parquet")

    def test_save_dataset_binary_round_trips(self, tmp_path, samples,
                                             normalizer):
        store = save_dataset(samples, str(tmp_path / "store"),
                             normalizer=normalizer, metadata={"k": 1},
                             shards=2, shard_payload="binary")
        assert is_sharded_store(store)
        loaded, loaded_normalizer, metadata = load_dataset(store)
        assert len(loaded) == len(samples)
        assert metadata == {"k": 1}
        assert loaded_normalizer.means == normalizer.means
        np.testing.assert_array_equal(loaded[3].delays, samples[3].delays)


class TestStorageIntegration:
    def test_save_dataset_shards_option_round_trips(self, tmp_path, samples,
                                                    normalizer):
        store = save_dataset(samples, str(tmp_path / "store"),
                             normalizer=normalizer, metadata={"k": 1}, shards=2)
        assert is_sharded_store(store)
        assert ShardedDatasetReader(store).num_shards == 2
        loaded, loaded_normalizer, metadata = load_dataset(store)
        assert len(loaded) == len(samples)
        assert metadata == {"k": 1}
        assert loaded_normalizer.means == normalizer.means
        np.testing.assert_allclose(loaded[3].delays, samples[3].delays)

    def test_format1_unknown_version_rejected(self, tmp_path):
        path = str(tmp_path / "future.json.gz")
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump({"format_version": 7, "samples": []}, handle)
        with pytest.raises(ValueError) as excinfo:
            load_dataset(path)
        message = str(excinfo.value)
        assert "7" in message and "format 1" in message
        assert "format 2" in message and "format 3" in message

    def test_format1_save_accepts_a_generator(self, tmp_path, samples):
        path = save_dataset((s for s in samples), str(tmp_path / "gen"))
        loaded, _, _ = load_dataset(path)
        assert len(loaded) == len(samples)
        np.testing.assert_allclose(loaded[0].delays, samples[0].delays)

    def test_format1_payload_unchanged(self, tmp_path, samples, normalizer):
        """The streamed writer must produce the exact format-1 schema."""
        path = save_dataset(samples[:2], str(tmp_path / "fmt1"),
                            normalizer=normalizer, metadata={"a": "b"})
        with gzip.open(path, "rt") as handle:
            payload = json.load(handle)
        assert payload["format_version"] == 1
        assert payload["metadata"] == {"a": "b"}
        assert payload["normalizer"] == normalizer.to_dict()
        assert len(payload["samples"]) == 2

    def test_failed_save_leaves_nothing_behind(self, tmp_path, samples):
        class Exploding:
            def __iter__(self):
                yield samples[0]
                raise RuntimeError("boom")

        target = str(tmp_path / "crash")
        with pytest.raises(RuntimeError, match="boom"):
            save_dataset(Exploding(), target)
        assert os.listdir(tmp_path) == []  # no dataset, no .tmp residue

    def test_load_checks_exact_path_before_suffixing(self, tmp_path, samples):
        # A dataset deliberately saved under a suffix-less name must load by
        # its exact path instead of erroring about '<name>.json.gz'.
        canonical = save_dataset(samples[:2], str(tmp_path / "named"))
        bare = str(tmp_path / "bare")
        os.replace(canonical, bare)
        loaded, _, _ = load_dataset(bare)
        assert len(loaded) == 2

    def test_missing_dataset_error_names_both_candidates(self, tmp_path):
        missing = str(tmp_path / "nope")
        with pytest.raises(FileNotFoundError) as excinfo:
            load_dataset(missing)
        assert missing in str(excinfo.value)
        assert missing + ".json.gz" in str(excinfo.value)

    def test_plain_directory_is_not_a_dataset(self, tmp_path):
        directory = tmp_path / "plain"
        directory.mkdir()
        with pytest.raises(FileNotFoundError, match="manifest"):
            load_dataset(str(directory))

    def test_manifestless_directory_does_not_shadow_suffixed_file(self, tmp_path,
                                                                  samples):
        """The residue of an aborted sharded write (a directory with no
        manifest) must not shadow a good '<path>.json.gz' next to it."""
        save_dataset(samples[:2], str(tmp_path / "data"))
        (tmp_path / "data").mkdir()  # aborted-write residue
        loaded, _, _ = load_dataset(str(tmp_path / "data"))
        assert len(loaded) == 2

    def test_sharded_save_does_not_copy_sized_inputs(self, tmp_path, samples):
        """save_dataset(shards=N) must consume sized inputs as-is (no list()
        copy of a larger-than-RAM reader) — only unsized iterators buffer."""
        class CountingSequence:
            def __init__(self, items):
                self.items = items
                self.iterations = 0
            def __len__(self):
                return len(self.items)
            def __iter__(self):
                self.iterations += 1
                return iter(self.items)

        source = CountingSequence(samples)
        store = save_dataset(source, str(tmp_path / "sized"), shards=2)
        assert source.iterations == 1  # streamed straight through, once
        assert len(ShardedDatasetReader(store)) == len(samples)
