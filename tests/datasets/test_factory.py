"""Dataset factory tests: deterministic expansion, worker-count-invariant
content, resumable execution (only missing units run), catalog provenance,
merging, the CLI layer, and the satellite fixes (DatasetConfig validation
gaps, simulator cost metadata)."""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import (
    DatasetConfig,
    DatasetJobSpec,
    ShardedDatasetReader,
    expand_units,
    execute_unit,
    job_status,
    merge_catalogs,
    run_job,
)
from repro.datasets.factory import format_job_status, resolve_topology
from repro.datasets.sharded import MANIFEST_NAME
from repro.version import __version__


def spec_for(**overrides) -> DatasetJobSpec:
    """The small reference job of this module: 2 scenarios × 3 units × 2
    samples on a 5-node ring (analytic backend, runs in milliseconds)."""
    parameters = dict(
        topologies=("ring:5",),
        samples_per_scenario=6,
        unit_size=2,
        seed=3,
        axes={"traffic_model": ["uniform", "gravity"]},
        base_config={"small_queue_fraction": 0.5},
    )
    parameters.update(overrides)
    return DatasetJobSpec(**parameters)


def store_contents(path):
    """Order-preserving canonical sample encodings of a store.

    ``sim_wall_seconds`` is dropped before comparing: it is the one
    metadata field documented to vary between otherwise identical runs.
    """
    contents = []
    for sample in ShardedDatasetReader(path):
        payload = sample.to_dict()
        payload["metadata"].pop("sim_wall_seconds", None)
        contents.append(json.dumps(payload, sort_keys=True))
    return contents


@pytest.fixture(scope="module")
def reference_store(tmp_path_factory):
    """One uninterrupted single-process run of the reference job."""
    path = str(tmp_path_factory.mktemp("factory") / "reference")
    status = run_job(spec_for(), path, workers=1)
    assert status["complete"]
    return path


class TestJobSpec:
    def test_expansion_is_deterministic(self):
        first, second = expand_units(spec_for()), expand_units(spec_for())
        assert len(first) == len(second) == 6
        assert [dataclasses.asdict(u) for u in first] == \
               [dataclasses.asdict(u) for u in second]
        # 2 scenarios (uniform, gravity) × 3 units of 2 samples each.
        assert [u.num_samples for u in first] == [2] * 6
        assert [u.scenario_index for u in first] == [0, 0, 0, 1, 1, 1]
        assert [u.sample_offset for u in first] == [0, 2, 4] * 2
        assert first[0].config.traffic_model == "uniform"
        assert first[3].config.traffic_model == "gravity"

    def test_ragged_final_unit(self):
        units = expand_units(spec_for(samples_per_scenario=5, axes={}))
        assert [u.num_samples for u in units] == [2, 2, 1]

    def test_spec_round_trips_through_dict(self):
        spec = spec_for()
        rebuilt = DatasetJobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_invalid_axis_field_rejected(self):
        with pytest.raises(ValueError, match="not a sweepable"):
            spec_for(axes={"num_samples": [1, 2]})
        with pytest.raises(ValueError, match="no values"):
            spec_for(axes={"traffic_model": []})
        with pytest.raises(ValueError, match="both axes and base_config"):
            spec_for(axes={"backend": ["analytic"]},
                     base_config={"backend": "analytic"})
        with pytest.raises(ValueError, match="base_config"):
            spec_for(base_config={"not_a_field": 1})

    def test_resolve_topology(self):
        assert resolve_topology("geant2").num_nodes == 24
        assert resolve_topology("ring:7").num_nodes == 7
        # Random topologies derive from the job seed only: identical for
        # every unit and worker, different across job seeds.
        a = resolve_topology("random:9", job_seed=1)
        b = resolve_topology("random:9", job_seed=1)
        assert [l.capacity for l in a.links()] == [l.capacity for l in b.links()]
        with pytest.raises(ValueError, match="unknown topology"):
            resolve_topology("hypercube:4")
        with pytest.raises(ValueError, match="not an integer"):
            resolve_topology("ring:big")


class TestExecution:
    def test_unit_output_is_order_and_worker_independent(self, tmp_path,
                                                         reference_store):
        """Executing one unit standalone reproduces exactly that slice of
        the full run — the per-unit RNG derivation at work."""
        spec = spec_for()
        unit = expand_units(spec)[3]
        alone = str(tmp_path / "alone")
        os.makedirs(alone)
        record = execute_unit(spec, unit, alone)
        assert record["written_samples"] == unit.num_samples
        # Wrap the lone shard in a manifest so the reader can decode it.
        with open(os.path.join(alone, MANIFEST_NAME), "w") as handle:
            json.dump({"format_version": 3, "payload": "binary",
                       "total_samples": record["written_samples"],
                       "shards": [{"name": record["shard"],
                                   "num_samples": record["written_samples"]}]},
                      handle)
        full = store_contents(reference_store)
        assert store_contents(alone) == full[6:8]  # unit 3 = samples 6..7

    def test_multiprocess_run_matches_single_process(self, tmp_path,
                                                     reference_store):
        path = str(tmp_path / "workers2")
        status = run_job(spec_for(), path, workers=2)
        assert status["complete"]
        assert store_contents(path) == store_contents(reference_store)
        # Same catalog shape too: shards listed in unit order.
        assert [s["name"] for s in ShardedDatasetReader(path).shards] == \
               [f"unit-{i:06d}.npz" for i in range(6)]

    def test_normalizer_attached_on_completion(self, reference_store):
        reader = ShardedDatasetReader(reference_store)
        assert reader.normalizer is not None

    def test_sample_provenance_metadata(self, reference_store):
        samples = ShardedDatasetReader(reference_store).read_all()
        assert [s.metadata["unit_index"] for s in samples] == \
               [0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5]
        assert samples[0].metadata["traffic_model"] == "uniform"
        assert samples[-1].metadata["traffic_model"] == "gravity"
        assert samples[0].metadata["job_seed"] == 3

    def test_catalog_provenance(self, reference_store):
        status = job_status(reference_store)
        assert status["complete"]
        assert status["simulator_version"] == __version__
        with open(os.path.join(reference_store, MANIFEST_NAME)) as handle:
            catalog = json.load(handle)["catalog"]
        assert catalog["fingerprint"] == spec_for().fingerprint()
        unit = catalog["units"][3]
        assert unit["status"] == "done"
        assert unit["axes"] == {"traffic_model": "gravity"}
        assert unit["seed_path"] == [3, 3]
        assert unit["config"]["backend"] == "analytic"
        assert unit["generation_seconds"] > 0


class TestResume:
    def test_interrupted_run_resumes_only_missing_units(self, tmp_path,
                                                        reference_store):
        """The acceptance scenario: a killed run (simulated by a budgeted
        `limit`) leaves whole units; resume executes exactly the missing
        ones and the final store equals an uninterrupted run's."""
        path = str(tmp_path / "interrupted")
        partial = run_job(spec_for(), path, workers=1, limit=2)
        assert (partial["done_units"], partial["pending_units"]) == (2, 4)
        assert not partial["complete"]
        # The partial store already reads as a valid (smaller) dataset.
        assert store_contents(path) == store_contents(reference_store)[:4]

        executed = []
        final = run_job(spec_for(), path, workers=1, resume=True,
                        progress=lambda index, done, total: executed.append(index))
        assert executed == [2, 3, 4, 5]
        assert final["complete"]
        assert store_contents(path) == store_contents(reference_store)

    def test_deleted_shard_is_regenerated(self, tmp_path, reference_store):
        path = str(tmp_path / "damaged")
        run_job(spec_for(), path, workers=1)
        os.remove(os.path.join(path, "unit-000002.npz"))
        executed = []
        status = run_job(spec_for(), path, workers=1, resume=True,
                         progress=lambda index, done, total: executed.append(index))
        assert executed == [2]
        assert status["complete"]
        assert store_contents(path) == store_contents(reference_store)

    def test_resume_flag_required_and_spec_must_match(self, tmp_path):
        path = str(tmp_path / "guarded")
        run_job(spec_for(), path, workers=1, limit=1)
        with pytest.raises(ValueError, match="resume"):
            run_job(spec_for(), path, workers=1)
        with pytest.raises(ValueError, match="different job spec"):
            run_job(spec_for(seed=99), path, workers=1, resume=True)

    def test_failing_unit_is_retried_then_quarantined(self, tmp_path,
                                                      monkeypatch,
                                                      reference_store):
        import repro.datasets.factory as factory_module
        path = str(tmp_path / "flaky")
        real_execute = factory_module.execute_unit

        def broken_execute(spec, unit, store_path):
            if unit.index == 4:
                raise RuntimeError("injected unit failure")
            return real_execute(spec, unit, store_path)

        monkeypatch.setattr(factory_module, "execute_unit", broken_execute)
        # A persistently failing unit no longer aborts the job: the run
        # completes, the unit is quarantined with its traceback, and every
        # execution (1 initial + max_retries) is counted.
        status = run_job(spec_for(), path, workers=1, max_retries=1)
        assert status["quarantined_units"] == [4]
        assert status["failed_units"] == [4]  # legacy alias
        assert not status["complete"]
        assert status["done_units"] == 5
        with open(os.path.join(path, MANIFEST_NAME)) as handle:
            quarantined = json.load(handle)["catalog"]["units"][4]
        assert quarantined["status"] == "quarantined"
        assert "injected unit failure" in quarantined["error"]
        assert quarantined["attempts"] == 2  # 1 + max_retries

        monkeypatch.setattr(factory_module, "execute_unit", real_execute)
        executed = []
        final = run_job(spec_for(), path, workers=1, resume=True,
                        progress=lambda index, done, total: executed.append(index))
        assert executed == [4]
        assert final["complete"]
        assert final["quarantined_units"] == []
        # 5 clean units once each, unit 4 twice in run one + once on resume.
        assert final["total_attempts"] == 5 + 2 + 1
        assert store_contents(path) == store_contents(reference_store)


class TestMerge:
    def test_merge_preserves_samples_and_provenance(self, tmp_path,
                                                    reference_store):
        other = str(tmp_path / "other-seed")
        run_job(spec_for(seed=17), other, workers=1)
        merged = str(tmp_path / "merged")
        status = merge_catalogs([reference_store, other], merged)
        assert status["complete"]
        assert status["samples_written"] == 24
        assert store_contents(merged) == (store_contents(reference_store)
                                          + store_contents(other))
        reader = ShardedDatasetReader(merged)
        assert reader.normalizer is not None
        with open(os.path.join(merged, MANIFEST_NAME)) as handle:
            units = json.load(handle)["catalog"]["units"]
        assert len(units) == 12
        assert units[7]["source"] == other
        assert units[7]["source_index"] == 1
        assert units[7]["seed_path"] == [17, 1]

    def test_merge_refuses_existing_store_and_plain_stores(self, tmp_path,
                                                           reference_store):
        with pytest.raises(ValueError, match="fresh directory"):
            merge_catalogs([reference_store], reference_store)
        with pytest.raises(FileNotFoundError):
            merge_catalogs([str(tmp_path / "missing")], str(tmp_path / "out"))


class TestCLI:
    def test_generate_status_resume_train_flow(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["generate", "--topology", "nsfnet", "--samples", "6",
                     "--unit-size", "2", "--workers", "2", "--limit-units", "2",
                     "--seed", "5", "--output", store]) == 0
        assert main(["status", "--dataset", store]) == 0
        out = capsys.readouterr().out
        assert "units done/total    : 2/3" in out
        assert "re-run with --resume" in out
        assert main(["generate", "--topology", "nsfnet", "--samples", "6",
                     "--unit-size", "2", "--resume",
                     "--seed", "5", "--output", store]) == 0
        assert main(["status", "--dataset", store]) == 0
        out = capsys.readouterr().out
        assert "(complete)" in out
        # The finished factory store trains like any dataset.
        weights = str(tmp_path / "weights")
        assert main(["train", "--dataset", store, "--model", "original",
                     "--epochs", "1", "--state-dim", "4", "--iterations", "2",
                     "--output", weights]) == 0

    def test_status_rejects_non_factory_paths(self, tmp_path,
                                               reference_store):
        with pytest.raises(FileNotFoundError):
            job_status(str(tmp_path / "nowhere"))
        # A plain sharded store (no catalog) is neither reportable nor a
        # valid factory output directory.
        from repro.datasets.sharded import ShardedDatasetWriter
        plain = str(tmp_path / "plain")
        with ShardedDatasetWriter(plain, shard_size=4) as writer:
            for sample in ShardedDatasetReader(reference_store):
                writer.write(sample)
        with pytest.raises(ValueError, match="without a factory catalog"):
            job_status(plain)
        with pytest.raises(ValueError, match="refusing to overwrite"):
            run_job(spec_for(), plain, workers=1)
        failed_free = format_job_status(job_status(reference_store))
        assert "FAILED" not in failed_free


class TestDatasetConfigValidation:
    """Satellite: zero/negative values that used to pass silently must now
    raise errors naming the offending field."""

    @pytest.mark.parametrize("field,value", [
        ("noise_std", -0.1),
        ("simulation_duration", 0.0),
        ("simulation_duration", -1.0),
        ("mean_packet_size_bits", 0.0),
        ("mean_packet_size_bits", -8000.0),
        ("default_queue_size", 0),
        ("small_queue_size", -1),
    ])
    def test_invalid_values_rejected_naming_the_field(self, field, value):
        with pytest.raises(ValueError, match=field):
            DatasetConfig(**{field: value})

    def test_valid_boundaries_still_accepted(self):
        DatasetConfig(noise_std=0.0, simulation_duration=0.1,
                      mean_packet_size_bits=1.0,
                      default_queue_size=1, small_queue_size=1)


class TestSimulatorCostMetadata:
    """Satellite: simulation-backed samples record their generation cost."""

    def test_events_and_wall_time_recorded(self, tmp_path):
        spec = DatasetJobSpec(
            topologies=("ring:4",), samples_per_scenario=1, unit_size=1,
            seed=1, base_config={"backend": "simulation",
                                 "simulation_duration": 0.2})
        path = str(tmp_path / "sim")
        status = run_job(spec, path, workers=1)
        assert status["events_processed"] > 0
        sample = next(iter(ShardedDatasetReader(path)))
        assert sample.metadata["events_processed"] > 0
        assert sample.metadata["sim_wall_seconds"] > 0
        assert sample.metadata["generator"] == "packet-simulator"
        # The catalog aggregates the same cost per unit.
        with open(os.path.join(path, MANIFEST_NAME)) as handle:
            unit = json.load(handle)["catalog"]["units"][0]
        assert unit["events_processed"] == sample.metadata["events_processed"]
