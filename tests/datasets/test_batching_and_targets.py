"""Tests for mini-batch merging and for jitter/loss prediction targets."""

import numpy as np
import pytest

from repro.datasets import (
    DatasetConfig,
    FeatureNormalizer,
    generate_dataset,
    tensorize_sample,
)
from repro.datasets.batching import make_batches, merge_tensorized_samples
from repro.models import (
    ExtendedRouteNet,
    RouteNet,
    RouteNetConfig,
    RouteNetTrainer,
    TrainerConfig,
    evaluate_model,
)
from repro.topology import linear_topology, ring_topology

SMALL_CONFIG = RouteNetConfig(link_state_dim=6, path_state_dim=6, node_state_dim=6,
                              message_passing_iterations=2, readout_hidden_sizes=(8,),
                              seed=0)


def _tensorized_list(num_samples=3, num_nodes=5, seed=0, target="delay"):
    samples = generate_dataset(ring_topology(num_nodes),
                               DatasetConfig(num_samples=num_samples, seed=seed))
    normalizer = FeatureNormalizer().fit(samples)
    return samples, [tensorize_sample(s, normalizer, target=target) for s in samples]


class TestMergeTensorizedSamples:
    def test_merged_counts(self):
        _, tensorized = _tensorized_list(3)
        merged = merge_tensorized_samples(tensorized)
        assert merged.num_paths == sum(t.num_paths for t in tensorized)
        assert merged.num_links == sum(t.num_links for t in tensorized)
        assert merged.num_nodes == sum(t.num_nodes for t in tensorized)
        merged.validate()

    def test_indices_are_disjoint(self):
        _, tensorized = _tensorized_list(2)
        merged = merge_tensorized_samples(tensorized)
        first = tensorized[0]
        # Rows belonging to the second sample must reference links/nodes
        # beyond the first sample's ranges wherever the mask is set.
        second_rows = merged.link_sequences[first.num_paths:]
        second_mask = merged.sequence_mask[first.num_paths:] > 0
        assert second_rows[second_mask].min() >= first.num_links
        second_nodes = merged.node_sequences[first.num_paths:]
        assert second_nodes[second_mask].min() >= first.num_nodes

    def test_targets_concatenated_in_order(self):
        _, tensorized = _tensorized_list(2)
        merged = merge_tensorized_samples(tensorized)
        np.testing.assert_allclose(
            merged.targets, np.concatenate([t.targets for t in tensorized]))

    def test_single_sample_returns_defensive_copy(self):
        """A 1-sample merge must not alias the cached per-sample arrays."""
        _, tensorized = _tensorized_list(1)
        merged = merge_tensorized_samples(tensorized)
        assert merged is not tensorized[0]
        for field in ("link_features", "node_features", "path_features",
                      "link_sequences", "node_sequences", "sequence_mask",
                      "path_lengths", "targets", "raw_delays", "raw_targets"):
            original = getattr(tensorized[0], field)
            copied = getattr(merged, field)
            np.testing.assert_array_equal(copied, original)
            assert not np.shares_memory(copied, original)
        assert merged.pair_order == tensorized[0].pair_order
        assert merged.pair_order is not tensorized[0].pair_order
        np.testing.assert_array_equal(merged.sample_path_offsets,
                                      [0, tensorized[0].num_paths])
        merged.validate()

    def test_merged_offsets_and_unmerge(self):
        _, tensorized = _tensorized_list(3)
        merged = merge_tensorized_samples(tensorized)
        expected = np.cumsum([0] + [t.num_paths for t in tensorized])
        np.testing.assert_array_equal(merged.sample_path_offsets, expected)
        assert merged.num_merged_samples == 3
        chunks = merged.unmerge(merged.targets)
        assert len(chunks) == 3
        for chunk, sample in zip(chunks, tensorized):
            np.testing.assert_allclose(chunk, sample.targets)
        pair_chunks = merged.unmerge(merged.pair_order)
        for chunk, sample in zip(pair_chunks, tensorized):
            assert list(chunk) == list(sample.pair_order)

    def test_nested_merge_keeps_scenario_boundaries(self):
        _, tensorized = _tensorized_list(3)
        inner = merge_tensorized_samples(tensorized[:2])
        merged = merge_tensorized_samples([inner, tensorized[2]])
        expected = np.cumsum([0] + [t.num_paths for t in tensorized])
        np.testing.assert_array_equal(merged.sample_path_offsets, expected)
        assert merged.num_merged_samples == 3

    def test_unmerge_length_mismatch_rejected(self):
        _, tensorized = _tensorized_list(2)
        merged = merge_tensorized_samples(tensorized)
        with pytest.raises(ValueError):
            merged.unmerge(np.zeros(merged.num_paths + 1))

    def test_unmerged_sample_unmerge_is_identity(self):
        _, tensorized = _tensorized_list(1)
        sample = tensorized[0]
        assert sample.num_merged_samples == 1
        (chunk,) = sample.unmerge(sample.targets)
        np.testing.assert_allclose(chunk, sample.targets)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_tensorized_samples([])

    def test_mixed_targets_rejected(self):
        samples, _ = _tensorized_list(2)
        normalizer = FeatureNormalizer().fit(samples)
        a = tensorize_sample(samples[0], normalizer, target="delay")
        b = tensorize_sample(samples[1], normalizer, target="jitter")
        with pytest.raises(ValueError):
            merge_tensorized_samples([a, b])

    def test_model_forward_equivalence(self):
        """Predictions on a merged batch equal per-sample predictions."""
        _, tensorized = _tensorized_list(2, seed=3)
        model = ExtendedRouteNet(SMALL_CONFIG)
        merged = merge_tensorized_samples(tensorized)
        batched = model.predict(merged)
        separate = np.concatenate([model.predict(t) for t in tensorized])
        np.testing.assert_allclose(batched, separate, atol=1e-9)

    def test_model_forward_equivalence_original(self):
        _, tensorized = _tensorized_list(2, seed=4)
        model = RouteNet(SMALL_CONFIG)
        merged = merge_tensorized_samples(tensorized)
        np.testing.assert_allclose(
            model.predict(merged),
            np.concatenate([model.predict(t) for t in tensorized]),
            atol=1e-9)

    def test_different_topologies_merge(self):
        samples_a = generate_dataset(ring_topology(4), DatasetConfig(num_samples=1, seed=0))
        samples_b = generate_dataset(linear_topology(6), DatasetConfig(num_samples=1, seed=0))
        normalizer = FeatureNormalizer().fit(samples_a + samples_b)
        merged = merge_tensorized_samples([
            tensorize_sample(samples_a[0], normalizer),
            tensorize_sample(samples_b[0], normalizer),
        ])
        merged.validate()
        assert merged.num_nodes == 10


class TestMakeBatches:
    def test_batch_sizes(self):
        _, tensorized = _tensorized_list(5)
        batches = make_batches(tensorized, batch_size=2)
        assert len(batches) == 3
        assert batches[0].num_paths == 2 * tensorized[0].num_paths
        assert batches[-1].num_paths == tensorized[0].num_paths

    def test_shuffling_reproducible(self):
        _, tensorized = _tensorized_list(4)
        b1 = make_batches(tensorized, 2, rng=np.random.default_rng(1))
        b2 = make_batches(tensorized, 2, rng=np.random.default_rng(1))
        np.testing.assert_allclose(b1[0].targets, b2[0].targets)

    def test_validation(self):
        _, tensorized = _tensorized_list(2)
        with pytest.raises(ValueError):
            make_batches(tensorized, 0)
        with pytest.raises(ValueError):
            make_batches([], 2)


class TestBucketedBatching:
    """Length bucketing: deterministic membership, full coverage, less padding."""

    def _ragged_tensorized(self):
        """Scenarios from three topologies → three distinct max path lengths."""
        samples = generate_dataset(ring_topology(5), DatasetConfig(num_samples=3, seed=0))
        samples += generate_dataset(linear_topology(6),
                                    DatasetConfig(num_samples=3, seed=1))
        samples += generate_dataset(linear_topology(9),
                                    DatasetConfig(num_samples=3, seed=2))
        normalizer = FeatureNormalizer().fit(samples)
        tensorized = [tensorize_sample(s, normalizer) for s in samples]
        assert len({t.max_path_length for t in tensorized}) > 1
        return tensorized

    def test_every_sample_exactly_once(self):
        """Each scenario lands in exactly one batch per epoch, shuffled or not."""
        tensorized = self._ragged_tensorized()
        for rng in (None, np.random.default_rng(3)):
            batches = make_batches(tensorized, 4, rng=rng, bucket_by_length=True)
            batched_targets = np.sort(np.concatenate([b.targets for b in batches]))
            expected = np.sort(np.concatenate([t.targets for t in tensorized]))
            np.testing.assert_allclose(batched_targets, expected)
            assert sum(b.num_merged_samples for b in batches) == len(tensorized)

    def test_membership_independent_of_rng(self):
        """The rng permutes batch order only; batch contents are fixed."""
        tensorized = self._ragged_tensorized()
        reference = make_batches(tensorized, 4, bucket_by_length=True)
        shuffled = make_batches(tensorized, 4, rng=np.random.default_rng(9),
                                bucket_by_length=True)
        reference_keys = {tuple(np.sort(b.targets)) for b in reference}
        shuffled_keys = {tuple(np.sort(b.targets)) for b in shuffled}
        assert reference_keys == shuffled_keys

    def test_bucketing_reduces_padding(self):
        """Grouping similar lengths shrinks the padded (masked-out) tail."""
        tensorized = self._ragged_tensorized()

        def padded_entries(batches):
            return sum(b.sequence_mask.size - int((b.sequence_mask > 0).sum())
                       for b in batches)

        bucketed = make_batches(tensorized, 3, bucket_by_length=True)
        # Worst-case mixing: interleave short and long scenarios.
        order = np.argsort([t.max_path_length for t in tensorized], kind="stable")
        interleaved = [tensorized[i] for i in np.concatenate(
            [order[0::3], order[1::3], order[2::3]])]
        mixed = make_batches(interleaved, 3)
        assert padded_entries(bucketed) < padded_entries(mixed)
        # Unshuffled bucketed batches partition the length-sorted order into
        # contiguous runs, so their maximum lengths are non-decreasing.
        maxima = [b.max_path_length for b in bucketed]
        assert maxima == sorted(maxima)


class TestAlternativeTargets:
    def test_tensorize_jitter_and_loss(self):
        samples, _ = _tensorized_list(1)
        normalizer = FeatureNormalizer().fit(samples)
        jitter = tensorize_sample(samples[0], normalizer, target="jitter")
        loss = tensorize_sample(samples[0], normalizer, target="loss")
        assert jitter.target_name == "jitter"
        np.testing.assert_allclose(jitter.raw_targets, samples[0].jitters)
        np.testing.assert_allclose(loss.raw_targets, samples[0].losses)

    def test_unknown_target_rejected(self):
        samples, _ = _tensorized_list(1)
        with pytest.raises(ValueError):
            tensorize_sample(samples[0], target="throughput")

    def test_missing_metric_rejected(self):
        samples, _ = _tensorized_list(1)
        samples[0].jitters = None
        with pytest.raises(ValueError):
            tensorize_sample(samples[0], target="jitter")

    def test_normalizer_covers_jitter_and_loss(self):
        samples, _ = _tensorized_list(3)
        normalizer = FeatureNormalizer().fit(samples)
        assert "jitter" in normalizer.means and "loss" in normalizer.means
        jitters = np.concatenate([s.jitters for s in samples])
        normalised = normalizer.normalize("jitter", jitters)
        assert abs(normalised.mean()) < 1e-9

    def test_normalizer_defaults_without_metrics(self):
        samples, _ = _tensorized_list(2)
        for sample in samples:
            sample.jitters = None
            sample.losses = None
        normalizer = FeatureNormalizer().fit(samples)
        assert normalizer.means["jitter"] == 0.0 and normalizer.stds["jitter"] == 1.0

    def test_trainer_jitter_target(self):
        samples, _ = _tensorized_list(6, seed=5)
        model = ExtendedRouteNet(SMALL_CONFIG)
        trainer = RouteNetTrainer(model, TrainerConfig(epochs=4, learning_rate=0.01,
                                                       target="jitter", seed=5))
        history = trainer.fit(samples[:5])
        assert history.train_loss[-1] < history.train_loss[0]
        predicted = trainer.predict_metric(samples[5])
        assert predicted.shape == samples[5].jitters.shape

    def test_predict_delays_guard(self):
        samples, _ = _tensorized_list(2, seed=6)
        model = RouteNet(SMALL_CONFIG)
        trainer = RouteNetTrainer(model, TrainerConfig(epochs=1, target="jitter"))
        trainer.fit(samples)
        with pytest.raises(RuntimeError):
            trainer.predict_delays(samples[0])

    def test_trainer_target_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(target="throughput")

    def test_evaluate_model_on_jitter(self):
        samples, _ = _tensorized_list(4, seed=7)
        model = ExtendedRouteNet(SMALL_CONFIG)
        trainer = RouteNetTrainer(model, TrainerConfig(epochs=2, target="jitter"))
        trainer.fit(samples[:3])
        metrics = evaluate_model(model, samples[3:], trainer.normalizer, target="jitter")
        assert metrics["num_paths"] == samples[3].num_paths
