"""Tests for RouteNet, Extended RouteNet, the trainer and the evaluation helpers."""

import numpy as np
import pytest

from repro.datasets import (
    AnalyticGroundTruth,
    DatasetConfig,
    FeatureNormalizer,
    generate_dataset,
    tensorize_sample,
)
from repro.models import (
    ExtendedRouteNet,
    RouteNet,
    RouteNetConfig,
    RouteNetTrainer,
    TrainerConfig,
    evaluate_model,
)
from repro.nn.serialization import load_parameters, save_parameters
from repro.routing import shortest_path_routing
from repro.topology import linear_topology, ring_topology
from repro.traffic import scaled_to_utilization, uniform_traffic

SMALL_CONFIG = RouteNetConfig(link_state_dim=6, path_state_dim=6, node_state_dim=6,
                              message_passing_iterations=2, readout_hidden_sizes=(8,),
                              seed=0)


def _dataset(num_samples=4, num_nodes=5, seed=0, small_queue_fraction=0.5):
    config = DatasetConfig(num_samples=num_samples, seed=seed,
                           small_queue_fraction=small_queue_fraction)
    return generate_dataset(ring_topology(num_nodes), config)


def _tensorized_one(seed=0):
    samples = _dataset(num_samples=1, seed=seed)
    normalizer = FeatureNormalizer().fit(samples)
    return samples[0], tensorize_sample(samples[0], normalizer), normalizer


class TestRouteNetConfig:
    def test_defaults_valid(self):
        config = RouteNetConfig()
        assert config.message_passing_iterations >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RouteNetConfig(link_state_dim=0)
        with pytest.raises(ValueError):
            RouteNetConfig(message_passing_iterations=0)
        with pytest.raises(ValueError):
            RouteNetConfig(readout_hidden_sizes=(0,))


class TestForwardPasses:
    @pytest.mark.parametrize("model_cls", [RouteNet, ExtendedRouteNet])
    def test_output_shape(self, model_cls):
        _, tensorized, _ = _tensorized_one()
        model = model_cls(SMALL_CONFIG)
        out = model(tensorized)
        assert out.shape == (tensorized.num_paths,)

    @pytest.mark.parametrize("model_cls", [RouteNet, ExtendedRouteNet])
    def test_deterministic_forward(self, model_cls):
        _, tensorized, _ = _tensorized_one()
        model = model_cls(SMALL_CONFIG)
        np.testing.assert_allclose(model.predict(tensorized), model.predict(tensorized))

    @pytest.mark.parametrize("model_cls", [RouteNet, ExtendedRouteNet])
    def test_gradients_reach_all_parameters(self, model_cls):
        _, tensorized, _ = _tensorized_one()
        model = model_cls(SMALL_CONFIG)
        out = model(tensorized)
        (out ** 2).sum().backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no gradient for {name}"

    def test_original_ignores_queue_sizes(self):
        """The original architecture must be invariant to node queue sizes."""
        sample, tensorized, normalizer = _tensorized_one()
        model = RouteNet(SMALL_CONFIG)
        baseline = model.predict(tensorized)

        modified_topology = sample.topology.copy()
        for node in modified_topology.nodes():
            modified_topology.set_queue_size(node, 999)
        modified_sample = AnalyticGroundTruth(noise_std=0.0).generate(
            modified_topology, sample.routing, sample.traffic)
        modified_tensorized = tensorize_sample(modified_sample, normalizer)
        np.testing.assert_allclose(model.predict(modified_tensorized), baseline)

    def test_extended_reacts_to_queue_sizes(self):
        """The extended architecture must *not* be invariant to queue sizes."""
        sample, tensorized, normalizer = _tensorized_one()
        model = ExtendedRouteNet(SMALL_CONFIG)
        baseline = model.predict(tensorized)

        modified_topology = sample.topology.copy()
        for node in modified_topology.nodes():
            modified_topology.set_queue_size(node, 999)
        modified_sample = AnalyticGroundTruth(noise_std=0.0).generate(
            modified_topology, sample.routing, sample.traffic)
        modified_tensorized = tensorize_sample(modified_sample, normalizer)
        assert not np.allclose(model.predict(modified_tensorized), baseline)

    def test_extended_feature_ablation_restores_invariance(self):
        sample, tensorized, normalizer = _tensorized_one()
        model = ExtendedRouteNet(SMALL_CONFIG, use_node_features=False)
        baseline = model.predict(tensorized)
        modified_topology = sample.topology.copy()
        for node in modified_topology.nodes():
            modified_topology.set_queue_size(node, 999)
        modified_sample = AnalyticGroundTruth(noise_std=0.0).generate(
            modified_topology, sample.routing, sample.traffic)
        modified_tensorized = tensorize_sample(modified_sample, normalizer)
        np.testing.assert_allclose(model.predict(modified_tensorized), baseline)

    def test_extended_requires_matching_state_dims(self):
        with pytest.raises(ValueError):
            ExtendedRouteNet(RouteNetConfig(link_state_dim=8, node_state_dim=4))

    def test_more_iterations_changes_output(self):
        _, tensorized, _ = _tensorized_one()
        one = RouteNet(RouteNetConfig(link_state_dim=6, path_state_dim=6, node_state_dim=6,
                                      message_passing_iterations=1, seed=0))
        three = RouteNet(RouteNetConfig(link_state_dim=6, path_state_dim=6, node_state_dim=6,
                                        message_passing_iterations=3, seed=0))
        assert not np.allclose(one.predict(tensorized), three.predict(tensorized))

    def test_output_positive_option(self):
        _, tensorized, _ = _tensorized_one()
        config = RouteNetConfig(link_state_dim=6, path_state_dim=6, node_state_dim=6,
                                message_passing_iterations=2, output_positive=True, seed=0)
        for model in (RouteNet(config), ExtendedRouteNet(config)):
            assert np.all(model.predict(tensorized) >= 0)

    def test_parameter_counts_differ(self):
        original = RouteNet(SMALL_CONFIG)
        extended = ExtendedRouteNet(SMALL_CONFIG)
        # The extension adds RNN_N, nothing else changes.
        assert extended.num_parameters() > original.num_parameters()


class TestSerializationOfModels:
    @pytest.mark.parametrize("model_cls", [RouteNet, ExtendedRouteNet])
    def test_round_trip(self, model_cls, tmp_path):
        _, tensorized, _ = _tensorized_one()
        model = model_cls(SMALL_CONFIG)
        expected = model.predict(tensorized)
        path = save_parameters(model, str(tmp_path / "model"))
        clone = model_cls(RouteNetConfig(link_state_dim=6, path_state_dim=6, node_state_dim=6,
                                         message_passing_iterations=2,
                                         readout_hidden_sizes=(8,), seed=123))
        load_parameters(clone, path)
        np.testing.assert_allclose(clone.predict(tensorized), expected)


class TestTrainer:
    def test_loss_decreases(self):
        samples = _dataset(num_samples=6, seed=1)
        model = ExtendedRouteNet(SMALL_CONFIG)
        trainer = RouteNetTrainer(model, TrainerConfig(epochs=8, learning_rate=0.01, seed=0))
        history = trainer.fit(samples)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_validation_loss_recorded(self):
        samples = _dataset(num_samples=6, seed=2)
        model = RouteNet(SMALL_CONFIG)
        trainer = RouteNetTrainer(model, TrainerConfig(epochs=3, learning_rate=0.01))
        history = trainer.fit(samples[:4], val_samples=samples[4:])
        assert len(history.val_loss) == 3
        assert all(v is not None for v in history.val_loss)

    def test_early_stopping(self):
        samples = _dataset(num_samples=4, seed=3)
        model = RouteNet(SMALL_CONFIG)
        trainer = RouteNetTrainer(
            model, TrainerConfig(epochs=30, learning_rate=1e-9, early_stopping_patience=2))
        history = trainer.fit(samples)
        assert len(history.epochs) < 30

    def test_predict_delays_denormalised(self):
        samples = _dataset(num_samples=5, seed=4)
        model = ExtendedRouteNet(SMALL_CONFIG)
        trainer = RouteNetTrainer(model, TrainerConfig(epochs=10, learning_rate=0.01))
        trainer.fit(samples[:4])
        predicted = trainer.predict_delays(samples[4])
        assert predicted.shape == samples[4].delays.shape
        # After training, predictions live on the physical delay scale.
        assert predicted.mean() == pytest.approx(samples[4].delays.mean(), rel=1.0)

    def test_predict_requires_fit(self):
        model = RouteNet(SMALL_CONFIG)
        trainer = RouteNetTrainer(model)
        with pytest.raises(RuntimeError):
            trainer.predict_delays(_dataset(num_samples=1)[0])

    def test_loss_choices(self):
        samples = _dataset(num_samples=2, seed=5)
        for loss in ("mse", "huber"):
            model = RouteNet(SMALL_CONFIG)
            trainer = RouteNetTrainer(model, TrainerConfig(epochs=1, loss=loss))
            trainer.fit(samples)
        with pytest.raises(ValueError):
            TrainerConfig(loss="poisson")

    def test_trainer_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(learning_rate=0)

    def test_evaluate_loss_requires_samples(self):
        model = RouteNet(SMALL_CONFIG)
        trainer = RouteNetTrainer(model)
        with pytest.raises(ValueError):
            trainer.evaluate_loss([])


class TestEvaluateModel:
    def test_metrics_structure(self):
        samples = _dataset(num_samples=4, seed=6)
        model = ExtendedRouteNet(SMALL_CONFIG)
        trainer = RouteNetTrainer(model, TrainerConfig(epochs=3, learning_rate=0.01))
        trainer.fit(samples[:3])
        metrics = evaluate_model(model, samples[3:], trainer.normalizer)
        assert set(metrics) >= {"relative_errors", "mean_relative_error", "mape_percent",
                                "rmse", "pearson", "num_paths"}
        assert metrics["num_paths"] == samples[3].num_paths
        assert metrics["relative_errors"].shape == (samples[3].num_paths,)

    def test_empty_evaluation_raises(self):
        model = RouteNet(SMALL_CONFIG)
        with pytest.raises(ValueError):
            evaluate_model(model, [], FeatureNormalizer())


class TestLearnsQueueSizeEffect:
    def test_extended_beats_original_on_mixed_queues(self):
        """Scaled-down version of the paper's key claim (Fig. 2).

        On a dataset whose delays depend on per-node queue sizes, the
        extended model (which sees queue sizes) must reach a lower error
        than the original model (which cannot).
        """
        topology = ring_topology(6)
        config = DatasetConfig(num_samples=14, seed=7, small_queue_fraction=0.5,
                               utilization_range=(0.6, 0.9), noise_std=0.0)
        samples = generate_dataset(topology, config)
        train, test = samples[:10], samples[10:]

        model_config = RouteNetConfig(link_state_dim=8, path_state_dim=8, node_state_dim=8,
                                      message_passing_iterations=3, seed=1)
        trainer_config = TrainerConfig(epochs=15, learning_rate=0.01, seed=1)

        extended = ExtendedRouteNet(model_config)
        extended_trainer = RouteNetTrainer(extended, trainer_config)
        extended_trainer.fit(train)
        extended_metrics = evaluate_model(extended, test, extended_trainer.normalizer)

        original = RouteNet(model_config)
        original_trainer = RouteNetTrainer(original, trainer_config)
        original_trainer.fit(train)
        original_metrics = evaluate_model(original, test, original_trainer.normalizer)

        assert (extended_metrics["mean_relative_error"]
                < original_metrics["mean_relative_error"])
