"""Tests for the message-passing index construction and aggregation helpers."""

import numpy as np
import pytest

from repro.datasets import AnalyticGroundTruth, FeatureNormalizer, tensorize_sample
from repro.models.message_passing import (
    aggregate_path_states_per_node,
    aggregate_positional_messages,
    build_index,
    initial_state,
)
from repro.nn.tensor import Tensor
from repro.routing import shortest_path_routing
from repro.topology import linear_topology, ring_topology
from repro.traffic import uniform_traffic


def _tensorized(topology):
    routing = shortest_path_routing(topology)
    traffic = uniform_traffic(topology.num_nodes, 1e5, 2e5, rng=np.random.default_rng(0))
    sample = AnalyticGroundTruth(noise_std=0.0).generate(topology, routing, traffic)
    return sample, tensorize_sample(sample, FeatureNormalizer().fit([sample]))


class TestBuildIndex:
    def test_entry_counts_match_total_hops(self):
        sample, tensorized = _tensorized(ring_topology(5))
        index = build_index(tensorized)
        total_hops = sum(len(p) for p in sample.routing.link_paths())
        assert index.entry_path_ids.shape == (total_hops,)
        assert index.entry_link_ids.shape == (total_hops,)
        assert index.entry_node_ids.shape == (total_hops,)

    def test_entries_reference_correct_links(self):
        sample, tensorized = _tensorized(linear_topology(4))
        index = build_index(tensorized)
        # Reconstruct the link path of every pair from the flat entries.
        for row, pair in enumerate(sample.pair_order):
            mask = index.entry_path_ids == row
            links = index.entry_link_ids[mask]
            positions = index.entry_positions[mask]
            ordered = links[np.argsort(positions)]
            np.testing.assert_array_equal(ordered, sample.routing.link_path(*pair))

    def test_node_entries_are_sending_nodes(self):
        sample, tensorized = _tensorized(linear_topology(3))
        index = build_index(tensorized)
        for row, pair in enumerate(sample.pair_order):
            mask = index.entry_path_ids == row
            nodes = index.entry_node_ids[mask][np.argsort(index.entry_positions[mask])]
            np.testing.assert_array_equal(nodes, sample.routing.path(*pair)[:-1])


class TestInitialState:
    def test_padding(self):
        state = initial_state(np.array([[1.0], [2.0]]), state_dim=4)
        np.testing.assert_allclose(state.data, [[1, 0, 0, 0], [2, 0, 0, 0]])

    def test_too_many_features_rejected(self):
        with pytest.raises(ValueError):
            initial_state(np.ones((2, 5)), state_dim=3)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            initial_state(np.ones(3), state_dim=4)


class TestAggregation:
    def test_positional_messages_sum_per_link(self):
        sample, tensorized = _tensorized(linear_topology(3))
        index = build_index(tensorized)
        num_paths, max_len = tensorized.link_sequences.shape
        # Outputs equal to one everywhere: each link should accumulate exactly
        # the number of paths traversing it.
        outputs = Tensor(np.ones((num_paths, max_len, 2)))
        aggregated = aggregate_positional_messages(outputs, index, target="link")
        counts = np.bincount(index.entry_link_ids, minlength=index.num_links)
        np.testing.assert_allclose(aggregated.data[:, 0], counts)

    def test_positional_messages_per_node(self):
        sample, tensorized = _tensorized(linear_topology(3))
        index = build_index(tensorized)
        outputs = Tensor(np.ones((tensorized.num_paths, tensorized.max_path_length, 1)))
        aggregated = aggregate_positional_messages(outputs, index, target="node")
        counts = np.bincount(index.entry_node_ids, minlength=index.num_nodes)
        np.testing.assert_allclose(aggregated.data[:, 0], counts)

    def test_invalid_target(self):
        _, tensorized = _tensorized(linear_topology(3))
        index = build_index(tensorized)
        with pytest.raises(ValueError):
            aggregate_positional_messages(Tensor(np.ones((1, 1, 1))), index, target="router")

    def test_path_states_per_node_counts(self):
        sample, tensorized = _tensorized(linear_topology(3))
        index = build_index(tensorized)
        path_states = Tensor(np.ones((tensorized.num_paths, 3)))
        aggregated = aggregate_path_states_per_node(path_states, index)
        # Node 1 (the middle of the chain) forwards the 2 two-hop paths and
        # sends its own 2 one-hop flows: paths through it as sender = 4.
        expected = len(sample.routing.paths_through_node(1)) - sum(
            1 for pair in sample.routing.pairs() if pair[1] == 1)
        assert aggregated.data[1, 0] == pytest.approx(expected)

    def test_gradients_flow_through_aggregation(self):
        _, tensorized = _tensorized(ring_topology(4))
        index = build_index(tensorized)
        outputs = Tensor(np.random.default_rng(0).normal(
            size=(tensorized.num_paths, tensorized.max_path_length, 2)), requires_grad=True)
        aggregated = aggregate_positional_messages(outputs, index, target="link")
        (aggregated ** 2).sum().backward()
        assert outputs.grad is not None
        assert np.abs(outputs.grad).sum() > 0
