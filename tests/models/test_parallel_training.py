"""Data-parallel training equivalence and semantics.

``num_workers > 1`` training groups batches per optimiser step and
path-weight-averages their gradients (see
``RouteNetTrainer.train_step_group``).  The update rule is a function of
the group size only, never of the execution engine: the multiprocessing
worker pool and its in-process serial twin must produce **bit-identical**
parameter trajectories, in both RNN scan modes.  A group's averaged
gradient must also match the gradient of the group merged into one giant
disjoint-union batch — the semantics the weighting is designed to give.
"""

import numpy as np
import pytest

from repro.datasets import DatasetConfig, generate_dataset
from repro.datasets.batching import merge_tensorized_samples
from repro.models import ExtendedRouteNet, RouteNetConfig, RouteNetTrainer, TrainerConfig
from repro.nn.parallel import SerialGradientExecutor, path_weighted_average
from repro.topology import ring_topology
from tests.support import float_tolerance

NUM_SAMPLES = 8


@pytest.fixture(scope="module")
def samples():
    return generate_dataset(ring_topology(5),
                            DatasetConfig(num_samples=NUM_SAMPLES, seed=3,
                                          small_queue_fraction=0.5))


def _fit(samples, num_workers, backend="process", scan_mode="stream",
         batch_size=2, epochs=2):
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=8, path_state_dim=8, node_state_dim=8,
        message_passing_iterations=2, seed=5, scan_mode=scan_mode))
    trainer = RouteNetTrainer(model, TrainerConfig(
        epochs=epochs, learning_rate=0.005, batch_size=batch_size,
        num_workers=num_workers, parallel_backend=backend, seed=5))
    trainer.fit(samples)
    return trainer


@pytest.mark.parametrize("scan_mode", ["compiled", "stream", "stacked"])
def test_process_pool_matches_serial_bit_exact(samples, scan_mode):
    """The worker-pool engine and the serial engine run the same grouped
    update semantics: identical histories and bit-identical parameters."""
    pooled = _fit(samples, num_workers=2, backend="process", scan_mode=scan_mode)
    serial = _fit(samples, num_workers=2, backend="serial", scan_mode=scan_mode)
    assert pooled.history.train_loss == serial.history.train_loss
    assert np.array_equal(pooled.model.parameters_vector(),
                          serial.model.parameters_vector())


def test_parallel_training_reduces_loss(samples):
    trainer = _fit(samples, num_workers=2, epochs=4)
    assert trainer.history.train_loss[-1] < trainer.history.train_loss[0]


def test_group_gradient_matches_merged_batch(samples):
    """Path-weighted averaging of per-batch gradients equals (numerically)
    the gradient of the group merged into one disjoint-union batch."""
    trainer = _fit(samples, num_workers=1, epochs=1)
    items = trainer.prepare(samples)
    batch_a = merge_tensorized_samples(items[:2])
    batch_b = merge_tensorized_samples(items[2:5])

    executor = SerialGradientExecutor(trainer.model, num_workers=2,
                                      loss=trainer.config.loss)
    executor.set_batches([batch_a, batch_b])
    params = trainer.model.parameters_vector()
    results = executor.run_group(params, [0, 1])
    averaged = path_weighted_average([r[0] for r in results],
                                     [r[2] for r in results])

    merged = merge_tensorized_samples(items[:5])
    executor.set_batches([merged])
    (merged_grad, merged_loss, merged_paths), = executor.run_group(params, [0])
    executor.close()

    assert merged_paths == results[0][2] + results[1][2]
    group_loss = ((results[0][1] * results[0][2] + results[1][1] * results[1][2])
                  / merged_paths)
    tol = float_tolerance(1e-9, 2e-3)
    np.testing.assert_allclose(group_loss, merged_loss, rtol=tol, atol=tol)
    scale = max(np.abs(merged_grad).max(), 1e-12)
    np.testing.assert_allclose(averaged / scale, merged_grad / scale,
                               rtol=tol, atol=tol)


def test_odd_group_sizes_are_handled(samples):
    """3 batches over 2 workers: a full group then a singleton group."""
    trainer = _fit(samples[:6], num_workers=2, backend="serial", epochs=2)
    assert len(trainer.history.epochs) == 2
    # 6 samples at batch_size=2 -> 3 batches per epoch, all visited.
    assert trainer.optimizer.step_count == 2 * 2  # ceil(3 / 2) groups per epoch


def test_unbucketed_shuffled_batches_reupload_each_epoch(samples):
    """Dynamic (unbucketed, shuffled) batching re-merges fresh batches per
    epoch; the executor must follow instead of serving stale cached ones."""
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=8, path_state_dim=8, node_state_dim=8,
        message_passing_iterations=2, seed=5))
    dynamic_trainer = RouteNetTrainer(model, TrainerConfig(
        epochs=3, learning_rate=0.005, batch_size=2, bucket_by_length=False,
        num_workers=2, parallel_backend="serial", seed=5))
    dynamic_trainer.fit(samples)
    assert dynamic_trainer.history.train_loss[-1] < dynamic_trainer.history.train_loss[0] * 5
    assert len(dynamic_trainer.history.epochs) == 3


def test_parallel_matches_manual_gradient_accumulation(samples):
    """num_workers=2 equals a hand-rolled grouped-update reference loop."""
    from repro.nn.optimizers import Adam, clip_gradients_by_norm

    parallel = _fit(samples, num_workers=2, backend="serial", epochs=2)

    # Same scan mode as _fit: the comparison is about grouped-update
    # semantics, and bit-exactness only holds within one executor.
    model = ExtendedRouteNet(RouteNetConfig(
        link_state_dim=8, path_state_dim=8, node_state_dim=8,
        message_passing_iterations=2, seed=5, scan_mode="stream"))
    reference = RouteNetTrainer(model, TrainerConfig(
        epochs=2, learning_rate=0.005, batch_size=2, num_workers=2,
        parallel_backend="serial", seed=5))
    items = reference.prepare(samples)
    from repro.datasets.batching import make_batches
    batches = make_batches(items, 2, bucket_by_length=True)
    executor = SerialGradientExecutor(model, num_workers=2)
    executor.set_batches(batches)
    rng = np.random.default_rng(5)
    for _ in range(2):
        order = rng.permutation(len(batches))
        for start in range(0, len(order), 2):
            group = [int(i) for i in order[start:start + 2]]
            results = executor.run_group(model.parameters_vector(), group)
            grad = path_weighted_average([r[0] for r in results],
                                         [r[2] for r in results])
            model.load_gradients_vector(grad)
            clip_gradients_by_norm(model.parameters(), 1.0)
            reference.optimizer.step()
    executor.close()

    assert np.array_equal(parallel.model.parameters_vector(),
                          model.parameters_vector())
